//! One-stop deployment assembly for experiments, examples, and tests.
//!
//! A [`Scenario`] describes a complete §2.2 system — managers, application
//! hosts, users, an admin, optionally a name service — and builds it into
//! a ready-to-run [`Deployment`] over a simulated WAN.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use wanacl_auth::rsa::SecretKey;
use wanacl_auth::signed::{KeyRegistry, PrincipalId};
use wanacl_sim::clock::ClockSpec;
use wanacl_sim::net::NetModel;
use wanacl_sim::node::NodeId;
use wanacl_sim::time::{SimDuration, SimTime};
use wanacl_sim::world::World;

use crate::client::{AdminAction, AdminAgent, AdminAgentConfig, AdminRoute, UserAgent, UserAgentConfig};
use crate::host::{AppHost, HostNode, ManagerDirectory};
use crate::manager::{ManagerApp, ManagerConfig, ManagerNode, ManagerShard};
use crate::msg::{AclOp, NsRecord, ProtoMsg, ReqId, ShardEntry};
use crate::nameservice::{DirectoryReplica, NameServiceNode};
use crate::policy::Policy;
use crate::types::{Acl, AppId, Right, ShardId, UserId};
use crate::wrapper::{Application, CountingApp};

/// The principal that signs directory records. Replicas and hosts trust
/// exactly this writer; records signed by anyone else are rejected.
pub const NS_WRITER: PrincipalId = PrincipalId(2_000_000);

/// Builder describing a full deployment. Start from [`Scenario::builder`].
pub struct Scenario {
    seed: u64,
    app: AppId,
    policy: Policy,
    tenants: usize,
    shards_per_tenant: usize,
    managers: usize,
    hosts: usize,
    users: usize,
    initial_rights: Vec<(UserId, Right)>,
    authenticate: bool,
    use_name_service: bool,
    ns_replicas: usize,
    ns_read_quorum: usize,
    ns_ttl: SimDuration,
    net: Option<Box<dyn NetModel>>,
    manager_clock: ClockSpec,
    host_clock: ClockSpec,
    workload: Option<crate::client::WorkloadShape>,
    request_timeout: SimDuration,
    admin_script: Vec<AdminAction>,
    serial_admin: bool,
    app_factory: Box<dyn Fn(usize) -> Box<dyn Application>>,
    manager_config: ManagerConfig,
}

impl std::fmt::Debug for Scenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scenario")
            .field("managers", &self.managers)
            .field("hosts", &self.hosts)
            .field("users", &self.users)
            .finish_non_exhaustive()
    }
}

impl Scenario {
    /// Starts a scenario with the given seed. Defaults: one manager, one
    /// host, one user (id 1, granted `use`), no authentication, perfect
    /// clocks, 50 ms perfect network, counting application.
    pub fn builder(seed: u64) -> Scenario {
        Scenario {
            seed,
            app: AppId(0),
            policy: Policy::default(),
            tenants: 0,
            shards_per_tenant: 1,
            managers: 1,
            hosts: 1,
            users: 1,
            initial_rights: Vec::new(),
            authenticate: false,
            use_name_service: false,
            ns_replicas: 0,
            ns_read_quorum: 0,
            ns_ttl: SimDuration::from_secs(300),
            net: None,
            manager_clock: ClockSpec::Perfect,
            host_clock: ClockSpec::Perfect,
            workload: None,
            request_timeout: SimDuration::from_secs(10),
            admin_script: Vec::new(),
            serial_admin: false,
            app_factory: Box::new(|_| Box::new(CountingApp::new())),
            manager_config: ManagerConfig::default(),
        }
    }

    /// Switches the deployment to sharded multi-tenant mode: `n` tenants,
    /// each an application `AppId(0..n)` whose ACL keyspace is split into
    /// [`Scenario::shards_per_tenant`] bucket-range shards served by two
    /// managers each. Requires [`Scenario::with_replicated_directory`]
    /// (the signed shard map is a directory record). User `u` belongs to
    /// tenant `(u - 1) % n`. `0` (the default) keeps the legacy
    /// single-app, unsharded layout byte-identical.
    pub fn tenants(mut self, n: usize) -> Self {
        self.tenants = n;
        self
    }

    /// Number of shards each tenant's keyspace is split into (sharded
    /// mode only; default 1).
    pub fn shards_per_tenant(mut self, k: usize) -> Self {
        assert!(k >= 1, "need at least one shard per tenant");
        assert!(k <= 256, "at most one shard per bucket");
        self.shards_per_tenant = k;
        self
    }

    /// Sets the number of managers `M`.
    pub fn managers(mut self, m: usize) -> Self {
        assert!(m >= 1, "need at least one manager");
        self.managers = m;
        self
    }

    /// Sets the number of application hosts.
    pub fn hosts(mut self, n: usize) -> Self {
        assert!(n >= 1, "need at least one host");
        self.hosts = n;
        self
    }

    /// Sets the number of users. Users get ids `1..=n`.
    pub fn users(mut self, n: usize) -> Self {
        self.users = n;
        self
    }

    /// Sets the per-application policy.
    pub fn policy(mut self, policy: Policy) -> Self {
        self.policy = policy;
        self
    }

    /// Grants initial rights in the bootstrap ACL (beyond the admin's
    /// `manage` right, which is always present).
    pub fn initial_rights(mut self, rights: Vec<(UserId, Right)>) -> Self {
        self.initial_rights = rights;
        self
    }

    /// Grants every user the `use` right at bootstrap.
    pub fn all_users_granted(mut self) -> Self {
        for i in 1..=self.users {
            self.initial_rights.push((UserId(i as u64), Right::Use));
        }
        self
    }

    /// Turns on RSA message authentication for invokes and admin ops.
    pub fn authenticate(mut self) -> Self {
        self.authenticate = true;
        self
    }

    /// Discovers managers through a name service instead of static
    /// configuration.
    pub fn with_name_service(mut self, ttl: SimDuration) -> Self {
        self.use_name_service = true;
        self.ns_ttl = ttl;
        self
    }

    /// Discovers managers through a replicated, signed directory:
    /// `replicas` [`DirectoryReplica`] nodes hold versioned records
    /// signed by [`NS_WRITER`], and every host issues quorum reads of
    /// `read_quorum` verified replies (pass 0 for a majority). Takes
    /// precedence over [`Scenario::with_name_service`].
    pub fn with_replicated_directory(
        mut self,
        replicas: usize,
        read_quorum: usize,
        ttl: SimDuration,
    ) -> Self {
        assert!(replicas >= 1, "need at least one directory replica");
        assert!(read_quorum <= replicas, "read quorum cannot exceed the replica count");
        self.ns_replicas = replicas;
        self.ns_read_quorum = if read_quorum == 0 { replicas / 2 + 1 } else { read_quorum };
        self.ns_ttl = ttl;
        self
    }

    /// Installs a network model (default: perfect 50 ms links).
    pub fn net(mut self, net: Box<dyn NetModel>) -> Self {
        self.net = Some(net);
        self
    }

    /// Clock spec for manager nodes.
    pub fn manager_clock(mut self, spec: ClockSpec) -> Self {
        self.manager_clock = spec;
        self
    }

    /// Clock spec for host nodes.
    pub fn host_clock(mut self, spec: ClockSpec) -> Self {
        self.host_clock = spec;
        self
    }

    /// Enables the automatic Poisson workload on every user agent.
    pub fn workload(mut self, mean_interarrival: SimDuration) -> Self {
        self.workload = Some(crate::client::WorkloadShape::Poisson { mean: mean_interarrival });
        self
    }

    /// Installs an arbitrary workload shape on every user agent.
    pub fn workload_shape(mut self, shape: crate::client::WorkloadShape) -> Self {
        self.workload = Some(shape);
        self
    }

    /// Sets the user-side request timeout.
    pub fn request_timeout(mut self, t: SimDuration) -> Self {
        self.request_timeout = t;
        self
    }

    /// Scripts admin operations.
    pub fn admin_script(mut self, script: Vec<AdminAction>) -> Self {
        self.admin_script = script;
        self
    }

    /// Gives the admin §2.3 blocking semantics: operations issue one at
    /// a time, each waiting for the previous `Stable`.
    pub fn serial_admin(mut self) -> Self {
        self.serial_admin = true;
        self
    }

    /// Sets the application each host wraps (called once per host index).
    pub fn application<F>(mut self, factory: F) -> Self
    where
        F: Fn(usize) -> Box<dyn Application> + 'static,
    {
        self.app_factory = Box::new(factory);
        self
    }

    /// Overrides manager timing configuration (retry/heartbeat/sweep).
    pub fn manager_tuning(mut self, config: ManagerConfig) -> Self {
        self.manager_config = config;
        self
    }

    /// Builds the deployment.
    pub fn build(self) -> Deployment {
        let mut world: World<ProtoMsg> = World::new(self.seed);
        if let Some(net) = self.net {
            world.set_net(net);
        }

        // Deterministic key material.
        let mut keyrng = StdRng::seed_from_u64(self.seed ^ 0x00a1_1ce5);
        let admin_user = UserId(1_000_000);
        let mut registry = KeyRegistry::new();
        let mut user_secrets: Vec<Option<SecretKey>> = Vec::new();
        let mut admin_secret = None;
        if self.authenticate {
            for i in 1..=self.users {
                let kp = registry.enroll(UserId(i as u64).into(), &mut keyrng);
                user_secrets.push(Some(kp.secret));
            }
            let kp = registry.enroll(admin_user.into(), &mut keyrng);
            admin_secret = Some(kp.secret);
        } else {
            user_secrets.resize(self.users, None);
        }
        // The directory writer key comes from its own stream so enabling
        // the replicated directory never perturbs user/admin keys.
        let mut ns_writer_secret = None;
        if self.ns_replicas > 0 {
            let mut wrng = StdRng::seed_from_u64(self.seed ^ 0x6e73_7772);
            let kp = registry.enroll(NS_WRITER, &mut wrng);
            ns_writer_secret = Some(kp.secret);
        }
        let registry = Arc::new(registry);
        let registry_opt = if self.authenticate { Some(registry.clone()) } else { None };
        // Authenticated deployments also authenticate the host<->manager
        // channel with pairwise HMAC keys.
        let channel = if self.authenticate {
            Some(Arc::new(crate::channel::ChannelKeys::from_seed(self.seed ^ 0xc4a7)))
        } else {
            None
        };

        // Bootstrap ACL: admin manages, plus configured rights.
        let mut initial_acl = Acl::new();
        initial_acl.add(admin_user, Right::Manage);
        for (user, right) in &self.initial_rights {
            initial_acl.add(*user, *right);
        }

        // Sharded multi-tenant layout: tenant `t` is `AppId(t)`, its
        // keyspace splits into `shards_per_tenant` contiguous bucket
        // ranges, and global shard `s` is served by managers `2s` and
        // `2s+1`. Legacy deployments leave `shard_entries` empty and hit
        // exactly the single-app paths below.
        let sharded = self.tenants > 0;
        let managers_total = if sharded {
            assert!(
                self.ns_replicas > 0,
                "sharded mode publishes the shard map through the replicated \
                 directory; call with_replicated_directory first"
            );
            2 * self.tenants * self.shards_per_tenant
        } else {
            self.managers
        };
        let apps: Vec<AppId> =
            if sharded { (0..self.tenants as u32).map(AppId).collect() } else { vec![self.app] };
        // Per-app bootstrap ACL. Tenants are isolated: a user's initial
        // rights land only on their own tenant's application.
        let acl_for = |app: AppId| -> Acl {
            if !sharded {
                return initial_acl.clone();
            }
            let mut acl = Acl::new();
            acl.add(admin_user, Right::Manage);
            for (user, right) in &self.initial_rights {
                if user.0 >= 1 && (user.0 - 1) % self.tenants as u64 == u64::from(app.0) {
                    acl.add(*user, *right);
                }
            }
            acl
        };
        let mut shard_entries: Vec<(AppId, ShardEntry)> = Vec::new();
        if sharded {
            let spt = self.shards_per_tenant;
            for t in 0..self.tenants {
                for j in 0..spt {
                    let s = t * spt + j;
                    shard_entries.push((
                        AppId(t as u32),
                        ShardEntry {
                            shard: ShardId(s as u32),
                            lo: (j * 256 / spt) as u8,
                            hi: ((j + 1) * 256 / spt - 1) as u8,
                            managers: vec![
                                NodeId::from_index(2 * s),
                                NodeId::from_index(2 * s + 1),
                            ],
                        },
                    ));
                }
            }
        }

        // Managers occupy ids 0..M (added first, so ids are known up
        // front for peer lists).
        let manager_ids: Vec<NodeId> = (0..managers_total).map(NodeId::from_index).collect();
        for (i, &id) in manager_ids.iter().enumerate() {
            let peers: Vec<NodeId> =
                manager_ids.iter().copied().filter(|p| *p != id).collect();
            // Every manager carries the full per-app bootstrap ACL; the
            // shard map — not ACL content — decides who serves whom, so a
            // rebalance target can activate on deltas alone.
            let shards: Vec<ManagerShard> = shard_entries
                .iter()
                .filter(|(_, e)| e.managers.contains(&id))
                .map(|(app, e)| ManagerShard {
                    shard: e.shard,
                    app: *app,
                    lo: e.lo,
                    hi: e.hi,
                    peers: e.managers.iter().copied().filter(|m| *m != id).collect(),
                })
                .collect();
            let config = ManagerConfig {
                peers,
                apps: apps
                    .iter()
                    .map(|&app| ManagerApp {
                        app,
                        policy: self.policy.clone(),
                        initial_acl: acl_for(app),
                    })
                    .collect(),
                registry: registry_opt.clone(),
                enforce_manage_right: self.authenticate,
                shards,
                ns_trust: if sharded {
                    Some(registry.clone())
                } else {
                    self.manager_config.ns_trust.clone()
                },
                ..self.manager_config.clone()
            };
            let mut node = ManagerNode::new(config);
            if let Some(keys) = &channel {
                node.set_channel_keys(keys.clone());
            }
            let got = world.add_node(format!("manager{i}"), Box::new(node), self.manager_clock);
            assert_eq!(got, id, "manager ids must be dense from zero");
        }

        // Optional replicated directory: replicas sit right after the
        // managers so campaign node layouts stay arithmetic. Each starts
        // from the same signed genesis record (version 1).
        let mut ns_replica_ids: Vec<NodeId> = Vec::new();
        if self.ns_replicas > 0 {
            let first = managers_total;
            ns_replica_ids =
                (first..first + self.ns_replicas).map(NodeId::from_index).collect();
            let secret = ns_writer_secret.as_ref().expect("writer key exists when replicas do");
            // One genesis record per app; sharded deployments publish the
            // shard map inside the record (version 1 = handoff epoch 1).
            let genesis: Vec<NsRecord> = if sharded {
                apps.iter()
                    .map(|&app| {
                        let entries: Vec<ShardEntry> = shard_entries
                            .iter()
                            .filter(|(a, _)| *a == app)
                            .map(|(_, e)| e.clone())
                            .collect();
                        NsRecord::signed_sharded(app, 1, entries, NS_WRITER, secret)
                    })
                    .collect()
            } else {
                vec![NsRecord::signed(self.app, 1, manager_ids.clone(), NS_WRITER, secret)]
            };
            for (i, &id) in ns_replica_ids.iter().enumerate() {
                let peers: Vec<NodeId> =
                    ns_replica_ids.iter().copied().filter(|p| *p != id).collect();
                let mut replica =
                    DirectoryReplica::new(self.ns_ttl, peers, registry.clone(), NS_WRITER);
                for record in &genesis {
                    replica.preload(record.clone());
                }
                let got =
                    world.add_node(format!("nsreplica{i}"), Box::new(replica), ClockSpec::Perfect);
                assert_eq!(got, id, "replica ids must follow the managers");
            }
        }

        // Optional legacy name service (superseded by the replicated
        // directory when both are requested).
        let name_service = if self.use_name_service && self.ns_replicas == 0 {
            let mut ns = NameServiceNode::new(self.ns_ttl);
            ns.register(self.app, manager_ids.clone());
            Some(world.add_node("nameservice", Box::new(ns), ClockSpec::Perfect))
        } else {
            None
        };

        // Hosts. The static manager list is shared once across every
        // host/app instead of cloned per host (O(hosts) at 10k+ hosts).
        let shared_managers: Arc<[NodeId]> = manager_ids.clone().into();
        let mut host_ids = Vec::with_capacity(self.hosts);
        for i in 0..self.hosts {
            let directory = if !ns_replica_ids.is_empty() {
                ManagerDirectory::Replicated {
                    replicas: ns_replica_ids.clone(),
                    read_quorum: self.ns_read_quorum,
                }
            } else {
                match name_service {
                    Some(ns) => ManagerDirectory::NameService { ns },
                    None => ManagerDirectory::Static(shared_managers.clone()),
                }
            };
            let mut host = HostNode::new(
                apps.iter()
                    .map(|&app| AppHost {
                        app,
                        policy: self.policy.clone(),
                        directory: directory.clone(),
                        application: (self.app_factory)(i),
                    })
                    .collect(),
                registry_opt.clone(),
            );
            if !ns_replica_ids.is_empty() {
                host.set_ns_trust(registry.clone(), NS_WRITER);
            }
            if let Some(keys) = &channel {
                host.set_channel_keys(keys.clone());
            }
            host_ids.push(world.add_node(format!("host{i}"), Box::new(host), self.host_clock));
        }

        // Users. The host list is shared across all user agents — at
        // scale, per-user clones were the largest setup allocation
        // (O(hosts × users) NodeIds).
        let shared_hosts: Arc<[NodeId]> = host_ids.clone().into();
        let mut users = Vec::with_capacity(self.users);
        for i in 1..=self.users {
            let user = UserId(i as u64);
            let user_app =
                if sharded { AppId(((i - 1) % self.tenants) as u32) } else { self.app };
            let agent = UserAgent::new(UserAgentConfig {
                user,
                app: user_app,
                hosts: shared_hosts.clone(),
                workload: self.workload,
                payload: format!("request-from-{user}").into(),
                secret: user_secrets[i - 1],
                request_timeout: self.request_timeout,
                max_requests: None,
            });
            let id = world.add_node(format!("user{i}"), Box::new(agent), ClockSpec::Perfect);
            users.push((user, id));
        }

        // Admin.
        let admin = world.add_node(
            "admin",
            Box::new(AdminAgent::new(AdminAgentConfig {
                issuer: admin_user,
                secret: admin_secret,
                manager: manager_ids[0],
                routes: shard_entries
                    .iter()
                    .map(|(app, e)| AdminRoute {
                        app: *app,
                        lo: e.lo,
                        hi: e.hi,
                        manager: e.managers[0],
                    })
                    .collect(),
                script: self.admin_script,
                resend_interval: SimDuration::from_millis(500),
                serial: self.serial_admin,
            })),
            ClockSpec::Perfect,
        );

        // The live shard map the deployment tracks for rebalances: per
        // app, the current record version plus its entries.
        let mut shard_maps: std::collections::BTreeMap<AppId, (u64, Vec<ShardEntry>)> =
            std::collections::BTreeMap::new();
        for (app, entry) in &shard_entries {
            shard_maps.entry(*app).or_insert_with(|| (1, Vec::new())).1.push(entry.clone());
        }

        Deployment {
            world,
            app: self.app,
            tenants: self.tenants,
            shards_per_tenant: self.shards_per_tenant,
            managers: manager_ids,
            hosts: host_ids,
            users,
            admin,
            admin_user,
            ns_replicas: ns_replica_ids,
            ns_writer_secret,
            shard_maps,
        }
    }
}

/// A built deployment, ready to run.
#[derive(Debug)]
pub struct Deployment {
    /// The simulated world (run it with `run_until`/`run_for`).
    pub world: World<ProtoMsg>,
    /// The application under access control (the first tenant's app in
    /// sharded mode).
    pub app: AppId,
    /// Tenant count (0 = legacy single-app deployment).
    pub tenants: usize,
    /// Shards per tenant (meaningful only when `tenants > 0`).
    pub shards_per_tenant: usize,
    /// Manager node ids.
    pub managers: Vec<NodeId>,
    /// Host node ids.
    pub hosts: Vec<NodeId>,
    /// `(user, agent node)` pairs.
    pub users: Vec<(UserId, NodeId)>,
    /// The admin agent's node id.
    pub admin: NodeId,
    /// The admin principal (holds `manage` at bootstrap).
    pub admin_user: UserId,
    /// Directory replica node ids (empty without the replicated
    /// directory).
    pub ns_replicas: Vec<NodeId>,
    /// The directory writer's secret key, for publishing new records
    /// mid-run (present iff replicas are).
    pub ns_writer_secret: Option<SecretKey>,
    /// Per-app current shard map: `(record version, entries)`. Empty in
    /// legacy deployments; updated by [`Deployment::rebalance_shard_at`].
    pub shard_maps: std::collections::BTreeMap<AppId, (u64, Vec<ShardEntry>)>,
}

impl Deployment {
    /// Injects an admin `Add(app, user, right)` now (routed through the
    /// admin agent, so it is signed and retried like any real op).
    pub fn grant(&mut self, user: UserId, right: Right) {
        let op = AclOp::Add { app: self.app, user, right };
        self.inject_admin(op);
    }

    /// Injects an admin `Revoke(app, user, right)` now.
    pub fn revoke(&mut self, user: UserId, right: Right) {
        let op = AclOp::Revoke { app: self.app, user, right };
        self.inject_admin(op);
    }

    fn inject_admin(&mut self, op: AclOp) {
        let now = self.world.now();
        self.world.inject(
            now,
            self.admin,
            ProtoMsg::Admin { op, req: ReqId(0), issuer: self.admin_user, signature: None },
        );
    }

    /// Publishes a new signed manager-set record for the app to ONE
    /// replica (index `replica_index`) now. Anti-entropy is responsible
    /// for spreading it — which is exactly what stale-replica and
    /// split-brain faults attack.
    ///
    /// # Panics
    ///
    /// Panics if the deployment has no replicated directory.
    pub fn republish_managers(
        &mut self,
        replica_index: usize,
        version: u64,
        managers: Vec<NodeId>,
    ) {
        let now = self.world.now();
        self.republish_managers_at(now, replica_index, version, managers);
    }

    /// [`Deployment::republish_managers`] at a scheduled future instant.
    pub fn republish_managers_at(
        &mut self,
        at: SimTime,
        replica_index: usize,
        version: u64,
        managers: Vec<NodeId>,
    ) {
        let secret =
            self.ns_writer_secret.as_ref().expect("deployment has no replicated directory");
        let record = NsRecord::signed(self.app, version, managers, NS_WRITER, secret);
        let target = self.ns_replicas[replica_index];
        self.world.inject(at, target, ProtoMsg::NsPublish { record: Box::new(record) });
    }

    /// The directory replica node for index `i`.
    pub fn ns_replica(&self, i: usize) -> &DirectoryReplica {
        self.world.node_as::<DirectoryReplica>(self.ns_replicas[i])
    }

    /// Current owners of a shard (sharded deployments).
    pub fn shard_owners(&self, shard: ShardId) -> Vec<NodeId> {
        self.shard_maps
            .values()
            .flat_map(|(_, entries)| entries.iter())
            .find(|e| e.shard == shard)
            .map(|e| e.managers.clone())
            .expect("unknown shard")
    }

    /// Injects an arbitrary admin operation through the admin agent (so
    /// it is signed, routed to the owning shard, and retried).
    pub fn admin_op(&mut self, op: AclOp) {
        self.inject_admin(op);
    }

    /// Schedules an online rebalance of `shard` onto `new_owners` at
    /// `at`: signs the version-bumped shard-map record and injects the
    /// `ShardHandoff` kickoff to every current owner (sources) and every
    /// new owner (targets). The sources freeze, snapshot-transfer, and
    /// durably release before any target activates and republishes the
    /// map (DESIGN.md §14).
    ///
    /// # Panics
    ///
    /// Panics without a replicated directory, on an unknown shard, or if
    /// `new_owners` overlaps the current owner set.
    pub fn rebalance_shard_at(&mut self, at: SimTime, shard: ShardId, new_owners: Vec<NodeId>) {
        let secret = self
            .ns_writer_secret
            .as_ref()
            .expect("rebalance needs the replicated directory's writer key");
        let (&app, _) = self
            .shard_maps
            .iter()
            .find(|(_, (_, entries))| entries.iter().any(|e| e.shard == shard))
            .expect("unknown shard");
        let (version, entries) = self.shard_maps.get_mut(&app).expect("map exists");
        let idx = entries.iter().position(|e| e.shard == shard).expect("entry exists");
        let old_owners = entries[idx].managers.clone();
        assert!(
            old_owners.iter().all(|m| !new_owners.contains(m)),
            "rebalance targets must be disjoint from the current owners"
        );
        *version += 1;
        let epoch = *version;
        entries[idx].managers = new_owners.clone();
        let record = NsRecord::signed_sharded(app, epoch, entries.clone(), NS_WRITER, secret);
        let kickoff = ProtoMsg::ShardHandoff {
            shard,
            epoch,
            record: Box::new(record),
            targets: new_owners.clone(),
            publish_to: self.ns_replicas.clone(),
        };
        for &m in old_owners.iter().chain(new_owners.iter()) {
            self.world.inject(at, m, kickoff.clone());
        }
    }

    /// Mutable access to manager `i` (fault hooks like the planted
    /// lost-handoff bug).
    pub fn manager_mut(&mut self, i: usize) -> &mut ManagerNode {
        self.world.node_as_mut::<ManagerNode>(self.managers[i])
    }

    /// Mutable access to host `i` (fault hooks like the stale-shard-map
    /// pin).
    pub fn host_mut(&mut self, i: usize) -> &mut HostNode {
        self.world.node_as_mut::<HostNode>(self.hosts[i])
    }

    /// Makes user `i` (0-based index) issue one request now.
    pub fn invoke_from(&mut self, user_index: usize) {
        let (user, node) = self.users[user_index];
        let now = self.world.now();
        self.world.inject(
            now,
            node,
            ProtoMsg::Invoke {
                app: self.app,
                user,
                req: ReqId(0),
                payload: "triggered".into(),
                signature: None,
            },
        );
    }

    /// The user agent for index `i`.
    pub fn user_agent(&self, i: usize) -> &UserAgent {
        self.world.node_as::<UserAgent>(self.users[i].1)
    }

    /// The host node for index `i`.
    pub fn host(&self, i: usize) -> &HostNode {
        self.world.node_as::<HostNode>(self.hosts[i])
    }

    /// The manager node for index `i`.
    pub fn manager(&self, i: usize) -> &ManagerNode {
        self.world.node_as::<ManagerNode>(self.managers[i])
    }

    /// The admin agent.
    pub fn admin_agent(&self) -> &AdminAgent {
        self.world.node_as::<AdminAgent>(self.admin)
    }

    /// Sums allowed/denied/unavailable across all user agents.
    pub fn aggregate_user_stats(&self) -> crate::client::UserStats {
        let mut total = crate::client::UserStats::default();
        for i in 0..self.users.len() {
            let s = self.user_agent(i).stats();
            total.sent += s.sent;
            total.allowed += s.allowed;
            total.denied += s.denied;
            total.unavailable += s.unavailable;
            total.bad_signature += s.bad_signature;
            total.timeouts += s.timeouts;
        }
        total
    }

    /// Convenience: run the world for a span.
    pub fn run_for(&mut self, span: SimDuration) {
        self.world.run_for(span);
    }

    /// Convenience: run the world until an absolute time.
    pub fn run_until(&mut self, deadline: SimTime) {
        self.world.run_until(deadline);
    }
}
