//! Compares two machine-readable benchmark result files (the JSONL
//! emitted via `BENCH_JSON`, one `{"label":...,"mean_ns":...,"iters":...}`
//! object per line) and fails if any benchmark regressed beyond a
//! threshold.
//!
//! ```console
//! $ bench_guard <baseline.json> <current.json> [--threshold 0.25]
//!       [--threshold-for LABEL=FRACTION ...] [--require-faster FAST=SLOW ...]
//! ```
//!
//! Labels present in only one file are reported but never fatal, so
//! adding or retiring a benchmark doesn't break the guard. When a label
//! appears multiple times in a file (e.g. appended runs), the last
//! occurrence wins. Exits 1 on any regression past the threshold.
//!
//! `--threshold-for` overrides the default threshold for one label — a
//! large-world benchmark with few iterations needs a looser bound than
//! the microbenchmarks without weakening their gates. `--require-faster`
//! asserts an ordering *within the current file*: the `FAST` label's
//! mean must be strictly below `SLOW`'s (e.g. the indexed event queue
//! must beat its naive-heap control), exiting 1 when it is not and 2
//! when either label is missing.

use std::collections::BTreeMap;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut threshold = 0.25f64;
    let mut per_label: BTreeMap<String, f64> = BTreeMap::new();
    let mut orderings: Vec<(String, String)> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--threshold" {
            threshold = args
                .get(i + 1)
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| usage("--threshold needs a number"));
            i += 2;
        } else if args[i] == "--threshold-for" {
            let (label, frac) = args
                .get(i + 1)
                .and_then(|v| v.split_once('='))
                .and_then(|(l, f)| Some((l.to_owned(), f.parse::<f64>().ok()?)))
                .unwrap_or_else(|| usage("--threshold-for needs LABEL=FRACTION"));
            per_label.insert(label, frac);
            i += 2;
        } else if args[i] == "--require-faster" {
            let (fast, slow) = args
                .get(i + 1)
                .and_then(|v| v.split_once('='))
                .map(|(a, b)| (a.to_owned(), b.to_owned()))
                .unwrap_or_else(|| usage("--require-faster needs FAST=SLOW"));
            orderings.push((fast, slow));
            i += 2;
        } else {
            paths.push(args[i].clone());
            i += 1;
        }
    }
    if paths.len() != 2 {
        usage("expected exactly two result files");
    }
    let baseline = load(&paths[0]);
    let current = load(&paths[1]);

    let mut regressions = Vec::new();
    let mut incomparable = Vec::new();
    let mut compared = 0usize;
    println!("{:<55} {:>12} {:>12} {:>8}", "benchmark", "baseline ns", "current ns", "delta");
    for (label, base_ns) in &baseline {
        let Some(cur_ns) = current.get(label) else {
            println!("{label:<55} {base_ns:>12.1} {:>12} {:>8}", "absent", "-");
            continue;
        };
        let Some(delta) = relative_delta(*base_ns, *cur_ns) else {
            // A zero/negative/non-finite mean is corrupt data, not a
            // passing benchmark: `NaN > threshold` is false, so before
            // this guard a broken baseline sailed through silently.
            println!("{label:<55} {base_ns:>12.1} {cur_ns:>12.1} {:>8}", "n/a");
            incomparable.push(label.clone());
            continue;
        };
        compared += 1;
        println!("{label:<55} {base_ns:>12.1} {cur_ns:>12.1} {:>+7.1}%", delta * 100.0);
        let limit = per_label.get(label).copied().unwrap_or(threshold);
        if delta > limit {
            regressions.push((label.clone(), delta, limit));
        }
    }
    for label in current.keys().filter(|l| !baseline.contains_key(*l)) {
        println!("{label:<55} {:>12} {:>12.1} {:>8}", "absent", current[label], "new");
    }
    if !incomparable.is_empty() {
        for label in &incomparable {
            eprintln!(
                "bench_guard: INCOMPARABLE {label}: non-positive or non-finite mean — \
                 regenerate the baseline"
            );
        }
        return ExitCode::from(2);
    }
    if compared == 0 {
        eprintln!("bench_guard: no overlapping labels between the two files");
        return ExitCode::from(2);
    }
    let mut order_failures = Vec::new();
    for (fast, slow) in &orderings {
        let (Some(f), Some(s)) = (current.get(fast), current.get(slow)) else {
            eprintln!("bench_guard: --require-faster label missing from current file: {fast}={slow}");
            return ExitCode::from(2);
        };
        println!("{fast:<55} {f:>12.1} vs {s:>12.1} (must be faster)");
        if f >= s {
            order_failures.push((fast, slow, *f, *s));
        }
    }
    if regressions.is_empty() && order_failures.is_empty() {
        println!(
            "bench_guard: OK — {compared} benchmark(s) within threshold{}",
            if orderings.is_empty() {
                String::new()
            } else {
                format!(", {} ordering(s) hold", orderings.len())
            }
        );
        return ExitCode::SUCCESS;
    }
    for (label, delta, limit) in &regressions {
        eprintln!(
            "bench_guard: REGRESSION {label}: {:+.1}% (threshold {:.0}%)",
            delta * 100.0,
            limit * 100.0
        );
    }
    for (fast, slow, f, s) in &order_failures {
        eprintln!("bench_guard: ORDERING {fast} ({f:.1} ns) is not faster than {slow} ({s:.1} ns)");
    }
    ExitCode::FAILURE
}

/// Relative regression of `cur_ns` against `base_ns`, or `None` when
/// the pair is incomparable: a non-positive baseline (a zero mean from
/// a corrupt file would otherwise yield an Inf/NaN ratio that every
/// `>` comparison silently answers `false` to) or a non-finite result.
fn relative_delta(base_ns: f64, cur_ns: f64) -> Option<f64> {
    if base_ns <= 0.0 || !base_ns.is_finite() || !cur_ns.is_finite() {
        return None;
    }
    let delta = cur_ns / base_ns - 1.0;
    delta.is_finite().then_some(delta)
}

fn usage(msg: &str) -> ! {
    eprintln!(
        "bench_guard: {msg}\nusage: bench_guard <baseline.json> <current.json> \
         [--threshold FRACTION] [--threshold-for LABEL=FRACTION ...] \
         [--require-faster FAST=SLOW ...]"
    );
    std::process::exit(2);
}

/// Parses the shim's fixed JSONL shape without a JSON dependency: every
/// line is `{"label":"...","mean_ns":N,...}` with `\"` and `\\` the only
/// escapes the emitter produces.
fn load(path: &str) -> BTreeMap<String, f64> {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("bench_guard: cannot read {path}: {e}");
        std::process::exit(2);
    });
    let mut out = BTreeMap::new();
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        let Some((label, mean_ns)) = parse_line(line) else {
            eprintln!("bench_guard: skipping malformed line in {path}: {line}");
            continue;
        };
        out.insert(label, mean_ns);
    }
    if out.is_empty() {
        eprintln!("bench_guard: no benchmark records in {path}");
        std::process::exit(2);
    }
    out
}

fn parse_line(line: &str) -> Option<(String, f64)> {
    let rest = line.trim().strip_prefix("{\"label\":\"")?;
    let mut label = String::new();
    let mut chars = rest.chars();
    loop {
        match chars.next()? {
            '\\' => label.push(chars.next()?),
            '"' => break,
            c => label.push(c),
        }
    }
    let rest: String = chars.collect();
    let value = rest.strip_prefix(",\"mean_ns\":")?;
    let end = value.find(|c: char| c != '.' && c != '-' && !c.is_ascii_digit())?;
    Some((label, value[..end].parse().ok()?))
}

#[cfg(test)]
mod tests {
    use super::{parse_line, relative_delta};

    #[test]
    fn delta_of_healthy_pair() {
        let d = relative_delta(100.0, 125.0).expect("comparable");
        assert!((d - 0.25).abs() < 1e-12);
        let d = relative_delta(100.0, 80.0).expect("comparable");
        assert!((d + 0.2).abs() < 1e-12);
    }

    #[test]
    fn zero_or_negative_baseline_is_incomparable() {
        // Regression: 125.0 / 0.0 - 1.0 = Inf used to flow into
        // `delta > threshold` (true → at least it failed) but
        // 0.0 / 0.0 - 1.0 = NaN compared false and PASSED silently.
        assert_eq!(relative_delta(0.0, 125.0), None);
        assert_eq!(relative_delta(0.0, 0.0), None);
        assert_eq!(relative_delta(-5.0, 125.0), None);
    }

    #[test]
    fn non_finite_inputs_are_incomparable() {
        assert_eq!(relative_delta(f64::NAN, 1.0), None);
        assert_eq!(relative_delta(1.0, f64::NAN), None);
        assert_eq!(relative_delta(f64::INFINITY, 1.0), None);
        assert_eq!(relative_delta(1.0, f64::INFINITY), None);
        // A finite-but-huge ratio that overflows to Inf is also out.
        assert_eq!(relative_delta(f64::MIN_POSITIVE, f64::MAX), None);
    }

    #[test]
    fn parses_emitter_lines() {
        let (label, mean) =
            parse_line(r#"{"label":"sim_throughput/sweep8","mean_ns":1234.5,"iters":10}"#)
                .expect("parses");
        assert_eq!(label, "sim_throughput/sweep8");
        assert!((mean - 1234.5).abs() < 1e-9);
    }

    #[test]
    fn parses_escaped_labels() {
        let (label, _) =
            parse_line(r#"{"label":"a\"b\\c","mean_ns":1.0,"iters":1}"#).expect("parses");
        assert_eq!(label, "a\"b\\c");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_line("not json").is_none());
        assert!(parse_line(r#"{"label":"x","iters":1}"#).is_none());
    }
}
