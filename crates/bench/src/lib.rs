//! Criterion benchmark harness for wanacl; see the `benches/` targets,
//! one per table/figure of the paper plus protocol and auth
//! micro-benchmarks.
