//! End-to-end simulator throughput: a 3-manager / 8-host world driven
//! through ~10k invokes, a single nemesis campaign, and the 32-seed
//! campaign sweep both sequentially and on the parallel executor. The
//! sweep pair is the headline number for the parallel-campaign work:
//! on an N-core box the parallel label should run close to N times
//! faster than the sequential one (identical reports either way).
//!
//! `BENCH_PROFILE=full` runs the full-size workloads; the default quick
//! profile shrinks horizons and seed counts so CI smoke runs stay under
//! a few seconds. Labels encode the profile, so a regression guard never
//! compares a quick run against a full baseline.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use wanacl_analysis::empirical::{run_empirical, ScaleConfig};
use wanacl_core::campaign::{run_campaigns_parallel, CampaignConfig};
use wanacl_core::prelude::*;
use wanacl_sim::queue::Scheduler;
use wanacl_sim::time::SimDuration;

fn full_profile() -> bool {
    std::env::var("BENCH_PROFILE").is_ok_and(|p| p == "full")
}

/// The reference world: 3 managers, 8 hosts, 8 users each invoking
/// every 50 ms of simulated time — 63 simulated seconds is ~10k
/// invokes.
fn world_sim_secs(full: bool) -> u64 {
    if full {
        63
    } else {
        8
    }
}

fn run_world(sim_secs: u64) -> Deployment {
    let policy = Policy::builder(2)
        .revocation_bound(SimDuration::from_secs(60))
        .query_timeout(SimDuration::from_millis(400))
        .max_attempts(3)
        .build();
    let mut d = Scenario::builder(42)
        .managers(3)
        .hosts(8)
        .users(8)
        .policy(policy)
        .all_users_granted()
        .workload(SimDuration::from_millis(50))
        .build();
    d.run_for(SimDuration::from_secs(sim_secs));
    d
}

fn bench_world_throughput(c: &mut Criterion) {
    let full = full_profile();
    let sim_secs = world_sim_secs(full);
    // One reference run so the ns/iter figure converts to events/sec.
    let d = run_world(sim_secs);
    let invokes = d.aggregate_user_stats().sent;
    let messages = d.world.metrics().counter("net.sent");
    println!(
        "sim_throughput/world_3m_8h[{}]: {invokes} invokes, {messages} messages per run",
        if full { "full" } else { "quick" }
    );
    let mut group = c.benchmark_group("sim_throughput");
    group.bench_function(format!("world_3m_8h_{invokes}_invokes"), |b| {
        b.iter(|| black_box(run_world(sim_secs).aggregate_user_stats().sent));
    });
    group.finish();
}

fn campaign_config(seed: u64, horizon_secs: u64) -> CampaignConfig {
    CampaignConfig {
        seed,
        horizon: SimDuration::from_secs(horizon_secs),
        ..CampaignConfig::default()
    }
}

fn bench_campaign_sweep(c: &mut Criterion) {
    let full = full_profile();
    let horizon = if full { 6 } else { 2 };
    let seeds: u64 = if full { 32 } else { 8 };
    let configs: Vec<CampaignConfig> =
        (0..seeds).map(|seed| campaign_config(seed, horizon)).collect();
    let mut group = c.benchmark_group("sim_throughput");
    group.bench_function(format!("single_campaign_h{horizon}"), |b| {
        b.iter(|| black_box(run_campaigns_parallel(&configs[..1], 1)));
    });
    group.bench_function(format!("sweep{seeds}_h{horizon}_sequential"), |b| {
        b.iter(|| black_box(run_campaigns_parallel(&configs, 1)));
    });
    group.bench_function(format!("sweep{seeds}_h{horizon}_parallel"), |b| {
        b.iter(|| black_box(run_campaigns_parallel(&configs, 0)));
    });
    group.finish();
}

/// The planet-scale probe world: 10,000 hosts and 10 managers checking
/// across the regional WAN under EpochIid partitions — the workload the
/// calendar queue and SoA node arena exist for. The naive-heap control
/// runs the *same* world on the `BinaryHeap` scheduler; its label is in
/// the results file so a run can prove the indexed queue still pays for
/// itself (`bench_guard --require-faster`).
fn scale_cfg(full: bool, scheduler: Scheduler) -> ScaleConfig {
    ScaleConfig {
        horizon: SimDuration::from_secs(if full { 600 } else { 60 }),
        checks_per_host: if full { 5.0 } else { 0.5 },
        revoke_ops: if full { 2_000 } else { 200 },
        scheduler,
        ..ScaleConfig::default()
    }
}

fn bench_world_10k(c: &mut Criterion) {
    let full = full_profile();
    let d = run_empirical(&scale_cfg(full, Scheduler::Calendar));
    println!(
        "sim_throughput/world_10k[{}]: {} checks, {} messages per run",
        if full { "full" } else { "quick" },
        d.checks,
        d.metrics.counter("net.sent")
    );
    let (label, control) = if full {
        ("world_10k_full", "world_10k_full_heap_control")
    } else {
        ("world_10k", "world_10k_heap_control")
    };
    let mut group = c.benchmark_group("sim_throughput");
    group.bench_function(label, |b| {
        b.iter(|| black_box(run_empirical(&scale_cfg(full, Scheduler::Calendar)).checks));
    });
    group.bench_function(control, |b| {
        b.iter(|| black_box(run_empirical(&scale_cfg(full, Scheduler::NaiveHeap)).checks));
    });
    group.finish();
}

criterion_group!(benches, bench_world_throughput, bench_campaign_sweep, bench_world_10k);
criterion_main!(benches);
