//! Micro-benchmarks of the authentication substrate.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use rand::rngs::StdRng;
use rand::SeedableRng;
use wanacl_auth::hmac::hmac_sha256;
use wanacl_auth::rsa::{self, KeyPair};
use wanacl_auth::sha256::Digest;

fn bench_sha256(c: &mut Criterion) {
    let mut group = c.benchmark_group("auth/sha256");
    for size in [64usize, 1_024, 65_536] {
        let data = vec![0xABu8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_function(format!("{size}B"), |b| {
            b.iter(|| black_box(Digest::of(black_box(&data))))
        });
    }
    group.finish();
}

fn bench_hmac(c: &mut Criterion) {
    let data = vec![0x5Au8; 256];
    c.bench_function("auth/hmac_256B", |b| {
        b.iter(|| black_box(hmac_sha256(b"shared-key", black_box(&data))))
    });
}

fn bench_rsa(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let kp = KeyPair::generate(&mut rng);
    let msg = b"Add(app0, u1, use)";
    let sig = kp.sign(msg);
    c.bench_function("auth/rsa_keygen", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| black_box(KeyPair::generate(&mut rng)))
    });
    c.bench_function("auth/rsa_sign", |b| b.iter(|| black_box(kp.sign(black_box(msg)))));
    c.bench_function("auth/rsa_verify", |b| {
        b.iter(|| black_box(rsa::verify(&kp.public, black_box(msg), &sig)))
    });
}

criterion_group!(benches, bench_sha256, bench_hmac, bench_rsa);
criterion_main!(benches);
