//! Bench: regenerating Table 2 (analytic + Monte Carlo). Prints the
//! analytic table once so bench logs carry the reproduced artifact.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use wanacl_analysis::montecarlo::estimate_ps;
use wanacl_analysis::tables::{render_table2, table2};
use wanacl_sim::rng::SimRng;

fn bench_table2(c: &mut Criterion) {
    eprintln!("\n{}", render_table2(&[0.1, 0.2]));

    let mut group = c.benchmark_group("table2");
    group.bench_function("analytic_full_table", |b| {
        b.iter(|| black_box(table2(black_box(&[0.1, 0.2]))))
    });
    group.bench_function("monte_carlo_cell_10k", |b| {
        let mut rng = SimRng::seed_from(2);
        b.iter(|| black_box(estimate_ps(12, 6, 0.2, 10_000, &mut rng)))
    });
    group.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
