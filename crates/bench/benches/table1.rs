//! Bench: regenerating Table 1 (analytic, Monte Carlo, and one
//! protocol-level cell). Prints the analytic table once so bench logs
//! carry the reproduced artifact.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use wanacl_analysis::experiments::measure_availability;
use wanacl_analysis::montecarlo::estimate_pa;
use wanacl_analysis::tables::{render_table1, table1};
use wanacl_sim::rng::SimRng;

fn bench_table1(c: &mut Criterion) {
    eprintln!("\n{}", render_table1(10, &[0.1, 0.2]));

    let mut group = c.benchmark_group("table1");
    group.bench_function("analytic_full_table", |b| {
        b.iter(|| black_box(table1(black_box(10), black_box(&[0.1, 0.2]))))
    });
    group.bench_function("monte_carlo_cell_10k", |b| {
        let mut rng = SimRng::seed_from(1);
        b.iter(|| black_box(estimate_pa(10, 5, 0.1, 10_000, &mut rng)))
    });
    group.sample_size(10);
    group.bench_function("protocol_cell_20_trials", |b| {
        b.iter(|| black_box(measure_availability(10, 5, 0.1, 20, 7)))
    });
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
