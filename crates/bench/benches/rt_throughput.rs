//! Live-path throughput of the worker-pool runtime: real `HostNode`s
//! doing real quorum + cache checks against real `ManagerNode`s over
//! the in-process router, at flash-crowd scale.
//!
//! The headline label is `rt_live/wall_per_check` (full profile:
//! 1000 hosts), written in the same per-unit shape as the committed
//! thread-per-node baseline `rt_soak/wall_per_invoke`, so
//! `bench_guard --require-faster` can prove the event-driven pool beats
//! the old runtime on checks/sec. The quick profile shrinks the crowd
//! so CI smoke stays in seconds; labels encode the profile so a guard
//! never compares quick against full.
//!
//! `rt_live/codec_frame` exercises the length-prefixed batch codec the
//! coalesced flush path uses at a byte boundary.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::{Duration, Instant};

use wanacl_core::prelude::*;
use wanacl_rt::codec::{decode_batch, encode_batch};
use wanacl_rt::RuntimeBuilder;
use wanacl_sim::node::NodeId;
use wanacl_sim::time::SimDuration;

fn full_profile() -> bool {
    std::env::var("BENCH_PROFILE").is_ok_and(|p| p == "full")
}

fn live_policy(c: usize) -> Policy {
    Policy::builder(c)
        .revocation_bound(SimDuration::from_secs(60))
        .clock_rate_bound(1.0)
        .query_timeout(SimDuration::from_secs(5))
        .max_attempts(2)
        .cache_sweep_interval(SimDuration::from_secs(5))
        .build()
}

/// Builds 3 managers (C = 2) plus `hosts` host nodes on the pool and
/// drives `rounds` check waves through every host: wave one is the cold
/// quorum path, later waves hit the warm cache. Returns the measured
/// drive-and-drain wall time; build and shutdown are excluded.
fn run_live_checks(hosts: usize, rounds: u64) -> Duration {
    let policy = live_policy(2);
    let mut acl = Acl::new();
    acl.add(UserId(1), Right::Use);

    let mut b: RuntimeBuilder<ProtoMsg> = RuntimeBuilder::new(77);
    let manager_ids: Vec<NodeId> = (0..3).map(NodeId::from_index).collect();
    for (i, &id) in manager_ids.iter().enumerate() {
        let peers = manager_ids.iter().copied().filter(|p| *p != id).collect();
        let config = ManagerConfig {
            peers,
            apps: vec![ManagerApp {
                app: AppId(0),
                policy: policy.clone(),
                initial_acl: acl.clone(),
            }],
            registry: None,
            enforce_manage_right: false,
            ..ManagerConfig::default()
        };
        let got = b.add_node(format!("manager{i}"), Box::new(ManagerNode::new(config)));
        assert_eq!(got, id);
    }
    let host_ids: Vec<NodeId> = (0..hosts)
        .map(|i| {
            b.add_node(
                format!("host{i}"),
                Box::new(HostNode::new(
                    vec![AppHost {
                        app: AppId(0),
                        policy: policy.clone(),
                        directory: ManagerDirectory::Static(manager_ids.clone().into()),
                        application: Box::new(CountingApp::new()),
                    }],
                    None,
                )),
            )
        })
        .collect();
    let rt = b.start();

    let expected = hosts as u64 * rounds;
    let deadline = Instant::now() + Duration::from_secs(120);
    let start = Instant::now();
    // The environment invokes directly at the hosts (verdict replies to
    // ENV are silently dropped by the router); `host.allowed` counts
    // each completed check. Wave one cold-starts every host cache at
    // once — the flash crowd — and must fully settle before the warm
    // waves measure the cache path.
    let mut sent = 0u64;
    for round in 0..rounds {
        for (i, &host) in host_ids.iter().enumerate() {
            rt.send_from_env(
                host,
                ProtoMsg::Invoke {
                    app: AppId(0),
                    user: UserId(1),
                    req: ReqId(round * hosts as u64 + i as u64),
                    payload: "bench".into(),
                    signature: None,
                },
            );
            sent += 1;
        }
        while rt.metrics().counter("host.allowed") < sent {
            assert!(Instant::now() < deadline, "live checks stalled");
            std::thread::sleep(Duration::from_micros(200));
        }
    }
    let elapsed = start.elapsed();
    assert_eq!(rt.metrics().counter("host.allowed"), expected);
    rt.shutdown();
    elapsed
}

/// Appends a custom per-unit label to the `BENCH_JSON` results file in
/// the harness's own record shape, so derived figures (ns per check)
/// sit next to the raw per-run labels.
fn append_label(label: &str, mean_ns: f64, iters: u64) {
    use std::io::Write;
    let path = std::env::var("BENCH_JSON").unwrap_or_else(|_| "BENCH_sim.json".to_owned());
    if let Ok(mut f) = std::fs::OpenOptions::new().create(true).append(true).open(path) {
        let _ = writeln!(f, "{{\"label\":\"{label}\",\"mean_ns\":{mean_ns:.1},\"iters\":{iters}}}");
    }
}

fn bench_live_checks(c: &mut Criterion) {
    let full = full_profile();
    let (hosts, rounds) = if full { (1000, 8) } else { (100, 4) };
    let profile = if full { "full" } else { "quick" };

    // One reference run for the headline per-check figure: total checks
    // over drive-and-drain wall time, comparable unit-for-unit with the
    // committed `rt_soak/wall_per_invoke` thread-per-node baseline.
    let checks = hosts as u64 * rounds;
    let elapsed = run_live_checks(hosts, rounds);
    let per_check_ns = elapsed.as_nanos() as f64 / checks as f64;
    println!(
        "rt_live/checks[{profile}]: {hosts} hosts, {checks} checks in {elapsed:?} \
         ({:.0} checks/sec)",
        checks as f64 / elapsed.as_secs_f64()
    );
    let label =
        if full { "rt_live/wall_per_check".to_owned() } else { format!("rt_live/wall_per_check_{profile}") };
    append_label(&label, per_check_ns, checks);

    let mut group = c.benchmark_group("rt_live");
    group.bench_function(format!("checks_{hosts}h_{rounds}r_{profile}"), |b| {
        b.iter(|| black_box(run_live_checks(hosts, rounds)));
    });
    group.finish();
}

fn bench_codec_frame(c: &mut Criterion) {
    // A realistic coalesced flush: 64 envelopes of ~100 bytes.
    let batch: Vec<Vec<u8>> =
        (0..64).map(|i| format!("check app=0 user=1 req={i} payload=bench-envelope").into_bytes()).collect();
    let mut group = c.benchmark_group("rt_live");
    group.bench_function("codec_frame", |b| {
        b.iter(|| {
            let framed = encode_batch(black_box(&batch));
            let back: Vec<Vec<u8>> = decode_batch(black_box(&framed)).expect("round trip");
            black_box(back.len())
        });
    });
    group.finish();
}

criterion_group!(benches, bench_live_checks, bench_codec_frame);
criterion_main!(benches);
