//! Bench: the §4.1 `O(C/Te)` overhead claim — closed form plus the
//! protocol-level measurement at several `(C, Te)` points.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use wanacl_analysis::experiments::measure_overhead;
use wanacl_analysis::overhead::{sweep_c, sweep_te, OverheadPoint};
use wanacl_sim::time::SimDuration;

fn bench_overhead(c: &mut Criterion) {
    eprintln!("\nO(C/Te) model sweep (msgs/s, invoke rate 2/s):");
    for (te, v) in sweep_te(2, &[5.0, 10.0, 20.0, 40.0], 2.0) {
        eprintln!("  C=2 Te={te:>4}s -> {v:.3}");
    }
    for (cq, v) in sweep_c(&[1, 2, 4, 8], 10.0, 2.0) {
        eprintln!("  C={cq} Te=  10s -> {v:.3}");
    }

    let mut group = c.benchmark_group("overhead");
    group.bench_function("model_point", |b| {
        b.iter(|| {
            black_box(
                OverheadPoint::new(black_box(4), black_box(10.0), black_box(2.0))
                    .control_messages_per_second(),
            )
        })
    });
    group.sample_size(10);
    for (cq, te) in [(1usize, 10u64), (4, 10), (1, 40)] {
        group.bench_with_input(
            BenchmarkId::new("protocol_600s_sim", format!("C{cq}_Te{te}")),
            &(cq, te),
            |b, &(cq, te)| {
                b.iter(|| black_box(measure_overhead(cq, SimDuration::from_secs(te), 3)))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_overhead);
criterion_main!(benches);
