//! Micro-benchmarks of the protocol hot paths: cache-hit invoke,
//! cold-check invoke, revocation round, and raw simulator throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use wanacl_core::prelude::*;
use wanacl_sim::time::{SimDuration, SimTime};

fn fresh_deployment(seed: u64, c: usize, m: usize) -> Deployment {
    let policy = Policy::builder(c)
        .revocation_bound(SimDuration::from_secs(3_600))
        .query_timeout(SimDuration::from_millis(500))
        .max_attempts(2)
        .build();
    Scenario::builder(seed).managers(m).hosts(1).users(1).policy(policy).all_users_granted().build()
}

/// One invoke end to end through the simulator (cache hit after warmup).
fn bench_cache_hit_invoke(c: &mut Criterion) {
    c.bench_function("protocol/cache_hit_invoke", |b| {
        let mut d = fresh_deployment(1, 2, 3);
        d.run_for(SimDuration::from_secs(1));
        d.invoke_from(0); // warm the cache
        d.run_for(SimDuration::from_secs(2));
        b.iter(|| {
            d.invoke_from(0);
            d.run_for(SimDuration::from_millis(500));
            black_box(d.user_agent(0).stats().allowed)
        });
    });
}

/// A full cold check (query quorum, grant, reply) per iteration.
fn bench_cold_check(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocol/cold_check");
    for (m, cq) in [(3usize, 2usize), (10, 5), (20, 10)] {
        group.bench_function(format!("M{m}_C{cq}"), |b| {
            // Te tiny: every invoke is a cold check.
            let policy = Policy::builder(cq)
                .revocation_bound(SimDuration::from_millis(1))
                .query_timeout(SimDuration::from_millis(500))
                .max_attempts(2)
                .build();
            let mut d = Scenario::builder(2)
                .managers(m)
                .hosts(1)
                .users(1)
                .policy(policy)
                .all_users_granted()
                .build();
            d.run_for(SimDuration::from_secs(1));
            b.iter(|| {
                d.invoke_from(0);
                d.run_for(SimDuration::from_millis(700));
                black_box(d.user_agent(0).stats().allowed)
            });
        });
    }
    group.finish();
}

/// A grant + quorum dissemination + revoke + notice round.
fn bench_admin_round(c: &mut Criterion) {
    c.bench_function("protocol/grant_revoke_round", |b| {
        let mut d = fresh_deployment(3, 2, 5);
        d.run_for(SimDuration::from_secs(1));
        let mut user = 100u64;
        b.iter(|| {
            user += 1;
            d.grant(UserId(user), Right::Use);
            d.run_for(SimDuration::from_secs(1));
            d.revoke(UserId(user), Right::Use);
            d.run_for(SimDuration::from_secs(1));
            black_box(d.admin_agent().stable_count())
        });
    });
}

/// Raw simulator event throughput: a dense heartbeat mesh.
fn bench_sim_throughput(c: &mut Criterion) {
    c.bench_function("sim/heartbeat_mesh_10mgr_60s", |b| {
        b.iter(|| {
            let mut d = fresh_deployment(black_box(4), 5, 10);
            d.run_until(SimTime::from_secs(60));
            black_box(d.world.metrics().counter("net.sent"))
        });
    });
}

criterion_group!(
    benches,
    bench_cache_hit_invoke,
    bench_cold_check,
    bench_admin_round,
    bench_sim_throughput
);
criterion_main!(benches);
