//! Bench: regenerating Figure 5 (curves + sweet-range search +
//! protocol-level point). Prints the ASCII figure once so bench logs
//! carry the reproduced artifact.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use wanacl_analysis::experiments::measure_security;
use wanacl_analysis::figures::{fig5, render_fig5};

fn bench_fig5(c: &mut Criterion) {
    for pi in [0.1, 0.2] {
        eprintln!("\n{}", render_fig5(&fig5(10, pi), 16));
    }

    let mut group = c.benchmark_group("fig5");
    group.bench_function("curves_m10", |b| b.iter(|| black_box(fig5(10, black_box(0.2)))));
    group.bench_function("sweet_range", |b| {
        let s = fig5(10, 0.1);
        b.iter(|| black_box(s.sweet_range(black_box(0.99))))
    });
    group.sample_size(10);
    group.bench_function("protocol_security_point_20_trials", |b| {
        b.iter(|| black_box(measure_security(10, 5, 0.1, 20, 9)))
    });
    group.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
