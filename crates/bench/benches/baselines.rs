//! Bench: the §3 dissemination-strategy comparison (experiment E8) —
//! the full shared workload under each strategy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use wanacl_baselines::prelude::{run_strategy, ComparisonConfig, Strategy};
use wanacl_sim::time::SimDuration;

fn bench_baselines(c: &mut Criterion) {
    let cfg = ComparisonConfig {
        horizon: SimDuration::from_secs(300),
        ..ComparisonConfig::default()
    };

    eprintln!("\nstrategy comparison (300 s simulated, 4 mgrs / 3 hosts / 5 users):");
    for s in Strategy::all() {
        let r = run_strategy(s, &cfg);
        eprintln!(
            "  {:<22} total={:<6} ctrl/check={:<6.2} update_msgs={:<5} stale_allows={}",
            s.name(),
            r.total_messages,
            r.control_per_check,
            r.update_messages,
            r.stale_allows
        );
    }

    let mut group = c.benchmark_group("baselines");
    group.sample_size(10);
    for s in Strategy::all() {
        group.bench_with_input(BenchmarkId::new("workload_300s", s.name()), &s, |b, &s| {
            b.iter(|| black_box(run_strategy(s, &cfg)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);
