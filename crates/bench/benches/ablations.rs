//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * **Caching** (the paper's core optimization over "check with a
//!   manager every time"): Te tiny (no effective cache) vs Te large.
//! * **Query fan-out**: All vs Subset vs Sequential — message cost vs
//!   check latency.
//! * **Retransmission cadence**: how the manager retry interval trades
//!   traffic against time-to-quorum under loss.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use wanacl_core::prelude::*;
use wanacl_sim::net::WanNet;
use wanacl_sim::time::{SimDuration, SimTime};

/// 60 s of steady single-user workload; returns (allowed, control msgs).
fn run_workload(policy: Policy, seed: u64, loss: f64) -> (u64, u64) {
    let net = WanNet::builder()
        .constant_delay(SimDuration::from_millis(20))
        .loss(loss)
        .build();
    let mut d = Scenario::builder(seed)
        .managers(5)
        .hosts(1)
        .users(1)
        .policy(policy)
        .all_users_granted()
        .net(Box::new(net))
        .build();
    let mut t = SimTime::from_secs(1);
    while t < SimTime::from_secs(60) {
        d.world.inject(
            t,
            d.users[0].1,
            ProtoMsg::Invoke {
                app: d.app,
                user: UserId(1),
                req: ReqId(0),
                payload: "tick".into(),
                signature: None,
            },
        );
        t += SimDuration::from_millis(500);
    }
    d.run_until(SimTime::from_secs(65));
    let m = d.world.metrics();
    let control = m.counter("host.queries_sent") + m.counter("mgr.grants") + m.counter("mgr.denies");
    (d.aggregate_user_stats().allowed, control)
}

fn bench_caching_ablation(c: &mut Criterion) {
    // Print the ablation result once: with vs without the cache.
    let with_cache = run_workload(
        Policy::builder(2).revocation_bound(SimDuration::from_secs(30)).build(),
        1,
        0.0,
    );
    let no_cache = run_workload(
        Policy::builder(2).revocation_bound(SimDuration::from_millis(1)).build(),
        1,
        0.0,
    );
    eprintln!(
        "\ncaching ablation (120 invokes): cached -> {} ctrl msgs, uncached -> {} ctrl msgs",
        with_cache.1, no_cache.1
    );

    let mut group = c.benchmark_group("ablation/caching");
    group.sample_size(10);
    for (name, te) in [("with_cache_te30s", 30_000u64), ("no_cache_te1ms", 1)] {
        group.bench_function(name, |b| {
            let policy =
                Policy::builder(2).revocation_bound(SimDuration::from_millis(te)).build();
            b.iter(|| black_box(run_workload(policy.clone(), 2, 0.0)))
        });
    }
    group.finish();
}

fn bench_fanout_ablation(c: &mut Criterion) {
    let cases: [(&str, Policy); 3] = [
        (
            "all",
            Policy::builder(1)
                .revocation_bound(SimDuration::from_millis(1))
                .fanout(QueryFanout::All)
                .build(),
        ),
        (
            "subset",
            Policy::builder(1)
                .revocation_bound(SimDuration::from_millis(1))
                .fanout(QueryFanout::Subset)
                .build(),
        ),
        (
            "sequential",
            Policy::builder(1)
                .revocation_bound(SimDuration::from_millis(1))
                .fanout(QueryFanout::Sequential)
                .build(),
        ),
    ];
    eprintln!("\nfan-out ablation (uncached checks, M=5, C=1):");
    for (name, policy) in &cases {
        let (allowed, control) = run_workload(policy.clone(), 3, 0.0);
        eprintln!("  {name:<10} allowed={allowed:<4} ctrl msgs={control}");
    }

    let mut group = c.benchmark_group("ablation/fanout");
    group.sample_size(10);
    for (name, policy) in cases {
        group.bench_with_input(BenchmarkId::from_parameter(name), &policy, |b, p| {
            b.iter(|| black_box(run_workload(p.clone(), 4, 0.0)))
        });
    }
    group.finish();
}

/// Time-to-quorum vs retry cadence under 20% loss.
fn bench_retry_cadence(c: &mut Criterion) {
    fn time_to_quorum(retry_ms: u64, seed: u64) -> f64 {
        let tuning = ManagerConfig {
            retry_interval: SimDuration::from_millis(retry_ms),
            ..ManagerConfig::default()
        };
        let net = WanNet::builder()
            .constant_delay(SimDuration::from_millis(20))
            .loss(0.2)
            .build();
        let mut d = Scenario::builder(seed)
            .managers(5)
            .hosts(1)
            .users(1)
            .policy(Policy::builder(3).build())
            .all_users_granted()
            .manager_tuning(tuning)
            .net(Box::new(net))
            .build();
        d.run_for(SimDuration::from_secs(1));
        d.revoke(UserId(1), Right::Use);
        d.run_for(SimDuration::from_secs(30));
        d.admin_agent()
            .stable_latency(0)
            .map(|l| l.as_secs_f64())
            .unwrap_or(f64::INFINITY)
    }

    eprintln!("\nretry-cadence ablation (20% loss, time to update quorum):");
    for retry_ms in [100u64, 500, 2_000] {
        eprintln!("  retry {retry_ms:>5} ms -> {:.3} s", time_to_quorum(retry_ms, 5));
    }

    let mut group = c.benchmark_group("ablation/retry_cadence");
    group.sample_size(10);
    for retry_ms in [100u64, 500, 2_000] {
        group.bench_with_input(
            BenchmarkId::from_parameter(retry_ms),
            &retry_ms,
            |b, &retry_ms| b.iter(|| black_box(time_to_quorum(retry_ms, 6))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_caching_ablation, bench_fanout_ablation, bench_retry_cadence);
criterion_main!(benches);
