//! Bench: the §3.3 freeze-vs-quorum comparison (experiment E6).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use wanacl_analysis::experiments::freeze_vs_quorum;

fn bench_freeze(c: &mut Criterion) {
    let cmp = freeze_vs_quorum(42);
    eprintln!(
        "\nfreeze vs quorum during a 100 s manager partition:\n  quorum strategy allowed {:.1}% — freeze strategy allowed {:.1}%",
        cmp.quorum_allowed * 100.0,
        cmp.freeze_allowed * 100.0
    );

    let mut group = c.benchmark_group("freeze_vs_quorum");
    group.sample_size(10);
    group.bench_function("both_strategies_125s_sim", |b| {
        b.iter(|| black_box(freeze_vs_quorum(black_box(42))))
    });
    group.finish();
}

criterion_group!(benches, bench_freeze);
criterion_main!(benches);
