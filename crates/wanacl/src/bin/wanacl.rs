//! `wanacl` — command-line driver for the access-control system.
//!
//! ```console
//! $ wanacl demo --managers 5 --check-quorum 3 --users 4 --minutes 10
//! $ wanacl tradeoff --pi 0.2 --trials 200
//! $ wanacl tables
//! $ wanacl audit --seed 7
//! $ wanacl nemesis --campaigns 100
//! $ wanacl nemesis --seed 3 --inject-bug cache-expiry
//! $ wanacl nemesis --disk-faults true --campaigns 50
//! $ wanacl nemesis --disk-faults true --inject-bug drop-wal
//! $ wanacl nemesis --ns-replicas 3 --ns-faults true --campaigns 100
//! $ wanacl nemesis --ns-replicas 3 --inject-bug ns-trust-unsigned
//! $ wanacl nemesis --tenants 2 --shards-per-tenant 2 --ns-replicas 3 --shard-faults true
//! $ wanacl nemesis --tenants 2 --shards-per-tenant 2 --ns-replicas 3 --inject-bug lost-handoff
//! $ wanacl nemesis --campaigns 20 --jobs 4 --metrics-out metrics.jsonl
//! $ wanacl obs --minutes 2 --format prometheus
//! $ wanacl obs --ns-replicas 3 --format jsonl
//! $ wanacl chaos --seed 1 --seconds 8
//! $ wanacl chaos --seed 1 --inject-bug drop-wal
//! $ wanacl chaos --seed 1 --tenants 2 --shards-per-tenant 2
//! $ wanacl chaos --control true --bench-out BENCH_rt.json
//! ```

use std::collections::HashMap;
use std::time::Duration;

use wanacl::core::audit::AuditLog;
use wanacl::core::campaign::{
    rollup_metrics, run_campaigns_parallel, sample_plan, shrink_plan, CampaignConfig, InjectedBug,
};
use wanacl::prelude::*;
use wanacl::rt::{ChaosRouter, FileStorage, NodeExit, RuntimeBuilder};
use wanacl::sim::obs::{metrics_jsonl, prometheus_text};
use wanacl::sim::trace::TraceEvent;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (command, flags) = parse(&args);
    match command.as_deref() {
        Some("demo") => demo(&flags),
        Some("tradeoff") => tradeoff(&flags),
        Some("tables") => tables(&flags),
        Some("audit") => audit(&flags),
        Some("nemesis") => nemesis(&flags),
        Some("chaos") => chaos(&flags),
        Some("obs") => obs(&flags),
        Some("scale") => scale(&flags),
        _ => {
            eprintln!(
                "usage: wanacl <command> [--flag value ...]\n\n\
                 commands:\n\
                 \x20 demo      run a deployment and print outcome statistics\n\
                 \x20           flags: --managers N --hosts N --users N --check-quorum C\n\
                 \x20                  --te SECS --minutes M --pi P --seed S\n\
                 \x20 tradeoff  sweep the check quorum and print PA/PS (model + measured)\n\
                 \x20           flags: --managers N --pi P --trials N\n\
                 \x20 tables    print the paper's Table 1 and Table 2 (analytic)\n\
                 \x20 audit     run a revocation scenario and verify the trace offline\n\
                 \x20           flags: --seed S\n\
                 \x20 nemesis   run fault-injection campaigns with the invariant oracle\n\
                 \x20           flags: --seed S --campaigns N --horizon-secs T\n\
                 \x20                  --managers N --hosts N --users N --intensity X\n\
                 \x20                  --jobs N             worker threads for the campaign\n\
                 \x20                                       sweep (0 = one per core; results\n\
                 \x20                                       are identical at any job count)\n\
                 \x20                  --name-service true\n\
                 \x20                  --ns-replicas N      replace the name service with N\n\
                 \x20                                       directory replicas (signed records,\n\
                 \x20                                       host quorum reads, anti-entropy)\n\
                 \x20                  --ns-read-quorum Q   verified replies a read needs\n\
                 \x20                                       (default: majority of replicas)\n\
                 \x20                  --ns-faults true     add directory faults (stale\n\
                 \x20                                       replicas, split-brain, malicious\n\
                 \x20                                       partial masters, replica crashes)\n\
                 \x20                  --disk-faults true   add disk faults (torn tails,\n\
                 \x20                                       failed fsyncs) and correlated\n\
                 \x20                                       cluster restarts to the fault mix\n\
                 \x20                  --tenants N          sharded multi-tenant plane: N\n\
                 \x20                                       tenant apps, each keyspace split\n\
                 \x20                                       into shards served by their own\n\
                 \x20                                       manager pairs (needs --ns-replicas;\n\
                 \x20                                       overrides --managers)\n\
                 \x20                  --shards-per-tenant K  shards per tenant (default 1)\n\
                 \x20                  --shard-faults true  add shard faults (online\n\
                 \x20                                       rebalances racing the nemesis,\n\
                 \x20                                       hosts pinned to stale shard maps)\n\
                 \x20                  --inject-bug cache-expiry|drop-wal|ns-trust-unsigned|\n\
                 \x20                               lost-handoff\n\
                 \x20                  --metrics-out PATH   write per-seed + rollup metrics as\n\
                 \x20                                       JSONL to PATH and the Prometheus\n\
                 \x20                                       rollup snapshot to PATH.prom\n\
                 \x20 chaos     run a live (threaded) soak under the seeded fault plan\n\
                 \x20           `nemesis` would use, with a manager kill/restart and\n\
                 \x20           crash/recover, checked by the invariant oracle\n\
                 \x20           flags: --seed S --seconds T --managers N --hosts N\n\
                 \x20                  --users N --check-quorum C --intensity X\n\
                 \x20                  --inject-bug drop-wal  arm manager 0's WAL to drop\n\
                 \x20                                       state on recovery (the oracle\n\
                 \x20                                       must catch it live)\n\
                 \x20                  --tenants N          live sharded soak: N tenant apps\n\
                 \x20                                       on their own manager pairs, a\n\
                 \x20                                       replicated directory, and a live\n\
                 \x20                                       online rebalance mid-soak\n\
                 \x20                  --shards-per-tenant K  shards per tenant (default 2)\n\
                 \x20                  --workers N          worker threads for the event\n\
                 \x20                                       pool (default: one per core,\n\
                 \x20                                       clamped to the node count)\n\
                 \x20                  --report-out PATH    write the JSONL soak report\n\
                 \x20                  --control true       fault-free control run\n\
                 \x20                  --bench-out PATH     (control only) write BENCH_rt\n\
                 \x20                                       baseline JSONL\n\
                 \x20 obs       run a short deployment and export its metrics snapshot\n\
                 \x20           flags: --managers N --hosts N --users N --check-quorum C\n\
                 \x20                  --minutes M --pi P --seed S\n\
                 \x20                  --ns-replicas N --ns-read-quorum Q (directory ns.*\n\
                 \x20                                       metrics: lookup latency, quorum\n\
                 \x20                                       rounds, degraded/stale counters)\n\
                 \x20                  --format prometheus|jsonl (default prometheus)\n\
                 \x20                  --out PATH (default stdout)\n\
                 \x20 scale     run a planet-scale probe world and compare measured\n\
                 \x20           PA/PS curves against the closed-form model\n\
                 \x20           flags: --hosts N (default 10000) --managers M\n\
                 \x20                  --check-quorum C --pi P --epoch-secs S\n\
                 \x20                  --horizon-secs T --checks-per-host X\n\
                 \x20                  --diurnal A --zipf-users N --zipf-s S\n\
                 \x20                  --flash-at SECS --flash-secs D --flash-mult X\n\
                 \x20                  --revoke-ops N --timeout-ms MS --seed S\n\
                 \x20                  --scheduler calendar|heap (bench control)\n\
                 \x20                  --metrics-out PATH   write the scale.* metrics\n\
                 \x20                                       snapshot as JSONL"
            );
            std::process::exit(2);
        }
    }
}

/// Parses `<command> --key value ...` without external crates.
fn parse(args: &[String]) -> (Option<String>, HashMap<String, String>) {
    let mut flags = HashMap::new();
    let command = args.first().cloned();
    let mut i = 1;
    while i < args.len() {
        if let Some(key) = args[i].strip_prefix("--") {
            let value = args.get(i + 1).cloned().unwrap_or_default();
            flags.insert(key.to_owned(), value);
            i += 2;
        } else {
            eprintln!("unexpected argument: {}", args[i]);
            std::process::exit(2);
        }
    }
    (command, flags)
}

fn get<T: std::str::FromStr>(flags: &HashMap<String, String>, key: &str, default: T) -> T {
    flags.get(key).and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn demo(flags: &HashMap<String, String>) {
    let managers: usize = get(flags, "managers", 5);
    let hosts: usize = get(flags, "hosts", 3);
    let users: usize = get(flags, "users", 4);
    let c: usize = get(flags, "check-quorum", (managers / 2).max(1));
    let te: u64 = get(flags, "te", 60);
    let minutes: u64 = get(flags, "minutes", 10);
    let pi: f64 = get(flags, "pi", 0.1);
    let seed: u64 = get(flags, "seed", 1);

    let policy = Policy::builder(c)
        .revocation_bound(SimDuration::from_secs(te))
        .query_timeout(SimDuration::from_millis(400))
        .max_attempts(3)
        .build();
    let net = wanacl::sim::net::WanNet::builder()
        .uniform_delay(SimDuration::from_millis(20), SimDuration::from_millis(80))
        .partitions(Box::new(wanacl::sim::net::partition::EpochIid::new(
            pi,
            SimDuration::from_secs(10),
            seed ^ 0xdead,
        )))
        .build();
    let mut d = Scenario::builder(seed)
        .managers(managers)
        .hosts(hosts)
        .users(users)
        .policy(policy)
        .all_users_granted()
        .workload(SimDuration::from_secs(3))
        .net(Box::new(net))
        .build();
    println!(
        "running {minutes} simulated minutes: M={managers} C={c} Te={te}s Pi={pi} \
         ({hosts} hosts, {users} users)"
    );
    d.run_for(SimDuration::from_secs(minutes * 60));
    let s = d.aggregate_user_stats();
    println!("requests:     {}", s.sent);
    println!("allowed:      {} ({:.2}%)", s.allowed, 100.0 * s.allowed as f64 / s.sent.max(1) as f64);
    println!("denied:       {}", s.denied);
    println!("unavailable:  {}", s.unavailable);
    println!("timeouts:     {}", s.timeouts);
    println!("messages:     {}", d.world.metrics().counter("net.sent"));
    if let Some(h) = d.world.metrics().histogram("host.check_latency_s") {
        if let Some(mean) = h.mean() {
            println!("mean cold-check latency: {:.3}s over {} checks", mean, h.count());
        }
    }
}

fn tradeoff(flags: &HashMap<String, String>) {
    let managers: usize = get(flags, "managers", 10);
    let pi: f64 = get(flags, "pi", 0.2);
    let trials: u64 = get(flags, "trials", 150);
    println!("M={managers} Pi={pi} trials={trials}\n");
    println!("  C | PA model  PA measured | PS model  PS measured");
    println!(" ---+------------------------+----------------------");
    for c in 1..=managers {
        let pa = wanacl::analysis::model::pa(managers as u64, c as u64, pi);
        let ps = wanacl::analysis::model::ps(managers as u64, c as u64, pi);
        let pa_m =
            wanacl::analysis::experiments::measure_availability(managers, c, pi, trials, 40 + c as u64);
        let ps_m =
            wanacl::analysis::experiments::measure_security(managers, c, pi, trials, 80 + c as u64);
        println!(
            " {c:2} |  {pa:.4}     {:.4}    |  {ps:.4}     {:.4}",
            pa_m.value, ps_m.value
        );
    }
}

fn tables(_flags: &HashMap<String, String>) {
    println!("{}", wanacl::analysis::tables::render_table1(10, &[0.1, 0.2]));
    println!("{}", wanacl::analysis::tables::render_table2(&[0.1, 0.2]));
}

/// Runs one planet-scale probe world (`empirical::run_empirical`) and
/// prints the measured PA/PS curves against the closed-form model, plus
/// the per-operation check-overhead numbers. This is the interactive
/// face of `repro_scale`'s empirical section: one configurable world
/// instead of the paper's full table sweep.
fn scale(flags: &HashMap<String, String>) {
    use wanacl::analysis::empirical::{run_empirical, FlashSpec, ScaleConfig};

    let hosts: usize = get(flags, "hosts", 10_000);
    let managers: usize = get(flags, "managers", 10);
    let check_quorum: usize = get(flags, "check-quorum", (managers / 2).max(1));
    let pi: f64 = get(flags, "pi", 0.1);
    let epoch_secs: u64 = get(flags, "epoch-secs", 10);
    let horizon_secs: u64 = get(flags, "horizon-secs", 600);
    let checks_per_host: f64 = get(flags, "checks-per-host", 5.0);
    let diurnal: f64 = get(flags, "diurnal", 0.5);
    let zipf_users: usize = get(flags, "zipf-users", hosts.max(1));
    let zipf_s: f64 = get(flags, "zipf-s", 1.1);
    let revoke_ops: u64 = get(flags, "revoke-ops", 2_000);
    let timeout_ms: u64 = get(flags, "timeout-ms", 1_000);
    let seed: u64 = get(flags, "seed", 1);
    let scheduler = match flags.get("scheduler").map(String::as_str) {
        None | Some("calendar") => Scheduler::Calendar,
        Some("heap") => Scheduler::NaiveHeap,
        Some(other) => {
            eprintln!("unknown scheduler: {other} (expected calendar|heap)");
            std::process::exit(2);
        }
    };
    let flash = flags.get("flash-at").map(|at| {
        let start_secs: u64 = at.parse().unwrap_or_else(|_| {
            eprintln!("--flash-at must be seconds");
            std::process::exit(2);
        });
        FlashSpec {
            start: SimTime::ZERO + SimDuration::from_secs(start_secs),
            duration: SimDuration::from_secs(get(flags, "flash-secs", 60)),
            multiplier: get(flags, "flash-mult", 3.0),
        }
    });

    let cfg = ScaleConfig {
        hosts,
        managers,
        check_quorum,
        pi,
        epoch: SimDuration::from_secs(epoch_secs),
        horizon: SimDuration::from_secs(horizon_secs),
        checks_per_host,
        diurnal_amplitude: diurnal,
        flash,
        zipf_users,
        zipf_s,
        revoke_ops,
        timeout: SimDuration::from_millis(timeout_ms),
        jitter: 0.1,
        seed,
        scheduler,
    };

    println!(
        "planet-scale probe: {hosts} hosts, M={managers} C={check_quorum} Pi={pi} \
         epoch={epoch_secs}s horizon={horizon_secs}s seed={seed} ({scheduler:?} queue)"
    );
    println!(
        "workload: Zipf(s={zipf_s}) over {zipf_users} users, diurnal amplitude {diurnal}{}",
        match flash {
            Some(f) => format!(
                ", flash crowd x{} for {}s at t={}",
                f.multiplier,
                f.duration.as_secs_f64(),
                f.start
            ),
            None => String::new(),
        }
    );

    let wall = std::time::Instant::now();
    let out = run_empirical(&cfg);
    let wall = wall.elapsed();
    let msgs = out.metrics.counter("net.sent");
    println!(
        "ran {} checks + {} revocations ({} messages) in {:.2}s wall ({:.0} msgs/s)\n",
        out.checks,
        out.revokes,
        msgs,
        wall.as_secs_f64(),
        msgs as f64 / wall.as_secs_f64().max(1e-9)
    );

    println!("  C   PA emp   PA model     |d|   PS emp   PS model     |d|");
    println!(" ---------------------------------------------------------------");
    for c in 1..=out.m {
        let (pa_e, pa_m) = (out.pa(c), out.pa_model(c));
        let (ps_e, ps_m) = (out.ps(c), out.ps_model(c));
        let marker = if c == out.check_quorum { "  <- C" } else { "" };
        println!(
            " {c:2}  {pa_e:7.4}  {pa_m:9.4}  {:6.4}  {ps_e:7.4}  {ps_m:9.4}  {:6.4}{marker}",
            (pa_e - pa_m).abs(),
            (ps_e - ps_m).abs()
        );
    }
    println!("\n  max |empirical - analytic| across C: {:.4}", out.max_abs_error());
    let emp_range = out.fig5_series().sweet_range(0.9);
    let model_range = wanacl::analysis::figures::fig5(out.m as u64, pi).sweet_range(0.9);
    println!("  sweet range (PA,PS >= 0.9): model {model_range:?}  empirical {emp_range:?}");

    println!("\nper-operation check overhead at C={check_quorum}:");
    match &out.quorum_latency {
        Some(s) => println!(
            "  time-to-quorum: mean {:.3}s  p50 {:.3}s  p99 {:.3}s  over {} quorate checks",
            s.mean, s.p50, s.p99, s.count
        ),
        None => println!("  time-to-quorum: no check reached quorum"),
    }
    let unavail = out.metrics.counter("scale.check_unavail");
    println!("  messages per check round: {:.2}", out.msgs_per_check);
    println!(
        "  unavailable rounds: {} ({:.2}%)",
        unavail,
        100.0 * unavail as f64 / out.checks.max(1) as f64
    );

    if let Some(path) = flags.get("metrics-out") {
        std::fs::write(path, metrics_jsonl(&out.metrics, "scale")).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        });
        println!("\nmetrics snapshot written to {path}");
    }
}

/// Runs `--campaigns` nemesis campaigns starting at `--seed`, each a
/// fresh deployment under a seed-derived adversarial schedule with the
/// invariant oracle attached. Campaigns fan out across `--jobs` worker
/// threads (0 = one per core); each seed's result is bit-identical to a
/// sequential run, and reports print in seed order regardless of which
/// worker finished first. On the lowest-seed violation, prints the
/// replayable counterexample, greedily shrinks the plan, and exits 1.
fn nemesis(flags: &HashMap<String, String>) {
    let seed: u64 = get(flags, "seed", 1);
    let campaigns: u64 = get(flags, "campaigns", 1);
    let jobs: usize = get(flags, "jobs", 0);
    let horizon_secs: u64 = get(flags, "horizon-secs", 10);
    let managers: usize = get(flags, "managers", 3);
    let hosts: usize = get(flags, "hosts", 2);
    let users: usize = get(flags, "users", 2);
    let intensity: f64 = get(flags, "intensity", 1.0);
    let use_name_service: bool = get(flags, "name-service", false);
    let ns_replicas: usize = get(flags, "ns-replicas", 0);
    let ns_read_quorum: usize = get(flags, "ns-read-quorum", 0);
    let ns_faults: bool = get(flags, "ns-faults", false);
    let disk_faults: bool = get(flags, "disk-faults", false);
    let tenants: usize = get(flags, "tenants", 0);
    let shards_per_tenant: usize = get(flags, "shards-per-tenant", 1);
    let shard_faults: bool = get(flags, "shard-faults", false);
    let inject_bug = match flags.get("inject-bug").map(String::as_str) {
        None | Some("none") => None,
        Some("cache-expiry") => Some(InjectedBug::IgnoreCacheExpiry { host_index: 0 }),
        Some("drop-wal") => Some(InjectedBug::DropWal { manager_index: 0 }),
        Some("ns-trust-unsigned") => Some(InjectedBug::NsTrustUnsigned { host_index: 0 }),
        Some("lost-handoff") => Some(InjectedBug::LostHandoff { manager_index: 0 }),
        Some(other) => {
            eprintln!(
                "unknown --inject-bug {other} \
                 (expected: cache-expiry, drop-wal, ns-trust-unsigned, or lost-handoff)"
            );
            std::process::exit(2);
        }
    };
    if matches!(inject_bug, Some(InjectedBug::NsTrustUnsigned { .. })) && ns_replicas == 0 {
        eprintln!("--inject-bug ns-trust-unsigned needs --ns-replicas N (N >= 1)");
        std::process::exit(2);
    }
    if matches!(inject_bug, Some(InjectedBug::LostHandoff { .. })) && tenants == 0 {
        eprintln!("--inject-bug lost-handoff needs --tenants N (the sharded plane)");
        std::process::exit(2);
    }
    if tenants > 0 && ns_replicas == 0 {
        eprintln!("--tenants needs --ns-replicas N (the shard map lives in the directory)");
        std::process::exit(2);
    }
    if shard_faults && tenants == 0 {
        eprintln!("--shard-faults true needs --tenants N (the sharded plane)");
        std::process::exit(2);
    }

    println!(
        "nemesis: {campaigns} campaign(s) from seed {seed}, horizon {horizon_secs}s, \
         {} hosts={hosts} users={users} intensity={intensity}{}{}{}{}",
        if tenants > 0 {
            format!(
                "tenants={tenants} shards/tenant={shards_per_tenant} \
                 M={}",
                2 * tenants * shards_per_tenant
            )
        } else {
            format!("M={managers}")
        },
        if disk_faults { " +disk-faults" } else { "" },
        if shard_faults { " +shard-faults" } else { "" },
        if ns_replicas > 0 {
            format!(" +directory[{ns_replicas} replicas{}]", if ns_faults { ", faults" } else { "" })
        } else {
            String::new()
        },
        match inject_bug {
            Some(InjectedBug::IgnoreCacheExpiry { .. }) => " [BUG INJECTED: cache-expiry]",
            Some(InjectedBug::DropWal { .. }) => " [BUG INJECTED: drop-wal]",
            Some(InjectedBug::NsTrustUnsigned { .. }) => " [BUG INJECTED: ns-trust-unsigned]",
            Some(InjectedBug::LostHandoff { .. }) => " [BUG INJECTED: lost-handoff]",
            None => "",
        }
    );
    let configs: Vec<CampaignConfig> = (seed..seed + campaigns)
        .map(|s| CampaignConfig {
            seed: s,
            managers,
            hosts,
            users,
            horizon: SimDuration::from_secs(horizon_secs),
            intensity,
            use_name_service,
            ns_replicas,
            ns_read_quorum,
            ns_faults,
            disk_faults,
            tenants,
            shards_per_tenant,
            shard_faults,
            inject_bug,
            ..CampaignConfig::default()
        })
        .collect();
    let reports = run_campaigns_parallel(&configs, jobs);
    // Metrics export happens before the violation scan so the artifact
    // exists even when a counterexample aborts the run below.
    if let Some(path) = flags.get("metrics-out") {
        let mut jsonl = String::new();
        for report in &reports {
            jsonl.push_str(&metrics_jsonl(&report.metrics, &format!("seed-{}", report.seed)));
        }
        let rollup = rollup_metrics(&reports);
        jsonl.push_str(&metrics_jsonl(&rollup, "rollup"));
        if let Err(e) = std::fs::write(path, jsonl) {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(2);
        }
        let prom_path = format!("{path}.prom");
        if let Err(e) = std::fs::write(&prom_path, prometheus_text(&rollup)) {
            eprintln!("cannot write {prom_path}: {e}");
            std::process::exit(2);
        }
        println!("metrics: per-seed + rollup JSONL -> {path}, Prometheus rollup -> {prom_path}");
    }
    for (config, report) in configs.iter().zip(&reports) {
        let s = config.seed;
        if report.is_clean() {
            println!(
                "  seed {s}: clean ({} faults, {} allows checked, {} revokes, \
                 {} WAL appends, {} disk recoveries)",
                report.plan.len(),
                report.oracle_stats.allows,
                report.oracle_stats.revokes,
                report.wal_appends,
                report.recovered_from_disk,
            );
            continue;
        }
        println!("\n{}", report.render());
        println!("shrinking the failing plan...");
        let (small, small_report) = shrink_plan(config, &report.plan);
        println!(
            "shrunk from {} to {} fault(s); minimal counterexample:\n",
            report.plan.len(),
            small.len()
        );
        println!("{}", small_report.render());
        std::process::exit(1);
    }
    println!("all {campaigns} campaign(s) clean: no invariant violations");
}

/// A scheduled action in the live soak, offset from the runtime epoch.
enum LiveEvent {
    Admin(AclOp),
    Crash(NodeId),
    Recover(NodeId),
    Kill(NodeId),
    Restart(NodeId),
}

/// Minimal JSON string escaping for the soak report lines.
fn json_str(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Runs a seeded chaos soak on the *live* threaded runtime: the same
/// node objects the simulator runs, on OS threads, under the exact
/// fault plan `wanacl nemesis` samples for this seed (replayed by a
/// `ChaosRouter` over wall-clock windows), plus a deterministic
/// kill/restart (process death, recovery from the `FileStorage` WAL)
/// and crash/recover cycle of manager 0. The drained live trace feeds
/// the same invariant oracle (I1–I7) the campaigns use; any violation
/// prints and exits 1. `--control true` skips all fault injection and
/// can emit a `BENCH_rt` baseline via `--bench-out`.
fn chaos(flags: &HashMap<String, String>) {
    if get::<usize>(flags, "tenants", 0) > 0 {
        chaos_sharded(flags);
        return;
    }
    let seed: u64 = get(flags, "seed", 1);
    let seconds: u64 = get(flags, "seconds", 8);
    let managers: usize = get(flags, "managers", 3);
    let hosts: usize = get(flags, "hosts", 2);
    let users: usize = get(flags, "users", 2);
    let c: usize = get(flags, "check-quorum", 2.min(managers.max(1)));
    let intensity: f64 = get(flags, "intensity", 1.0);
    let control: bool = get(flags, "control", false);
    let workers: usize = get(flags, "workers", 0);
    let drop_wal = match flags.get("inject-bug").map(String::as_str) {
        None | Some("none") => false,
        Some("drop-wal") => true,
        Some(other) => {
            eprintln!("unknown --inject-bug {other} (live chaos supports: drop-wal)");
            std::process::exit(2);
        }
    };
    if managers == 0 || hosts == 0 || users == 0 || seconds == 0 {
        eprintln!("chaos needs at least one manager, host, user, and second");
        std::process::exit(2);
    }
    if drop_wal && control {
        eprintln!("--inject-bug drop-wal contradicts --control true");
        std::process::exit(2);
    }

    // The live check path runs with its belt on: a deadline budget and
    // a per-peer circuit breaker on top of the usual quorum policy.
    let te = SimDuration::from_secs(2);
    let policy = Policy::builder(c)
        .revocation_bound(te)
        .clock_rate_bound(1.0)
        .query_timeout(SimDuration::from_millis(100))
        .max_attempts(2)
        .cache_sweep_interval(SimDuration::from_millis(500))
        .deadline_budget(SimDuration::from_secs(1))
        .breaker(BreakerConfig::default())
        .build();

    // Plan parity with the simulator: same CampaignConfig shape, same
    // seed derivation, same sampler — `wanacl nemesis --seed S` and
    // `wanacl chaos --seed S` replay one fault plan on two executors.
    let horizon = SimDuration::from_secs(seconds);
    let campaign = CampaignConfig {
        seed,
        managers,
        hosts,
        users,
        horizon,
        intensity,
        ..CampaignConfig::default()
    };
    let plan = sample_plan(&campaign);
    println!(
        "chaos: seed {seed}, {seconds}s live soak, M={managers} C={c} hosts={hosts} users={users}{}{}",
        if control { " [CONTROL: no faults]" } else { "" },
        if drop_wal { " [BUG INJECTED: drop-wal]" } else { "" },
    );
    if !control {
        print!("{}", plan.describe());
    }

    // Fresh WAL directories per run; managers respawn from them.
    let base = std::env::temp_dir().join(format!("wanacl-chaos-{seed}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);

    let mut b: RuntimeBuilder<ProtoMsg> = RuntimeBuilder::new(seed);
    b.inbox_capacity(1024);
    let traces = b.capture_traces();
    let sink = b.metrics().clone();
    let mut acl = Acl::new();
    for u in 1..=users {
        acl.add(UserId(u as u64), Right::Use);
    }
    // Node layout mirrors `campaign_targets`: managers first, hosts
    // right after, so the sampled plan's NodeIds land on the same roles.
    let manager_ids: Vec<NodeId> = (0..managers).map(NodeId::from_index).collect();
    for (i, &id) in manager_ids.iter().enumerate() {
        let config = ManagerConfig {
            peers: manager_ids.iter().copied().filter(|p| *p != id).collect(),
            apps: vec![ManagerApp { app: AppId(0), policy: policy.clone(), initial_acl: acl.clone() }],
            registry: None,
            enforce_manage_right: false,
            retry_interval: SimDuration::from_millis(100),
            retry_cap: SimDuration::from_secs(2),
            retry_jitter: 0.1,
            heartbeat_interval: SimDuration::from_millis(100),
            grant_sweep_interval: SimDuration::from_millis(500),
            snapshot_every: 8,
            ..ManagerConfig::default()
        };
        let dir = base.join(format!("m{i}"));
        let arm = drop_wal && i == 0;
        let factory_sink = sink.clone();
        let got = b.add_node_with_factory(
            format!("manager{i}"),
            std::sync::Arc::new(move || {
                let mut node = ManagerNode::new(config.clone());
                let mut storage = FileStorage::open(dir.clone())
                    .expect("chaos storage dir")
                    .with_metrics(factory_sink.clone());
                if arm {
                    storage.set_drop_state_on_recover(true);
                }
                node.set_storage(Box::new(storage));
                Box::new(node)
            }),
        );
        assert_eq!(got, id);
    }
    let host_ids: Vec<NodeId> =
        (managers..managers + hosts).map(NodeId::from_index).collect();
    for (i, &id) in host_ids.iter().enumerate() {
        let got = b.add_node(
            format!("host{i}"),
            Box::new(HostNode::new(
                vec![AppHost {
                    app: AppId(0),
                    policy: policy.clone(),
                    directory: ManagerDirectory::Static(manager_ids.clone().into()),
                    application: Box::new(CountingApp::new()),
                }],
                None,
            )),
        );
        assert_eq!(got, id);
    }
    let mut user_ids = Vec::new();
    for u in 1..=users {
        user_ids.push(b.add_node(
            format!("user{u}"),
            Box::new(UserAgent::new(UserAgentConfig {
                user: UserId(u as u64),
                app: AppId(0),
                hosts: host_ids.clone().into(),
                workload: Some(WorkloadShape::Periodic { period: SimDuration::from_millis(300) }),
                payload: "chaos".into(),
                secret: None,
                request_timeout: SimDuration::from_secs(5),
                max_requests: None,
            })),
        ));
    }
    let net_fault_count = plan.net_faults().len();
    if !control && net_fault_count > 0 {
        let faults = plan.net_faults();
        let chaos_sink = sink.clone();
        b.wrap_transport(move |router| ChaosRouter::new(router, faults, seed, Some(chaos_sink)));
    }
    if workers > 0 {
        b.workers(workers);
    }
    let mut rt = match b.try_start() {
        Ok(rt) => rt,
        Err(e) => {
            eprintln!("chaos: cannot start the live runtime: {e}");
            std::process::exit(2);
        }
    };
    println!("chaos: worker pool of {} threads", rt.workers());
    let epoch = rt.epoch();

    // Build the event schedule up front, offsets from the epoch: admin
    // churn (same shape as the campaign's: revoke then re-grant every
    // user inside the horizon), the plan's lifecycle faults, and — on
    // every non-control run — a deterministic kill/restart plus a
    // crash/recover cycle of manager 0 so the WAL recovery path runs.
    let mut schedule: Vec<(Duration, LiveEvent)> = Vec::new();
    let h = horizon.as_secs_f64();
    let mut rng = SimRng::seed_from(seed ^ 0x6164_6d69);
    for u in 1..=users {
        let user = UserId(u as u64);
        let revoke_at = h * (0.2 + 0.4 * rng.unit());
        let regrant_at = (revoke_at + h * (0.1 + 0.2 * rng.unit())).min(h);
        schedule.push((
            Duration::from_secs_f64(revoke_at),
            LiveEvent::Admin(AclOp::Revoke { app: AppId(0), user, right: Right::Use }),
        ));
        schedule.push((
            Duration::from_secs_f64(regrant_at),
            LiveEvent::Admin(AclOp::Add { app: AppId(0), user, right: Right::Use }),
        ));
    }
    if !control {
        for fault in &plan.faults {
            if let Fault::Crash { node, at, down_for } = fault {
                let at = Duration::from_secs_f64(at.as_secs_f64());
                schedule.push((at, LiveEvent::Crash(*node)));
                schedule.push((
                    at + Duration::from_secs_f64(down_for.as_secs_f64()),
                    LiveEvent::Recover(*node),
                ));
            }
        }
        let kill_at = Duration::from_secs_f64(h * 0.40);
        schedule.push((kill_at, LiveEvent::Kill(manager_ids[0])));
        schedule.push((kill_at + Duration::from_millis(300), LiveEvent::Restart(manager_ids[0])));
        let crash_at = Duration::from_secs_f64(h * 0.65);
        schedule.push((crash_at, LiveEvent::Crash(manager_ids[0])));
        schedule.push((crash_at + Duration::from_millis(200), LiveEvent::Recover(manager_ids[0])));
    }
    schedule.sort_by_key(|(at, _)| *at);

    // Dispatch against the wall clock. Admin ops go to the last manager
    // (not the kill victim) over the env channel, which bypasses chaos —
    // only the *dissemination* between managers runs the gauntlet.
    let admin_target = manager_ids[managers - 1];
    let mut req = 0u64;
    let mut lifecycle_log = Vec::new();
    for (at, event) in schedule {
        let now = epoch.elapsed();
        if at > now {
            std::thread::sleep(at - now);
        }
        let stamp = epoch.elapsed().as_secs_f64();
        match event {
            LiveEvent::Admin(op) => {
                req += 1;
                rt.send_from_env(
                    admin_target,
                    ProtoMsg::Admin { op, req: ReqId(req), issuer: UserId(999), signature: None },
                );
            }
            LiveEvent::Crash(n) => {
                lifecycle_log.push(format!("crash {n} at {stamp:.2}s"));
                rt.crash(n);
            }
            LiveEvent::Recover(n) => {
                lifecycle_log.push(format!("recover {n} at {stamp:.2}s"));
                rt.recover(n);
            }
            LiveEvent::Kill(n) => match rt.kill(n) {
                Ok(exit) => lifecycle_log.push(format!("kill {n} at {stamp:.2}s ({exit:?})")),
                Err(e) => lifecycle_log.push(format!("kill {n} at {stamp:.2}s FAILED: {e}")),
            },
            LiveEvent::Restart(n) => match rt.restart(n) {
                Ok(()) => lifecycle_log.push(format!("restart {n} at {stamp:.2}s")),
                Err(e) => lifecycle_log.push(format!("restart {n} at {stamp:.2}s FAILED: {e}")),
            },
        }
    }
    // Drain tail: run past the horizon so residual leases expire and
    // retransmissions settle, mirroring the campaign's drain window.
    let end = Duration::from_secs(seconds) + Duration::from_secs_f64(2.0 * te.as_secs_f64());
    while epoch.elapsed() < end {
        std::thread::sleep(Duration::from_millis(50));
    }
    let soak_wall_ns = epoch.elapsed().as_nanos() as u64;
    for line in &lifecycle_log {
        println!("  {line}");
    }

    let results = rt.shutdown();
    let snapshot = sink.snapshot();

    // Same oracle as the campaigns, over the drained live trace. The
    // slack absorbs wall-clock jitter (thread scheduling, sleep
    // overshoot) that the deterministic simulator never has.
    let mut oracle = InvariantOracle::new(&policy, SimDuration::from_millis(1_000));
    let entries = traces.drain_sorted();
    for (i, e) in entries.iter().enumerate() {
        let event = TraceEvent::Note { node: e.node, text: e.text.clone() };
        oracle.on_event(e.at, i as u64, &event);
    }
    let stats = oracle.stats();

    // Per-node exits: a panic or wedged inbox is a failure of the soak
    // even when the oracle stays clean.
    let mut panics = Vec::new();
    for (i, r) in results.iter().enumerate() {
        match r {
            Ok((NodeExit::Stopped | NodeExit::Killed, _)) => {}
            Ok((NodeExit::Disconnected, _)) => {
                panics.push(format!("node {i} inbox disconnected (wedged deployment)"));
            }
            Err(msg) => panics.push(format!("node {i} panicked: {msg}")),
        }
    }
    let mut user_stats = UserStats::default();
    for &id in &user_ids {
        if let Some(Ok((_, node))) = results.get(id.index()) {
            if let Some(agent) = node.as_any().downcast_ref::<UserAgent>() {
                let s = agent.stats();
                user_stats.sent += s.sent;
                user_stats.allowed += s.allowed;
                user_stats.denied += s.denied;
                user_stats.unavailable += s.unavailable;
                user_stats.timeouts += s.timeouts;
            }
        }
    }

    println!(
        "oracle: {} allows, {} revokes checked over {} live trace events",
        stats.allows,
        stats.revokes,
        entries.len()
    );
    println!(
        "user outcomes: {} sent, {} allowed, {} denied, {} unavailable, {} timeouts",
        user_stats.sent,
        user_stats.allowed,
        user_stats.denied,
        user_stats.unavailable,
        user_stats.timeouts
    );
    println!(
        "hardening: breaker open={} close={} skipped={} all-open={} deadline-exceeded={}",
        snapshot.counter("rt.breaker_open"),
        snapshot.counter("rt.breaker_close"),
        snapshot.counter("rt.breaker_skipped"),
        snapshot.counter("rt.breaker_all_open"),
        snapshot.counter("rt.deadline_exceeded"),
    );
    if !control {
        println!(
            "chaos transport: dropped={} duplicated={} delayed={} inbox overflow={}",
            snapshot.counter("rt.chaos_dropped"),
            snapshot.counter("rt.chaos_duplicated"),
            snapshot.counter("rt.chaos_delayed"),
            snapshot.counter("rt.inbox_overflow"),
        );
    }

    // JSONL report: one meta line, one line per injected fault, the
    // oracle roll-up, every violation, and the outcome verdict.
    if let Some(path) = flags.get("report-out") {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"kind\":\"meta\",\"seed\":{seed},\"seconds\":{seconds},\"managers\":{managers},\
             \"hosts\":{hosts},\"users\":{users},\"check_quorum\":{c},\"intensity\":{intensity},\
             \"control\":{control},\"inject_bug\":\"{}\"}}\n",
            if drop_wal { "drop-wal" } else { "none" }
        ));
        if !control {
            for fault in &plan.faults {
                out.push_str(&format!("{{\"kind\":\"fault\",\"desc\":\"{}\"}}\n", json_str(&format!("{fault}"))));
            }
            for line in &lifecycle_log {
                out.push_str(&format!("{{\"kind\":\"lifecycle\",\"desc\":\"{}\"}}\n", json_str(line)));
            }
        }
        out.push_str(&format!(
            "{{\"kind\":\"oracle\",\"allows\":{},\"revokes\":{},\"trace_events\":{},\
             \"digest\":{},\"violations\":{}}}\n",
            stats.allows,
            stats.revokes,
            entries.len(),
            oracle.audit_digest(),
            oracle.violations().len()
        ));
        for v in oracle.violations() {
            out.push_str(&format!("{{\"kind\":\"violation\",\"detail\":\"{}\"}}\n", json_str(&format!("{v}"))));
        }
        for p in &panics {
            out.push_str(&format!("{{\"kind\":\"panic\",\"detail\":\"{}\"}}\n", json_str(p)));
        }
        out.push_str(&format!(
            "{{\"kind\":\"outcome\",\"clean\":{},\"sent\":{},\"allowed\":{},\"denied\":{},\
             \"unavailable\":{},\"timeouts\":{}}}\n",
            oracle.is_clean() && panics.is_empty(),
            user_stats.sent,
            user_stats.allowed,
            user_stats.denied,
            user_stats.unavailable,
            user_stats.timeouts
        ));
        if let Err(e) = std::fs::write(path, out) {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(2);
        }
        println!("report: JSONL soak report -> {path}");
    }

    // Fault-free control runs can emit the live baseline BENCH_rt.json:
    // wall time per issued request plus the measured cold-check latency.
    if control {
        if let Some(path) = flags.get("bench-out") {
            let mut out = String::new();
            if user_stats.sent > 0 {
                out.push_str(&format!(
                    "{{\"label\":\"rt_soak/wall_per_invoke\",\"mean_ns\":{:.1},\"iters\":{}}}\n",
                    soak_wall_ns as f64 / user_stats.sent as f64,
                    user_stats.sent
                ));
            }
            if let Some(summary) =
                snapshot.histogram("host.check_latency_s").and_then(|hist| hist.summary())
            {
                out.push_str(&format!(
                    "{{\"label\":\"rt_soak/cold_check_latency\",\"mean_ns\":{:.1},\"iters\":{}}}\n",
                    summary.mean * 1e9,
                    summary.count
                ));
            }
            if let Err(e) = std::fs::write(path, out) {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(2);
            }
            println!("bench: live baseline -> {path}");
        }
    }

    let _ = std::fs::remove_dir_all(&base);
    let mut failed = false;
    for v in oracle.violations() {
        println!("VIOLATION: {v}");
        failed = true;
    }
    for p in &panics {
        println!("FAILURE: {p}");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!("chaos soak clean: no invariant violations, no node failures");
}

/// Runs a seeded chaos soak of the *sharded multi-tenant* plane on the
/// live threaded runtime: `2 × tenants × shards-per-tenant` managers
/// each serving their own bucket-range shard, three directory replicas
/// publishing the signed shard map, hosts routing checks through
/// verified quorum reads, and — mid-soak — a live online rebalance
/// (every `ShardRebalance` the seed's plan draws, or one forced move
/// when it draws none) racing the plan's network faults plus the
/// deterministic kill/restart of manager 0. The drained trace feeds the
/// oracle with the tenant-isolation (I8) and rebalance-safety (I9)
/// invariants armed.
fn chaos_sharded(flags: &HashMap<String, String>) {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use wanacl::core::auth::signed::KeyRegistry;
    use wanacl::core::scenario::NS_WRITER;

    let seed: u64 = get(flags, "seed", 1);
    let seconds: u64 = get(flags, "seconds", 8);
    let tenants: usize = get(flags, "tenants", 2);
    let spt: usize = get(flags, "shards-per-tenant", 2);
    let hosts: usize = get(flags, "hosts", 2);
    let users: usize = get(flags, "users", 4);
    let intensity: f64 = get(flags, "intensity", 1.0);
    let workers: usize = get(flags, "workers", 0);
    let ns_replicas = 3usize;
    let managers = 2 * tenants * spt;
    let total_shards = tenants * spt;
    if seconds == 0 || hosts == 0 || users == 0 || spt == 0 || spt > 256 {
        eprintln!("chaos --tenants needs seconds, hosts, users > 0 and 1..=256 shards per tenant");
        std::process::exit(2);
    }

    let te = SimDuration::from_secs(2);
    let policy = Policy::builder(2)
        .revocation_bound(te)
        .clock_rate_bound(1.0)
        .query_timeout(SimDuration::from_millis(100))
        .max_attempts(2)
        .cache_sweep_interval(SimDuration::from_millis(500))
        .deadline_budget(SimDuration::from_secs(1))
        .breaker(BreakerConfig::default())
        .build();

    // Same sampler as `wanacl nemesis --tenants ...`: one plan, two
    // executors.
    let horizon = SimDuration::from_secs(seconds);
    let campaign = CampaignConfig {
        seed,
        hosts,
        users,
        horizon,
        intensity,
        tenants,
        shards_per_tenant: spt,
        ns_replicas,
        shard_faults: true,
        ..CampaignConfig::default()
    };
    let plan = sample_plan(&campaign);
    println!(
        "chaos: seed {seed}, {seconds}s live sharded soak, tenants={tenants} \
         shards/tenant={spt} M={managers} hosts={hosts} users={users}"
    );
    print!("{}", plan.describe());

    // Deterministic key material: the directory writer signs the shard
    // map; every manager, replica, and host verifies against the same
    // registry.
    let mut registry = KeyRegistry::new();
    let mut wrng = StdRng::seed_from_u64(seed ^ 0x6e73_7772);
    let writer_secret = registry.enroll(NS_WRITER, &mut wrng).secret;
    let registry = std::sync::Arc::new(registry);

    // The genesis shard map: global shard s = tenant·spt + j covers
    // buckets [j·256/spt, (j+1)·256/spt) and is owned by managers
    // {2s, 2s+1}.
    let apps: Vec<AppId> = (0..tenants as u32).map(AppId).collect();
    let shard_range = |j: usize| -> (u8, u8) {
        ((j * 256 / spt) as u8, ((j + 1) * 256 / spt - 1) as u8)
    };
    let genesis_entry = |s: usize| -> ShardEntry {
        let (lo, hi) = shard_range(s % spt);
        ShardEntry {
            shard: ShardId(s as u32),
            lo,
            hi,
            managers: vec![NodeId::from_index(2 * s), NodeId::from_index(2 * s + 1)],
        }
    };
    let entries_of = |app: AppId, owners: &[Vec<NodeId>]| -> Vec<ShardEntry> {
        (0..spt)
            .map(|j| {
                let s = app.0 as usize * spt + j;
                let (lo, hi) = shard_range(j);
                ShardEntry { shard: ShardId(s as u32), lo, hi, managers: owners[s].clone() }
            })
            .collect()
    };
    let mut owners: Vec<Vec<NodeId>> =
        (0..total_shards).map(|s| genesis_entry(s).managers.clone()).collect();
    let mut versions: Vec<u64> = vec![1; tenants];

    // The oracle accepts exactly the map versions this run publishes.
    let mut expected_maps: Vec<(AppId, u64, Vec<ShardEntry>)> = Vec::new();
    for &app in &apps {
        expected_maps.push((app, 1, entries_of(app, &owners)));
    }

    // Fresh WAL directories per run; managers respawn from them.
    let base =
        std::env::temp_dir().join(format!("wanacl-chaos-shard-{seed}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);

    let mut b: RuntimeBuilder<ProtoMsg> = RuntimeBuilder::new(seed);
    b.inbox_capacity(1024);
    let traces = b.capture_traces();
    let sink = b.metrics().clone();

    // Managers: every manager bootstraps the full per-app ACL (routing
    // comes from the shard map, not ACL content) and serves only its own
    // shard's bucket range.
    let manager_ids: Vec<NodeId> = (0..managers).map(NodeId::from_index).collect();
    for (i, &id) in manager_ids.iter().enumerate() {
        let s = i / 2;
        let entry = genesis_entry(s);
        let config = ManagerConfig {
            peers: manager_ids.iter().copied().filter(|p| *p != id).collect(),
            apps: apps
                .iter()
                .map(|&app| {
                    let mut acl = Acl::new();
                    for u in 1..=users {
                        if (u - 1) % tenants == app.0 as usize {
                            acl.add(UserId(u as u64), Right::Use);
                        }
                    }
                    ManagerApp { app, policy: policy.clone(), initial_acl: acl }
                })
                .collect(),
            registry: None,
            enforce_manage_right: false,
            shards: vec![ManagerShard {
                shard: entry.shard,
                app: AppId((s / spt) as u32),
                lo: entry.lo,
                hi: entry.hi,
                peers: entry.managers.iter().copied().filter(|p| *p != id).collect(),
            }],
            ns_trust: Some(registry.clone()),
            retry_interval: SimDuration::from_millis(100),
            retry_cap: SimDuration::from_secs(2),
            retry_jitter: 0.1,
            heartbeat_interval: SimDuration::from_millis(100),
            grant_sweep_interval: SimDuration::from_millis(500),
            snapshot_every: 8,
        };
        let dir = base.join(format!("m{i}"));
        let factory_sink = sink.clone();
        let got = b.add_node_with_factory(
            format!("manager{i}"),
            std::sync::Arc::new(move || {
                let mut node = ManagerNode::new(config.clone());
                let storage = FileStorage::open(dir.clone())
                    .expect("chaos storage dir")
                    .with_metrics(factory_sink.clone());
                node.set_storage(Box::new(storage));
                Box::new(node)
            }),
        );
        assert_eq!(got, id);
    }

    // Directory replicas, preloaded with the signed genesis maps.
    let replica_ids: Vec<NodeId> =
        (managers..managers + ns_replicas).map(NodeId::from_index).collect();
    let genesis_records: Vec<NsRecord> = apps
        .iter()
        .map(|&app| {
            NsRecord::signed_sharded(app, 1, entries_of(app, &owners), NS_WRITER, &writer_secret)
        })
        .collect();
    for (i, &id) in replica_ids.iter().enumerate() {
        let peers: Vec<NodeId> = replica_ids.iter().copied().filter(|p| *p != id).collect();
        let mut replica =
            DirectoryReplica::new(SimDuration::from_secs(2), peers, registry.clone(), NS_WRITER);
        for record in &genesis_records {
            replica.preload(record.clone());
        }
        let got = b.add_node(format!("nsreplica{i}"), Box::new(replica));
        assert_eq!(got, id);
    }

    // Hosts route every check through the directory-published map; the
    // plan's stale-map fault pins a host to whatever it installs first.
    let host_ids: Vec<NodeId> =
        (managers + ns_replicas..managers + ns_replicas + hosts).map(NodeId::from_index).collect();
    let pinned = plan.stale_shard_map_hosts();
    for (i, &id) in host_ids.iter().enumerate() {
        let mut host = HostNode::new(
            apps.iter()
                .map(|&app| AppHost {
                    app,
                    policy: policy.clone(),
                    directory: ManagerDirectory::Replicated {
                        replicas: replica_ids.clone(),
                        read_quorum: 2,
                    },
                    application: Box::new(CountingApp::new()),
                })
                .collect(),
            None,
        );
        host.set_ns_trust(registry.clone(), NS_WRITER);
        if pinned.contains(&id) {
            for &app in &apps {
                host.set_pin_ns_version(app);
            }
        }
        let got = b.add_node(format!("host{i}"), Box::new(host));
        assert_eq!(got, id);
    }

    let mut user_ids = Vec::new();
    for u in 1..=users {
        user_ids.push(b.add_node(
            format!("user{u}"),
            Box::new(UserAgent::new(UserAgentConfig {
                user: UserId(u as u64),
                app: AppId(((u - 1) % tenants) as u32),
                hosts: host_ids.clone().into(),
                workload: Some(WorkloadShape::Periodic { period: SimDuration::from_millis(300) }),
                payload: "chaos".into(),
                secret: None,
                request_timeout: SimDuration::from_secs(5),
                max_requests: None,
            })),
        ));
    }
    if !plan.net_faults().is_empty() {
        let faults = plan.net_faults();
        let chaos_sink = sink.clone();
        b.wrap_transport(move |router| ChaosRouter::new(router, faults, seed, Some(chaos_sink)));
    }
    if workers > 0 {
        b.workers(workers);
    }
    let mut rt = match b.try_start() {
        Ok(rt) => rt,
        Err(e) => {
            eprintln!("chaos: cannot start the live runtime: {e}");
            std::process::exit(2);
        }
    };
    println!("chaos: worker pool of {} threads", rt.workers());
    let epoch = rt.epoch();

    // Live rebalances: every ShardRebalance the plan drew (ring-next
    // targets, skipping moves an earlier move made non-disjoint), or one
    // forced move of shard 0 when the plan drew none — a soak without a
    // handoff would leave I9 untested.
    enum SEvent {
        Admin(AclOp),
        Handoff { recipients: Vec<NodeId>, msg: ProtoMsg },
        Crash(NodeId),
        Recover(NodeId),
        Kill(NodeId),
        Restart(NodeId),
    }
    let mut schedule: Vec<(Duration, SEvent)> = Vec::new();
    let h = horizon.as_secs_f64();
    let mut moves: Vec<(u32, f64)> = plan
        .shard_rebalances()
        .into_iter()
        .map(|(s, at)| (s, at.as_secs_f64()))
        .collect();
    if moves.is_empty() {
        moves.push((0, h * 0.5));
    }
    let mut scheduled_moves = Vec::new();
    for (s, at) in moves {
        let s = (s as usize) % total_shards;
        let sources = owners[s].clone();
        let targets = owners[(s + 1) % total_shards].clone();
        if targets.iter().any(|t| sources.contains(t)) {
            continue;
        }
        let t = s / spt;
        versions[t] += 1;
        let epoch_v = versions[t];
        owners[s] = targets.clone();
        let app = AppId(t as u32);
        let entries = entries_of(app, &owners);
        let record =
            NsRecord::signed_sharded(app, epoch_v, entries.clone(), NS_WRITER, &writer_secret);
        expected_maps.push((app, epoch_v, entries));
        let msg = ProtoMsg::ShardHandoff {
            shard: ShardId(s as u32),
            epoch: epoch_v,
            record: Box::new(record),
            targets: targets.clone(),
            publish_to: replica_ids.clone(),
        };
        scheduled_moves.push(format!("shard {s} -> {targets:?} at {at:.2}s (map v{epoch_v})"));
        schedule.push((
            Duration::from_secs_f64(at),
            SEvent::Handoff { recipients: sources.into_iter().chain(targets).collect(), msg },
        ));
    }
    for line in &scheduled_moves {
        println!("  rebalance: {line}");
    }

    // Admin churn spans tenants; ops route to the genesis primary owner
    // of the user's shard (post-move sources forward them on).
    let route_admin = |app: AppId, user: UserId| -> NodeId {
        let bucket = wanacl::core::types::user_bucket(user);
        let j = (0..spt).position(|j| {
            let (lo, hi) = shard_range(j);
            lo <= bucket && bucket <= hi
        });
        let s = app.0 as usize * spt + j.expect("bucket ranges tile 0..=255");
        NodeId::from_index(2 * s)
    };
    let mut rng = SimRng::seed_from(seed ^ 0x6164_6d69);
    for u in 1..=users {
        let user = UserId(u as u64);
        let app = AppId(((u - 1) % tenants) as u32);
        let revoke_at = h * (0.2 + 0.4 * rng.unit());
        let regrant_at = (revoke_at + h * (0.1 + 0.2 * rng.unit())).min(h);
        schedule.push((
            Duration::from_secs_f64(revoke_at),
            SEvent::Admin(AclOp::Revoke { app, user, right: Right::Use }),
        ));
        schedule.push((
            Duration::from_secs_f64(regrant_at),
            SEvent::Admin(AclOp::Add { app, user, right: Right::Use }),
        ));
    }
    for fault in &plan.faults {
        if let Fault::Crash { node, at, down_for } = fault {
            let at = Duration::from_secs_f64(at.as_secs_f64());
            schedule.push((at, SEvent::Crash(*node)));
            schedule
                .push((at + Duration::from_secs_f64(down_for.as_secs_f64()), SEvent::Recover(*node)));
        }
    }
    // The deterministic kill/restart: manager 0 is a genesis owner of
    // shard 0, so when a move of shard 0 lands nearby this doubles as a
    // source death racing the handoff — recovery must honour the durable
    // release markers in its WAL.
    let kill_at = Duration::from_secs_f64(h * 0.40);
    schedule.push((kill_at, SEvent::Kill(manager_ids[0])));
    schedule.push((kill_at + Duration::from_millis(300), SEvent::Restart(manager_ids[0])));
    schedule.sort_by_key(|(at, _)| *at);

    let mut req = 0u64;
    let mut lifecycle_log = Vec::new();
    for (at, event) in schedule {
        let now = epoch.elapsed();
        if at > now {
            std::thread::sleep(at - now);
        }
        let stamp = epoch.elapsed().as_secs_f64();
        match event {
            SEvent::Admin(op) => {
                req += 1;
                let target = route_admin(op.app(), op.user());
                rt.send_from_env(
                    target,
                    ProtoMsg::Admin { op, req: ReqId(req), issuer: UserId(999), signature: None },
                );
            }
            SEvent::Handoff { recipients, msg } => {
                lifecycle_log.push(format!("handoff kickoff at {stamp:.2}s"));
                for node in recipients {
                    rt.send_from_env(node, msg.clone());
                }
            }
            SEvent::Crash(n) => {
                lifecycle_log.push(format!("crash {n} at {stamp:.2}s"));
                rt.crash(n);
            }
            SEvent::Recover(n) => {
                lifecycle_log.push(format!("recover {n} at {stamp:.2}s"));
                rt.recover(n);
            }
            SEvent::Kill(n) => match rt.kill(n) {
                Ok(exit) => lifecycle_log.push(format!("kill {n} at {stamp:.2}s ({exit:?})")),
                Err(e) => lifecycle_log.push(format!("kill {n} at {stamp:.2}s FAILED: {e}")),
            },
            SEvent::Restart(n) => match rt.restart(n) {
                Ok(()) => lifecycle_log.push(format!("restart {n} at {stamp:.2}s")),
                Err(e) => lifecycle_log.push(format!("restart {n} at {stamp:.2}s FAILED: {e}")),
            },
        }
    }
    let end = Duration::from_secs(seconds) + Duration::from_secs_f64(2.0 * te.as_secs_f64());
    while epoch.elapsed() < end {
        std::thread::sleep(Duration::from_millis(50));
    }
    for line in &lifecycle_log {
        println!("  {line}");
    }

    let results = rt.shutdown();

    // Same oracle as the sharded campaigns — I8 armed with every map
    // version this run published, I9 from the handoff/install audits.
    let mut oracle = InvariantOracle::new(&policy, SimDuration::from_millis(1_000));
    for (app, version, entries) in &expected_maps {
        oracle.expect_shard_map(*app, *version, entries);
    }
    let entries = traces.drain_sorted();
    for (i, e) in entries.iter().enumerate() {
        let event = TraceEvent::Note { node: e.node, text: e.text.clone() };
        oracle.on_event(e.at, i as u64, &event);
    }
    let stats = oracle.stats();

    let mut panics = Vec::new();
    for (i, r) in results.iter().enumerate() {
        match r {
            Ok((NodeExit::Stopped | NodeExit::Killed, _)) => {}
            Ok((NodeExit::Disconnected, _)) => {
                panics.push(format!("node {i} inbox disconnected (wedged deployment)"));
            }
            Err(msg) => panics.push(format!("node {i} panicked: {msg}")),
        }
    }
    let mut user_stats = UserStats::default();
    for &id in &user_ids {
        if let Some(Ok((_, node))) = results.get(id.index()) {
            if let Some(agent) = node.as_any().downcast_ref::<UserAgent>() {
                let s = agent.stats();
                user_stats.sent += s.sent;
                user_stats.allowed += s.allowed;
                user_stats.denied += s.denied;
                user_stats.unavailable += s.unavailable;
                user_stats.timeouts += s.timeouts;
            }
        }
    }
    println!(
        "oracle: {} allows ({} shard-routed), {} revokes, {} handoffs, {} installs \
         over {} live trace events",
        stats.allows,
        stats.shard_allows,
        stats.revokes,
        stats.shard_handoffs,
        stats.shard_installs,
        entries.len()
    );
    println!(
        "user outcomes: {} sent, {} allowed, {} denied, {} unavailable, {} timeouts",
        user_stats.sent,
        user_stats.allowed,
        user_stats.denied,
        user_stats.unavailable,
        user_stats.timeouts
    );

    let _ = std::fs::remove_dir_all(&base);
    let mut failed = false;
    for v in oracle.violations() {
        println!("VIOLATION: {v}");
        failed = true;
    }
    for p in &panics {
        println!("FAILURE: {p}");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!("sharded chaos soak clean: no invariant violations, no node failures");
}

/// Runs a short standard deployment and exports its full metrics
/// snapshot — the same registry (DESIGN.md §11) the simulator campaigns
/// and the live rt runtime emit — as Prometheus text or JSONL.
fn obs(flags: &HashMap<String, String>) {
    let managers: usize = get(flags, "managers", 3);
    let hosts: usize = get(flags, "hosts", 2);
    let users: usize = get(flags, "users", 3);
    let c: usize = get(flags, "check-quorum", (managers / 2).max(1));
    let minutes: u64 = get(flags, "minutes", 2);
    let pi: f64 = get(flags, "pi", 0.1);
    let seed: u64 = get(flags, "seed", 1);
    let ns_replicas: usize = get(flags, "ns-replicas", 0);
    let ns_read_quorum: usize = get(flags, "ns-read-quorum", 0);
    let format = flags.get("format").map(String::as_str).unwrap_or("prometheus");

    let policy = Policy::builder(c)
        .revocation_bound(SimDuration::from_secs(20))
        .query_timeout(SimDuration::from_millis(400))
        .max_attempts(3)
        .build();
    let net = wanacl::sim::net::WanNet::builder()
        .uniform_delay(SimDuration::from_millis(20), SimDuration::from_millis(80))
        .partitions(Box::new(wanacl::sim::net::partition::EpochIid::new(
            pi,
            SimDuration::from_secs(10),
            seed ^ 0xdead,
        )))
        .build();
    let mut scenario = Scenario::builder(seed)
        .managers(managers)
        .hosts(hosts)
        .users(users)
        .policy(policy)
        .all_users_granted()
        .workload(SimDuration::from_secs(2))
        .net(Box::new(net));
    if ns_replicas > 0 {
        // Short TTL so lookup latency, quorum rounds, and refresh churn
        // all show up in the ns.* metric rows within a couple minutes.
        scenario =
            scenario.with_replicated_directory(ns_replicas, ns_read_quorum, SimDuration::from_secs(15));
    }
    let mut d = scenario.build();
    d.run_for(SimDuration::from_secs(minutes * 60));
    // Exercise the revocation path too, so mgr.* metrics show up.
    d.revoke(UserId(1), Right::Use);
    d.run_for(SimDuration::from_secs(30));

    let metrics = d.world.metrics();
    let rendered = match format {
        "prometheus" | "prom" => prometheus_text(metrics),
        "jsonl" => metrics_jsonl(metrics, &format!("seed-{seed}")),
        other => {
            eprintln!("unknown --format {other} (expected: prometheus or jsonl)");
            std::process::exit(2);
        }
    };
    match flags.get("out") {
        Some(path) => {
            if let Err(e) = std::fs::write(path, rendered) {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(2);
            }
            println!("metrics snapshot ({format}) -> {path}");
        }
        None => print!("{rendered}"),
    }
}

fn audit(flags: &HashMap<String, String>) {
    let seed: u64 = get(flags, "seed", 7);
    let te = SimDuration::from_secs(20);
    let policy = Policy::builder(2)
        .revocation_bound(te)
        .query_timeout(SimDuration::from_millis(300))
        .max_attempts(2)
        .build();
    let mut d = Scenario::builder(seed)
        .managers(3)
        .hosts(2)
        .users(3)
        .policy(policy)
        .all_users_granted()
        .workload(SimDuration::from_secs(2))
        .build();
    d.world.enable_trace();
    d.run_for(SimDuration::from_secs(30));
    d.revoke(UserId(1), Right::Use);
    d.run_for(SimDuration::from_secs(90));

    let log = AuditLog::from_trace(d.world.trace());
    println!("audit: {} allows, {} stable revokes recorded", log.allow_count(), log.revoke_count());
    match log.verify_bounded_revocation(te, SimDuration::from_millis(500)) {
        Ok(()) => println!("bounded-revocation invariant HOLDS (Te = {te})"),
        Err(v) => {
            println!("VIOLATION: {v}");
            std::process::exit(1);
        }
    }
}
