//! `wanacl` — command-line driver for the access-control system.
//!
//! ```console
//! $ wanacl demo --managers 5 --check-quorum 3 --users 4 --minutes 10
//! $ wanacl tradeoff --pi 0.2 --trials 200
//! $ wanacl tables
//! $ wanacl audit --seed 7
//! $ wanacl nemesis --campaigns 100
//! $ wanacl nemesis --seed 3 --inject-bug cache-expiry
//! $ wanacl nemesis --disk-faults true --campaigns 50
//! $ wanacl nemesis --disk-faults true --inject-bug drop-wal
//! $ wanacl nemesis --ns-replicas 3 --ns-faults true --campaigns 100
//! $ wanacl nemesis --ns-replicas 3 --inject-bug ns-trust-unsigned
//! $ wanacl nemesis --campaigns 20 --jobs 4 --metrics-out metrics.jsonl
//! $ wanacl obs --minutes 2 --format prometheus
//! $ wanacl obs --ns-replicas 3 --format jsonl
//! ```

use std::collections::HashMap;

use wanacl::core::audit::AuditLog;
use wanacl::core::campaign::{
    rollup_metrics, run_campaigns_parallel, shrink_plan, CampaignConfig, InjectedBug,
};
use wanacl::prelude::*;
use wanacl::sim::obs::{metrics_jsonl, prometheus_text};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (command, flags) = parse(&args);
    match command.as_deref() {
        Some("demo") => demo(&flags),
        Some("tradeoff") => tradeoff(&flags),
        Some("tables") => tables(&flags),
        Some("audit") => audit(&flags),
        Some("nemesis") => nemesis(&flags),
        Some("obs") => obs(&flags),
        _ => {
            eprintln!(
                "usage: wanacl <command> [--flag value ...]\n\n\
                 commands:\n\
                 \x20 demo      run a deployment and print outcome statistics\n\
                 \x20           flags: --managers N --hosts N --users N --check-quorum C\n\
                 \x20                  --te SECS --minutes M --pi P --seed S\n\
                 \x20 tradeoff  sweep the check quorum and print PA/PS (model + measured)\n\
                 \x20           flags: --managers N --pi P --trials N\n\
                 \x20 tables    print the paper's Table 1 and Table 2 (analytic)\n\
                 \x20 audit     run a revocation scenario and verify the trace offline\n\
                 \x20           flags: --seed S\n\
                 \x20 nemesis   run fault-injection campaigns with the invariant oracle\n\
                 \x20           flags: --seed S --campaigns N --horizon-secs T\n\
                 \x20                  --managers N --hosts N --users N --intensity X\n\
                 \x20                  --jobs N             worker threads for the campaign\n\
                 \x20                                       sweep (0 = one per core; results\n\
                 \x20                                       are identical at any job count)\n\
                 \x20                  --name-service true\n\
                 \x20                  --ns-replicas N      replace the name service with N\n\
                 \x20                                       directory replicas (signed records,\n\
                 \x20                                       host quorum reads, anti-entropy)\n\
                 \x20                  --ns-read-quorum Q   verified replies a read needs\n\
                 \x20                                       (default: majority of replicas)\n\
                 \x20                  --ns-faults true     add directory faults (stale\n\
                 \x20                                       replicas, split-brain, malicious\n\
                 \x20                                       partial masters, replica crashes)\n\
                 \x20                  --disk-faults true   add disk faults (torn tails,\n\
                 \x20                                       failed fsyncs) and correlated\n\
                 \x20                                       cluster restarts to the fault mix\n\
                 \x20                  --inject-bug cache-expiry|drop-wal|ns-trust-unsigned\n\
                 \x20                  --metrics-out PATH   write per-seed + rollup metrics as\n\
                 \x20                                       JSONL to PATH and the Prometheus\n\
                 \x20                                       rollup snapshot to PATH.prom\n\
                 \x20 obs       run a short deployment and export its metrics snapshot\n\
                 \x20           flags: --managers N --hosts N --users N --check-quorum C\n\
                 \x20                  --minutes M --pi P --seed S\n\
                 \x20                  --ns-replicas N --ns-read-quorum Q (directory ns.*\n\
                 \x20                                       metrics: lookup latency, quorum\n\
                 \x20                                       rounds, degraded/stale counters)\n\
                 \x20                  --format prometheus|jsonl (default prometheus)\n\
                 \x20                  --out PATH (default stdout)"
            );
            std::process::exit(2);
        }
    }
}

/// Parses `<command> --key value ...` without external crates.
fn parse(args: &[String]) -> (Option<String>, HashMap<String, String>) {
    let mut flags = HashMap::new();
    let command = args.first().cloned();
    let mut i = 1;
    while i < args.len() {
        if let Some(key) = args[i].strip_prefix("--") {
            let value = args.get(i + 1).cloned().unwrap_or_default();
            flags.insert(key.to_owned(), value);
            i += 2;
        } else {
            eprintln!("unexpected argument: {}", args[i]);
            std::process::exit(2);
        }
    }
    (command, flags)
}

fn get<T: std::str::FromStr>(flags: &HashMap<String, String>, key: &str, default: T) -> T {
    flags.get(key).and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn demo(flags: &HashMap<String, String>) {
    let managers: usize = get(flags, "managers", 5);
    let hosts: usize = get(flags, "hosts", 3);
    let users: usize = get(flags, "users", 4);
    let c: usize = get(flags, "check-quorum", (managers / 2).max(1));
    let te: u64 = get(flags, "te", 60);
    let minutes: u64 = get(flags, "minutes", 10);
    let pi: f64 = get(flags, "pi", 0.1);
    let seed: u64 = get(flags, "seed", 1);

    let policy = Policy::builder(c)
        .revocation_bound(SimDuration::from_secs(te))
        .query_timeout(SimDuration::from_millis(400))
        .max_attempts(3)
        .build();
    let net = wanacl::sim::net::WanNet::builder()
        .uniform_delay(SimDuration::from_millis(20), SimDuration::from_millis(80))
        .partitions(Box::new(wanacl::sim::net::partition::EpochIid::new(
            pi,
            SimDuration::from_secs(10),
            seed ^ 0xdead,
        )))
        .build();
    let mut d = Scenario::builder(seed)
        .managers(managers)
        .hosts(hosts)
        .users(users)
        .policy(policy)
        .all_users_granted()
        .workload(SimDuration::from_secs(3))
        .net(Box::new(net))
        .build();
    println!(
        "running {minutes} simulated minutes: M={managers} C={c} Te={te}s Pi={pi} \
         ({hosts} hosts, {users} users)"
    );
    d.run_for(SimDuration::from_secs(minutes * 60));
    let s = d.aggregate_user_stats();
    println!("requests:     {}", s.sent);
    println!("allowed:      {} ({:.2}%)", s.allowed, 100.0 * s.allowed as f64 / s.sent.max(1) as f64);
    println!("denied:       {}", s.denied);
    println!("unavailable:  {}", s.unavailable);
    println!("timeouts:     {}", s.timeouts);
    println!("messages:     {}", d.world.metrics().counter("net.sent"));
    if let Some(h) = d.world.metrics().histogram("host.check_latency_s") {
        if let Some(mean) = h.mean() {
            println!("mean cold-check latency: {:.3}s over {} checks", mean, h.count());
        }
    }
}

fn tradeoff(flags: &HashMap<String, String>) {
    let managers: usize = get(flags, "managers", 10);
    let pi: f64 = get(flags, "pi", 0.2);
    let trials: u64 = get(flags, "trials", 150);
    println!("M={managers} Pi={pi} trials={trials}\n");
    println!("  C | PA model  PA measured | PS model  PS measured");
    println!(" ---+------------------------+----------------------");
    for c in 1..=managers {
        let pa = wanacl::analysis::model::pa(managers as u64, c as u64, pi);
        let ps = wanacl::analysis::model::ps(managers as u64, c as u64, pi);
        let pa_m =
            wanacl::analysis::experiments::measure_availability(managers, c, pi, trials, 40 + c as u64);
        let ps_m =
            wanacl::analysis::experiments::measure_security(managers, c, pi, trials, 80 + c as u64);
        println!(
            " {c:2} |  {pa:.4}     {:.4}    |  {ps:.4}     {:.4}",
            pa_m.value, ps_m.value
        );
    }
}

fn tables(_flags: &HashMap<String, String>) {
    println!("{}", wanacl::analysis::tables::render_table1(10, &[0.1, 0.2]));
    println!("{}", wanacl::analysis::tables::render_table2(&[0.1, 0.2]));
}

/// Runs `--campaigns` nemesis campaigns starting at `--seed`, each a
/// fresh deployment under a seed-derived adversarial schedule with the
/// invariant oracle attached. Campaigns fan out across `--jobs` worker
/// threads (0 = one per core); each seed's result is bit-identical to a
/// sequential run, and reports print in seed order regardless of which
/// worker finished first. On the lowest-seed violation, prints the
/// replayable counterexample, greedily shrinks the plan, and exits 1.
fn nemesis(flags: &HashMap<String, String>) {
    let seed: u64 = get(flags, "seed", 1);
    let campaigns: u64 = get(flags, "campaigns", 1);
    let jobs: usize = get(flags, "jobs", 0);
    let horizon_secs: u64 = get(flags, "horizon-secs", 10);
    let managers: usize = get(flags, "managers", 3);
    let hosts: usize = get(flags, "hosts", 2);
    let users: usize = get(flags, "users", 2);
    let intensity: f64 = get(flags, "intensity", 1.0);
    let use_name_service: bool = get(flags, "name-service", false);
    let ns_replicas: usize = get(flags, "ns-replicas", 0);
    let ns_read_quorum: usize = get(flags, "ns-read-quorum", 0);
    let ns_faults: bool = get(flags, "ns-faults", false);
    let disk_faults: bool = get(flags, "disk-faults", false);
    let inject_bug = match flags.get("inject-bug").map(String::as_str) {
        None | Some("none") => None,
        Some("cache-expiry") => Some(InjectedBug::IgnoreCacheExpiry { host_index: 0 }),
        Some("drop-wal") => Some(InjectedBug::DropWal { manager_index: 0 }),
        Some("ns-trust-unsigned") => Some(InjectedBug::NsTrustUnsigned { host_index: 0 }),
        Some(other) => {
            eprintln!(
                "unknown --inject-bug {other} \
                 (expected: cache-expiry, drop-wal, or ns-trust-unsigned)"
            );
            std::process::exit(2);
        }
    };
    if matches!(inject_bug, Some(InjectedBug::NsTrustUnsigned { .. })) && ns_replicas == 0 {
        eprintln!("--inject-bug ns-trust-unsigned needs --ns-replicas N (N >= 1)");
        std::process::exit(2);
    }

    println!(
        "nemesis: {campaigns} campaign(s) from seed {seed}, horizon {horizon_secs}s, \
         M={managers} hosts={hosts} users={users} intensity={intensity}{}{}{}",
        if disk_faults { " +disk-faults" } else { "" },
        if ns_replicas > 0 {
            format!(" +directory[{ns_replicas} replicas{}]", if ns_faults { ", faults" } else { "" })
        } else {
            String::new()
        },
        match inject_bug {
            Some(InjectedBug::IgnoreCacheExpiry { .. }) => " [BUG INJECTED: cache-expiry]",
            Some(InjectedBug::DropWal { .. }) => " [BUG INJECTED: drop-wal]",
            Some(InjectedBug::NsTrustUnsigned { .. }) => " [BUG INJECTED: ns-trust-unsigned]",
            None => "",
        }
    );
    let configs: Vec<CampaignConfig> = (seed..seed + campaigns)
        .map(|s| CampaignConfig {
            seed: s,
            managers,
            hosts,
            users,
            horizon: SimDuration::from_secs(horizon_secs),
            intensity,
            use_name_service,
            ns_replicas,
            ns_read_quorum,
            ns_faults,
            disk_faults,
            inject_bug,
            ..CampaignConfig::default()
        })
        .collect();
    let reports = run_campaigns_parallel(&configs, jobs);
    // Metrics export happens before the violation scan so the artifact
    // exists even when a counterexample aborts the run below.
    if let Some(path) = flags.get("metrics-out") {
        let mut jsonl = String::new();
        for report in &reports {
            jsonl.push_str(&metrics_jsonl(&report.metrics, &format!("seed-{}", report.seed)));
        }
        let rollup = rollup_metrics(&reports);
        jsonl.push_str(&metrics_jsonl(&rollup, "rollup"));
        if let Err(e) = std::fs::write(path, jsonl) {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(2);
        }
        let prom_path = format!("{path}.prom");
        if let Err(e) = std::fs::write(&prom_path, prometheus_text(&rollup)) {
            eprintln!("cannot write {prom_path}: {e}");
            std::process::exit(2);
        }
        println!("metrics: per-seed + rollup JSONL -> {path}, Prometheus rollup -> {prom_path}");
    }
    for (config, report) in configs.iter().zip(&reports) {
        let s = config.seed;
        if report.is_clean() {
            println!(
                "  seed {s}: clean ({} faults, {} allows checked, {} revokes, \
                 {} WAL appends, {} disk recoveries)",
                report.plan.len(),
                report.oracle_stats.allows,
                report.oracle_stats.revokes,
                report.wal_appends,
                report.recovered_from_disk,
            );
            continue;
        }
        println!("\n{}", report.render());
        println!("shrinking the failing plan...");
        let (small, small_report) = shrink_plan(config, &report.plan);
        println!(
            "shrunk from {} to {} fault(s); minimal counterexample:\n",
            report.plan.len(),
            small.len()
        );
        println!("{}", small_report.render());
        std::process::exit(1);
    }
    println!("all {campaigns} campaign(s) clean: no invariant violations");
}

/// Runs a short standard deployment and exports its full metrics
/// snapshot — the same registry (DESIGN.md §11) the simulator campaigns
/// and the live rt runtime emit — as Prometheus text or JSONL.
fn obs(flags: &HashMap<String, String>) {
    let managers: usize = get(flags, "managers", 3);
    let hosts: usize = get(flags, "hosts", 2);
    let users: usize = get(flags, "users", 3);
    let c: usize = get(flags, "check-quorum", (managers / 2).max(1));
    let minutes: u64 = get(flags, "minutes", 2);
    let pi: f64 = get(flags, "pi", 0.1);
    let seed: u64 = get(flags, "seed", 1);
    let ns_replicas: usize = get(flags, "ns-replicas", 0);
    let ns_read_quorum: usize = get(flags, "ns-read-quorum", 0);
    let format = flags.get("format").map(String::as_str).unwrap_or("prometheus");

    let policy = Policy::builder(c)
        .revocation_bound(SimDuration::from_secs(20))
        .query_timeout(SimDuration::from_millis(400))
        .max_attempts(3)
        .build();
    let net = wanacl::sim::net::WanNet::builder()
        .uniform_delay(SimDuration::from_millis(20), SimDuration::from_millis(80))
        .partitions(Box::new(wanacl::sim::net::partition::EpochIid::new(
            pi,
            SimDuration::from_secs(10),
            seed ^ 0xdead,
        )))
        .build();
    let mut scenario = Scenario::builder(seed)
        .managers(managers)
        .hosts(hosts)
        .users(users)
        .policy(policy)
        .all_users_granted()
        .workload(SimDuration::from_secs(2))
        .net(Box::new(net));
    if ns_replicas > 0 {
        // Short TTL so lookup latency, quorum rounds, and refresh churn
        // all show up in the ns.* metric rows within a couple minutes.
        scenario =
            scenario.with_replicated_directory(ns_replicas, ns_read_quorum, SimDuration::from_secs(15));
    }
    let mut d = scenario.build();
    d.run_for(SimDuration::from_secs(minutes * 60));
    // Exercise the revocation path too, so mgr.* metrics show up.
    d.revoke(UserId(1), Right::Use);
    d.run_for(SimDuration::from_secs(30));

    let metrics = d.world.metrics();
    let rendered = match format {
        "prometheus" | "prom" => prometheus_text(metrics),
        "jsonl" => metrics_jsonl(metrics, &format!("seed-{seed}")),
        other => {
            eprintln!("unknown --format {other} (expected: prometheus or jsonl)");
            std::process::exit(2);
        }
    };
    match flags.get("out") {
        Some(path) => {
            if let Err(e) = std::fs::write(path, rendered) {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(2);
            }
            println!("metrics snapshot ({format}) -> {path}");
        }
        None => print!("{rendered}"),
    }
}

fn audit(flags: &HashMap<String, String>) {
    let seed: u64 = get(flags, "seed", 7);
    let te = SimDuration::from_secs(20);
    let policy = Policy::builder(2)
        .revocation_bound(te)
        .query_timeout(SimDuration::from_millis(300))
        .max_attempts(2)
        .build();
    let mut d = Scenario::builder(seed)
        .managers(3)
        .hosts(2)
        .users(3)
        .policy(policy)
        .all_users_granted()
        .workload(SimDuration::from_secs(2))
        .build();
    d.world.enable_trace();
    d.run_for(SimDuration::from_secs(30));
    d.revoke(UserId(1), Right::Use);
    d.run_for(SimDuration::from_secs(90));

    let log = AuditLog::from_trace(d.world.trace());
    println!("audit: {} allows, {} stable revokes recorded", log.allow_count(), log.revoke_count());
    match log.verify_bounded_revocation(te, SimDuration::from_millis(500)) {
        Ok(()) => println!("bounded-revocation invariant HOLDS (Te = {te})"),
        Err(v) => {
            println!("VIOLATION: {v}");
            std::process::exit(1);
        }
    }
}
