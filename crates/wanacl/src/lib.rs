//! # wanacl — access control in wide-area networks
//!
//! A production-quality Rust reproduction of Matti A. Hiltunen and
//! Richard D. Schlichting, *Access Control in Wide-Area Networks*,
//! ICDCS '97. The system keeps per-application access-control lists at a
//! small set of **managers**, caches grants at application **hosts** as
//! time-bounded leases (`te = b·Te`), and coordinates manager updates
//! through **check/update quorums** (`C` and `M − C + 1`), so each
//! application chooses its own point on the security–availability
//! tradeoff under network partitions.
//!
//! This facade re-exports the component crates:
//!
//! * [`core`] (`wanacl-core`) — the protocol: hosts, managers, name
//!   service, workload agents, policies, deployment builder.
//! * [`sim`] (`wanacl-sim`) — the deterministic discrete-event WAN
//!   simulator (delays, loss, congestion, partitions, drifting clocks,
//!   crash/recovery).
//! * [`auth`] (`wanacl-auth`) — SHA-256 / HMAC / RSA authentication
//!   substrate.
//! * [`baselines`] (`wanacl-baselines`) — the §3 dissemination
//!   alternatives and the eventual-consistency comparator.
//! * [`analysis`] (`wanacl-analysis`) — the §4.1 model and the
//!   harness regenerating every table and figure of the paper.
//! * [`rt`] (`wanacl-rt`) — a threaded real-time driver for the same
//!   protocol state machines.
//!
//! ## Quickstart
//!
//! ```
//! use wanacl::prelude::*;
//!
//! // 5 managers, 3 hosts, 2 users; check quorum 3; revocation bound 60 s.
//! let policy = Policy::builder(3)
//!     .revocation_bound(SimDuration::from_secs(60))
//!     .build();
//! let mut d = Scenario::builder(42)
//!     .managers(5)
//!     .hosts(3)
//!     .users(2)
//!     .policy(policy)
//!     .all_users_granted()
//!     .build();
//!
//! d.run_for(SimDuration::from_secs(1));
//! d.invoke_from(0);
//! d.run_for(SimDuration::from_secs(2));
//! assert_eq!(d.user_agent(0).stats().allowed, 1);
//!
//! // Revoke user 2 and watch the deny.
//! d.revoke(UserId(2), Right::Use);
//! d.run_for(SimDuration::from_secs(2));
//! d.invoke_from(1);
//! d.run_for(SimDuration::from_secs(2));
//! assert_eq!(d.user_agent(1).stats().denied, 1);
//! ```

#![warn(missing_docs)]

pub use wanacl_analysis as analysis;
pub use wanacl_auth as auth;
pub use wanacl_baselines as baselines;
pub use wanacl_core as core;
pub use wanacl_rt as rt;
pub use wanacl_sim as sim;

/// One-stop imports for applications and experiments.
pub mod prelude {
    pub use wanacl_core::prelude::*;
    pub use wanacl_sim::prelude::*;
}
