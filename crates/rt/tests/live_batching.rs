//! Batching semantics of the worker-pool runtime: coalesced per-peer
//! flushes must be invisible to the protocol, and a thousand-host flash
//! crowd must drain through the fixed pool without shedding anything.

use std::any::Any;
use std::time::{Duration, Instant};

use wanacl_core::prelude::*;
use wanacl_rt::RuntimeBuilder;
use wanacl_sim::node::{Context, Node, NodeId};
use wanacl_sim::time::SimDuration;
use wanacl_sim::world::Observer;

fn live_policy(c: usize) -> Policy {
    Policy::builder(c)
        .revocation_bound(SimDuration::from_secs(2))
        .clock_rate_bound(1.0)
        .query_timeout(SimDuration::from_millis(100))
        .max_attempts(2)
        .cache_sweep_interval(SimDuration::from_millis(500))
        .build()
}

fn fast_manager_config(peers: Vec<NodeId>, app_policy: Policy, acl: Acl) -> ManagerConfig {
    ManagerConfig {
        peers,
        apps: vec![ManagerApp { app: AppId(0), policy: app_policy, initial_acl: acl }],
        registry: None,
        enforce_manage_right: false,
        retry_interval: SimDuration::from_millis(100),
        retry_cap: SimDuration::from_secs(2),
        retry_jitter: 0.1,
        heartbeat_interval: SimDuration::from_millis(100),
        grant_sweep_interval: SimDuration::from_millis(500),
        snapshot_every: 64,
        ..ManagerConfig::default()
    }
}

/// What one run of the seeded soak settles into: every manager's final
/// ACL over a (user, right) probe grid, the user agent's verdicts, and
/// the oracle's view of the captured live trace.
#[derive(Debug, PartialEq)]
struct SoakOutcome {
    acl_grid: Vec<Vec<bool>>,
    allowed: u64,
    denied: u64,
    oracle_allows: u64,
    oracle_revokes: u64,
    oracle_clean: bool,
}

/// Runs the same seeded admin + invoke workload on a 3-manager quorum
/// cluster, with per-peer send coalescing either on or off.
fn run_soak(coalesce: bool) -> SoakOutcome {
    let policy = live_policy(2);
    let mut acl = Acl::new();
    acl.add(UserId(1), Right::Use);

    let mut b: RuntimeBuilder<ProtoMsg> = RuntimeBuilder::new(21);
    b.coalesce_sends(coalesce);
    let traces = b.capture_traces();
    let manager_ids: Vec<NodeId> = (0..3).map(NodeId::from_index).collect();
    for (i, &id) in manager_ids.iter().enumerate() {
        let peers = manager_ids.iter().copied().filter(|p| *p != id).collect();
        let got = b.add_node(
            format!("manager{i}"),
            Box::new(ManagerNode::new(fast_manager_config(peers, policy.clone(), acl.clone()))),
        );
        assert_eq!(got, id);
    }
    let host = b.add_node(
        "host",
        Box::new(HostNode::new(
            vec![AppHost {
                app: AppId(0),
                policy: policy.clone(),
                directory: ManagerDirectory::Static(manager_ids.clone().into()),
                application: Box::new(CountingApp::new()),
            }],
            None,
        )),
    );
    let user = b.add_node(
        "user",
        Box::new(UserAgent::new(UserAgentConfig {
            user: UserId(1),
            app: AppId(0),
            hosts: vec![host].into(),
            workload: None,
            payload: "live".into(),
            secret: None,
            request_timeout: SimDuration::from_secs(5),
            max_requests: None,
        })),
    );
    let rt = b.start();
    std::thread::sleep(Duration::from_millis(150));

    let invoke = |req: u64| {
        rt.send_from_env(
            user,
            ProtoMsg::Invoke {
                app: AppId(0),
                user: UserId(1),
                req: ReqId(req),
                payload: "go".into(),
                signature: None,
            },
        );
    };
    let admin = |target: NodeId, req: u64, op: AclOp| {
        rt.send_from_env(
            target,
            ProtoMsg::Admin { op, req: ReqId(req), issuer: UserId(999), signature: None },
        );
    };

    // The seeded workload: allowed check, ACL churn at different
    // managers, a revocation, the denied re-check. Generous settles so
    // both batching modes reach the same quiescent state.
    invoke(1);
    std::thread::sleep(Duration::from_millis(400));
    admin(manager_ids[0], 10, AclOp::Add { app: AppId(0), user: UserId(2), right: Right::Use });
    admin(manager_ids[1], 11, AclOp::Add { app: AppId(0), user: UserId(3), right: Right::Manage });
    std::thread::sleep(Duration::from_millis(300));
    admin(manager_ids[2], 12, AclOp::Revoke { app: AppId(0), user: UserId(1), right: Right::Use });
    std::thread::sleep(Duration::from_millis(500));
    invoke(2);
    std::thread::sleep(Duration::from_millis(500));

    let nodes = rt.shutdown_nodes();
    let acl_grid = manager_ids
        .iter()
        .map(|&m| {
            let mgr = nodes[m.index()].as_any().downcast_ref::<ManagerNode>().expect("manager");
            let mut row = Vec::new();
            for uid in 1..=3 {
                for right in [Right::Use, Right::Manage] {
                    row.push(mgr.acl_has(AppId(0), UserId(uid), right));
                }
            }
            row
        })
        .collect();
    let stats = nodes[user.index()].as_any().downcast_ref::<UserAgent>().expect("user").stats();

    let mut oracle = InvariantOracle::new(&policy, SimDuration::from_millis(500));
    for (i, e) in traces.drain_sorted().iter().enumerate() {
        let event = wanacl_sim::trace::TraceEvent::Note { node: e.node, text: e.text.clone() };
        oracle.on_event(e.at, i as u64, &event);
    }
    SoakOutcome {
        acl_grid,
        allowed: stats.allowed,
        denied: stats.denied,
        oracle_allows: oracle.stats().allows,
        oracle_revokes: oracle.stats().revokes,
        oracle_clean: oracle.is_clean(),
    }
}

/// The tentpole equivalence contract: per-peer coalescing is a
/// transport optimisation, so a batched run and an unbatched run of the
/// same seeded soak must produce the same oracle verdicts and the same
/// per-manager final ACL state.
#[test]
fn batched_and_unbatched_runs_reach_the_same_verdicts_and_acl_state() {
    let batched = run_soak(true);
    let unbatched = run_soak(false);
    assert!(batched.oracle_clean, "batched run violated invariants");
    assert!(unbatched.oracle_clean, "unbatched run violated invariants");
    assert_eq!(batched, unbatched, "coalescing must be protocol-invisible");
    // Both runs saw the allowed check, the revocation, the denial.
    assert_eq!((batched.allowed, batched.denied), (1, 1));
    assert!(batched.oracle_allows >= 1 && batched.oracle_revokes >= 1);
}

/// A flood-test node: counts everything it hears, forwards a slice of
/// the environment's burst to a fixed peer (so the crowd generates
/// cross-traffic too), and records whether its control lane stayed live.
#[derive(Debug)]
struct FloodNode {
    peer: Option<NodeId>,
    seen: u64,
    recovered: bool,
}

impl Node for FloodNode {
    type Msg = u64;
    fn on_message(&mut self, ctx: &mut Context<'_, u64>, from: NodeId, msg: u64) {
        self.seen += 1;
        ctx.metric_incr("flood.seen");
        if from == NodeId::ENV && msg.is_multiple_of(16) {
            if let Some(peer) = self.peer {
                ctx.send(peer, msg + 1);
            }
        }
    }
    fn on_recover(&mut self, ctx: &mut Context<'_, u64>) {
        self.recovered = true;
        ctx.metric_incr("flood.recovered");
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// 1000 hosts on a pool of ~cores workers: the environment slams every
/// host with a burst, the hosts cross-forward, and a control-lane
/// crash/recover cycle runs mid-flood. Nothing may be shed
/// (`rt.inbox_overflow` stays 0), every envelope must be consumed, and
/// the control cycle must land while the data plane is saturated.
#[test]
fn thousand_host_flash_crowd_drains_without_overflow() {
    const HOSTS: usize = 1000;
    const BURST: u64 = 32;

    let mut b: RuntimeBuilder<u64> = RuntimeBuilder::new(33);
    for i in 0..HOSTS {
        // Each host forwards part of its burst to the next host.
        let peer = Some(NodeId::from_index((i + 1) % HOSTS));
        b.add_node(format!("h{i}"), Box::new(FloodNode { peer, seen: 0, recovered: false }));
    }
    // One host outside the flood proves the control lane cuts through.
    let quiet =
        b.add_node("quiet", Box::new(FloodNode { peer: None, seen: 0, recovered: false }));
    let rt = b.start();

    // Flash crowd: every host gets the full burst, interleaved so all
    // inboxes fill together; halfway through, the control cycle fires.
    for j in 0..BURST {
        for i in 0..HOSTS {
            rt.send_from_env(NodeId::from_index(i), j);
        }
        if j == BURST / 2 {
            rt.crash(quiet);
            rt.recover(quiet);
        }
    }

    // Each host hears its burst plus the forwarded slice from its
    // predecessor (one forward per multiple of 16 in 0..BURST).
    let forwards_per_host = BURST.div_ceil(16);
    let expected = HOSTS as u64 * (BURST + forwards_per_host);
    let deadline = Instant::now() + Duration::from_secs(60);
    while rt.metrics().counter("flood.seen") < expected && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(20));
    }

    assert_eq!(rt.metrics().counter("flood.seen"), expected, "the pool must drain every envelope");
    assert_eq!(rt.metrics().counter("rt.inbox_overflow"), 0, "flash crowd must not shed");
    assert_eq!(rt.metrics().counter("flood.recovered"), 1, "control must cut through the flood");

    let nodes = rt.shutdown_nodes();
    assert_eq!(nodes.len(), HOSTS + 1);
    for (i, node) in nodes.iter().enumerate().take(HOSTS) {
        let flood = node.as_any().downcast_ref::<FloodNode>().expect("flood node");
        assert_eq!(flood.seen, BURST + forwards_per_host, "host {i} lost envelopes");
    }
    let quiet_node = nodes[quiet.index()].as_any().downcast_ref::<FloodNode>().expect("quiet");
    assert!(quiet_node.recovered, "the mid-flood recover must have reached the node");
}
