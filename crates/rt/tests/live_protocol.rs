//! The full access-control protocol on real OS threads: the same
//! `wanacl-core` node objects the simulator runs, driven by wall-clock
//! timers and crossbeam channels.

use std::time::Duration;

use wanacl_core::prelude::*;
use wanacl_rt::router::PartitionSwitch;
use wanacl_rt::RuntimeBuilder;
use wanacl_sim::node::NodeId;
use wanacl_sim::time::SimDuration;

fn live_policy(c: usize) -> Policy {
    Policy::builder(c)
        .revocation_bound(SimDuration::from_secs(2))
        .clock_rate_bound(1.0)
        .query_timeout(SimDuration::from_millis(100))
        .max_attempts(2)
        .cache_sweep_interval(SimDuration::from_millis(500))
        .build()
}

fn fast_manager_config(peers: Vec<NodeId>, app_policy: Policy, acl: Acl) -> ManagerConfig {
    ManagerConfig {
        peers,
        apps: vec![ManagerApp { app: AppId(0), policy: app_policy, initial_acl: acl }],
        registry: None,
        enforce_manage_right: false,
        retry_interval: SimDuration::from_millis(100),
        retry_cap: SimDuration::from_secs(2),
        retry_jitter: 0.1,
        heartbeat_interval: SimDuration::from_millis(100),
        grant_sweep_interval: SimDuration::from_millis(500),
        snapshot_every: 64,
        ..ManagerConfig::default()
    }
}

/// Builds M managers + 1 host + 1 user agent on threads and returns
/// (runtime, host id, user-agent id, manager ids).
fn build_live(
    m: usize,
    c: usize,
) -> (wanacl_rt::Runtime<ProtoMsg>, NodeId, NodeId, Vec<NodeId>) {
    let policy = live_policy(c);
    let mut acl = Acl::new();
    acl.add(UserId(1), Right::Use);

    let mut b: RuntimeBuilder<ProtoMsg> = RuntimeBuilder::new(7);
    let manager_ids: Vec<NodeId> = (0..m).map(NodeId::from_index).collect();
    for (i, &id) in manager_ids.iter().enumerate() {
        let peers = manager_ids.iter().copied().filter(|p| *p != id).collect();
        let got = b.add_node(
            format!("manager{i}"),
            Box::new(ManagerNode::new(fast_manager_config(peers, policy.clone(), acl.clone()))),
        );
        assert_eq!(got, id);
    }
    let host = b.add_node(
        "host",
        Box::new(HostNode::new(
            vec![AppHost {
                app: AppId(0),
                policy: policy.clone(),
                directory: ManagerDirectory::Static(manager_ids.clone().into()),
                application: Box::new(CountingApp::new()),
            }],
            None,
        )),
    );
    let user = b.add_node(
        "user",
        Box::new(UserAgent::new(UserAgentConfig {
            user: UserId(1),
            app: AppId(0),
            hosts: vec![host].into(),
            workload: None,
            payload: "live".into(),
            secret: None,
            request_timeout: SimDuration::from_secs(5),
            max_requests: None,
        })),
    );
    (b.start(), host, user, manager_ids)
}

fn trigger_invoke(rt: &wanacl_rt::Runtime<ProtoMsg>, user: NodeId) {
    rt.send_from_env(
        user,
        ProtoMsg::Invoke {
            app: AppId(0),
            user: UserId(1),
            req: ReqId(0),
            payload: "go".into(),
            signature: None,
        },
    );
}

#[test]
fn live_grant_flow_with_quorum() {
    let (rt, host_id, user_id, _mgrs) = build_live(3, 2);
    std::thread::sleep(Duration::from_millis(100));
    trigger_invoke(&rt, user_id);
    std::thread::sleep(Duration::from_millis(400));
    trigger_invoke(&rt, user_id); // should be a cache hit
    std::thread::sleep(Duration::from_millis(400));
    let snapshot = rt.metrics().snapshot();
    let nodes = rt.shutdown_nodes();
    let user = nodes[user_id.index()].as_any().downcast_ref::<UserAgent>().expect("user");
    assert_eq!(user.stats().allowed, 2, "stats: {:?}", user.stats());
    let host = nodes[host_id.index()].as_any().downcast_ref::<HostNode>().expect("host");
    assert!(host.stats().cache_hits >= 1, "second invoke should hit the cache");
    // The live runtime records the same metric registry the simulator
    // does: cache hit/miss counters and the quorum-check latency
    // histogram must be present and exportable in both formats.
    assert!(snapshot.counter("host.cache_hit") >= 1, "{snapshot:?}");
    assert_eq!(snapshot.counter("host.cache_miss"), 1, "{snapshot:?}");
    let latency =
        snapshot.histogram("host.check_latency_s").and_then(|h| h.summary()).expect("latency");
    assert_eq!(latency.count, 1, "one cold check ran the quorum path");
    assert!(latency.min > 0.0, "a live quorum round trip takes wall-clock time");
    let prom = wanacl_rt::prometheus_text(&snapshot);
    assert!(prom.contains("wanacl_host_cache_hit"), "{prom}");
    assert!(prom.contains("wanacl_host_check_latency_s_count 1"), "{prom}");
    let jsonl = wanacl_rt::metrics_jsonl(&snapshot, "live");
    assert!(jsonl.contains("\"name\":\"host.cache_hit\""), "{jsonl}");
    assert!(jsonl.contains("\"name\":\"host.check_latency_s\""), "{jsonl}");
}

#[test]
fn live_revocation_denies_user() {
    let (rt, _host_id, user_id, mgrs) = build_live(2, 1);
    std::thread::sleep(Duration::from_millis(100));
    trigger_invoke(&rt, user_id);
    std::thread::sleep(Duration::from_millis(300));
    // Revoke straight at manager 0 (unauthenticated deployment).
    rt.send_from_env(
        mgrs[0],
        ProtoMsg::Admin {
            op: AclOp::Revoke { app: AppId(0), user: UserId(1), right: Right::Use },
            req: ReqId(1),
            issuer: UserId(999),
            signature: None,
        },
    );
    // Wait past dissemination + RevokeNotice + cache flush.
    std::thread::sleep(Duration::from_millis(500));
    trigger_invoke(&rt, user_id);
    std::thread::sleep(Duration::from_millis(400));
    let nodes = rt.shutdown_nodes();
    let user = nodes[user_id.index()].as_any().downcast_ref::<UserAgent>().expect("user");
    let stats = user.stats();
    assert_eq!(stats.allowed, 1, "{stats:?}");
    assert_eq!(stats.denied, 1, "{stats:?}");
}

/// §3.4 on real threads: a crashed manager refuses queries until it has
/// synced from its peer, then serves post-crash state.
#[test]
fn live_manager_crash_and_recovery() {
    let (rt, _host_id, user_id, mgrs) = build_live(2, 1);
    std::thread::sleep(Duration::from_millis(150));
    // Crash manager 1, then revoke at manager 0 while it is down.
    rt.crash(mgrs[1]);
    std::thread::sleep(Duration::from_millis(100));
    rt.send_from_env(
        mgrs[0],
        ProtoMsg::Admin {
            op: AclOp::Revoke { app: AppId(0), user: UserId(1), right: Right::Use },
            req: ReqId(1),
            issuer: UserId(999),
            signature: None,
        },
    );
    std::thread::sleep(Duration::from_millis(200));
    rt.recover(mgrs[1]);
    // Recovery sync + update retransmission settle.
    std::thread::sleep(Duration::from_millis(600));
    trigger_invoke(&rt, user_id);
    std::thread::sleep(Duration::from_millis(400));
    let nodes = rt.shutdown_nodes();
    let m1 = nodes[mgrs[1].index()].as_any().downcast_ref::<ManagerNode>().expect("manager");
    assert!(!m1.is_recovering(), "manager must have synced");
    assert!(!m1.acl_has(AppId(0), UserId(1), Right::Use), "sync must carry the revoke");
    let user = nodes[user_id.index()].as_any().downcast_ref::<UserAgent>().expect("user");
    assert_eq!(user.stats().denied, 1, "{:?}", user.stats());
}

/// Durable recovery on real threads and a real filesystem: every
/// manager runs on a [`wanacl_rt::FileStorage`] WAL, the *entire*
/// manager set crash-restarts, and state acked before the crash must
/// come back from disk — no surviving peer holds it in memory.
#[test]
fn live_full_cluster_restart_recovers_from_disk() {
    let policy = live_policy(1);
    let mut acl = Acl::new();
    acl.add(UserId(1), Right::Use);

    let base = std::env::temp_dir().join(format!("wanacl-live-restart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);

    let mut b: RuntimeBuilder<ProtoMsg> = RuntimeBuilder::new(7);
    let manager_ids: Vec<NodeId> = (0..2).map(NodeId::from_index).collect();
    for (i, &id) in manager_ids.iter().enumerate() {
        let peers = manager_ids.iter().copied().filter(|p| *p != id).collect();
        let mut config = fast_manager_config(peers, policy.clone(), acl.clone());
        config.snapshot_every = 2; // force a live snapshot + WAL tail
        let mut node = ManagerNode::new(config);
        node.set_storage(Box::new(
            wanacl_rt::FileStorage::open(base.join(format!("m{i}")))
                .expect("storage dir")
                .with_metrics(b.metrics().clone()),
        ));
        b.add_node(format!("manager{i}"), Box::new(node));
    }
    let host = b.add_node(
        "host",
        Box::new(HostNode::new(
            vec![AppHost {
                app: AppId(0),
                policy: policy.clone(),
                directory: ManagerDirectory::Static(manager_ids.clone().into()),
                application: Box::new(CountingApp::new()),
            }],
            None,
        )),
    );
    let user = b.add_node(
        "user",
        Box::new(UserAgent::new(UserAgentConfig {
            user: UserId(1),
            app: AppId(0),
            hosts: vec![host].into(),
            workload: None,
            payload: "live".into(),
            secret: None,
            request_timeout: SimDuration::from_secs(5),
            max_requests: None,
        })),
    );
    let rt = b.start();
    std::thread::sleep(Duration::from_millis(150));

    // Three ops: revoke user 1, grant+revoke churn on user 2 — enough to
    // cross the snapshot cadence and leave a WAL record after it.
    for (i, op) in [
        AclOp::Revoke { app: AppId(0), user: UserId(1), right: Right::Use },
        AclOp::Add { app: AppId(0), user: UserId(2), right: Right::Use },
        AclOp::Add { app: AppId(0), user: UserId(2), right: Right::Manage },
    ]
    .into_iter()
    .enumerate()
    {
        rt.send_from_env(
            manager_ids[0],
            ProtoMsg::Admin { op, req: ReqId(i as u64 + 1), issuer: UserId(999), signature: None },
        );
        std::thread::sleep(Duration::from_millis(150));
    }

    // The whole cluster goes down at once: no peer keeps the state warm.
    for &m in &manager_ids {
        rt.crash(m);
    }
    std::thread::sleep(Duration::from_millis(100));
    for &m in &manager_ids {
        rt.recover(m);
    }
    std::thread::sleep(Duration::from_millis(600));

    trigger_invoke(&rt, user); // user 1 was revoked pre-crash
    std::thread::sleep(Duration::from_millis(400));
    let snapshot = rt.metrics().snapshot();
    let nodes = rt.shutdown_nodes();
    // Each acked op was fsynced before its ack; the attached sink saw
    // every barrier with a real wall-clock latency sample.
    assert!(snapshot.counter("storage.wal_fsync") >= 3, "{snapshot:?}");
    let fsync =
        snapshot.histogram("storage.wal_fsync_s").and_then(|h| h.summary()).expect("fsync latency");
    assert!(fsync.count >= 3 && fsync.min >= 0.0);
    for &m in &manager_ids {
        let mgr = nodes[m.index()].as_any().downcast_ref::<ManagerNode>().expect("manager");
        assert!(!mgr.is_recovering(), "disk recovery must serve without peer help");
        assert_eq!(mgr.stats().recovered_from_disk, 1, "recovery must come from the WAL");
        assert!(mgr.stats().snapshot_writes >= 1, "cadence 2 with 3 ops must snapshot");
        assert!(!mgr.acl_has(AppId(0), UserId(1), Right::Use), "revoke must survive the restart");
        assert!(mgr.acl_has(AppId(0), UserId(2), Right::Manage), "grant must survive the restart");
    }
    let user = nodes[user.index()].as_any().downcast_ref::<UserAgent>().expect("user");
    assert_eq!(user.stats().denied, 1, "{:?}", user.stats());
    let _ = std::fs::remove_dir_all(&base);
}

/// The replicated directory on real threads: three live replicas serve
/// signed records, the host installs its manager set from a verified
/// quorum read, a fresher record published to ONE replica spreads by
/// anti-entropy, and the host's jittered refresh picks it up.
#[test]
fn live_replicated_directory_quorum_reads_and_converges() {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use wanacl_core::auth::signed::KeyRegistry;
    use wanacl_core::msg::NsRecord;
    use wanacl_core::scenario::NS_WRITER;

    let policy = live_policy(1);
    let mut acl = Acl::new();
    acl.add(UserId(1), Right::Use);

    let mut registry = KeyRegistry::new();
    let writer_kp = registry.enroll(NS_WRITER, &mut StdRng::seed_from_u64(7));
    let registry = std::sync::Arc::new(registry);

    let mut b: RuntimeBuilder<ProtoMsg> = RuntimeBuilder::new(7);
    let manager_ids: Vec<NodeId> = (0..2).map(NodeId::from_index).collect();
    for (i, &id) in manager_ids.iter().enumerate() {
        let peers = manager_ids.iter().copied().filter(|p| *p != id).collect();
        let got = b.add_node(
            format!("manager{i}"),
            Box::new(ManagerNode::new(fast_manager_config(peers, policy.clone(), acl.clone()))),
        );
        assert_eq!(got, id);
    }
    // Short TTL so anti-entropy (TTL/4) and the host refresh (~0.8 TTL)
    // both fire well inside the test's sleeps.
    let ttl = SimDuration::from_millis(800);
    let replica_ids: Vec<NodeId> = (2..5).map(NodeId::from_index).collect();
    let genesis = NsRecord::signed(AppId(0), 1, manager_ids.clone(), NS_WRITER, &writer_kp.secret);
    for (i, &id) in replica_ids.iter().enumerate() {
        let peers = replica_ids.iter().copied().filter(|p| *p != id).collect();
        let mut replica = DirectoryReplica::new(ttl, peers, registry.clone(), NS_WRITER);
        replica.preload(genesis.clone());
        let got = b.add_node(format!("nsreplica{i}"), Box::new(replica));
        assert_eq!(got, id);
    }
    let mut host_node = HostNode::new(
        vec![AppHost {
            app: AppId(0),
            policy: policy.clone(),
            directory: ManagerDirectory::Replicated {
                replicas: replica_ids.clone(),
                read_quorum: 2,
            },
            application: Box::new(CountingApp::new()),
        }],
        None,
    );
    host_node.set_ns_trust(registry.clone(), NS_WRITER);
    let host = b.add_node("host", Box::new(host_node));
    let user = b.add_node(
        "user",
        Box::new(UserAgent::new(UserAgentConfig {
            user: UserId(1),
            app: AppId(0),
            hosts: vec![host].into(),
            workload: None,
            payload: "live".into(),
            secret: None,
            request_timeout: SimDuration::from_secs(5),
            max_requests: None,
        })),
    );
    let rt = b.start();

    // The startup quorum read must land a verified manager set before
    // the first invoke can run its check.
    std::thread::sleep(Duration::from_millis(300));
    trigger_invoke(&rt, user);
    std::thread::sleep(Duration::from_millis(400));

    // Publish version 2 to ONE replica; anti-entropy spreads it and the
    // host's TTL refresh re-reads the quorum.
    let v2 = NsRecord::signed(AppId(0), 2, manager_ids.clone(), NS_WRITER, &writer_kp.secret);
    rt.send_from_env(replica_ids[0], ProtoMsg::NsPublish { record: Box::new(v2) });
    std::thread::sleep(Duration::from_millis(1_200));

    let snapshot = rt.metrics().snapshot();
    let nodes = rt.shutdown_nodes();
    let user = nodes[user.index()].as_any().downcast_ref::<UserAgent>().expect("user");
    assert_eq!(user.stats().allowed, 1, "{:?}", user.stats());
    for &id in &replica_ids {
        let replica =
            nodes[id.index()].as_any().downcast_ref::<DirectoryReplica>().expect("replica");
        assert_eq!(replica.version_of(AppId(0)), 2, "anti-entropy must converge every replica");
        assert!(replica.lookups() >= 1, "every replica answered quorum reads");
    }
    let host = nodes[host.index()].as_any().downcast_ref::<HostNode>().expect("host");
    assert_eq!(host.directory_version(AppId(0)), 2, "refresh must pick up the new version");
    // The directory path feeds the same registry the sim exports.
    assert!(snapshot.counter("ns.installs") >= 1, "{snapshot:?}");
    assert!(snapshot.counter("ns.read_rounds") >= 1, "{snapshot:?}");
    assert!(snapshot.counter("ns.lookups") >= 3, "{snapshot:?}");
    let latency = snapshot
        .histogram("ns.lookup_latency_s")
        .and_then(|h| h.summary())
        .expect("lookup latency histogram");
    assert!(latency.count >= 1 && latency.min > 0.0, "live quorum reads take wall-clock time");
}

#[test]
fn live_partition_trips_check_quorum() {
    let (rt, host_id, user_id, mgrs) = build_live(3, 2);
    // Cut managers 1 and 2 away from the host: C = 2 unreachable.
    let switch = PartitionSwitch::new(vec![mgrs[1], mgrs[2]], vec![host_id]);
    rt.router().set_policy(switch.clone());
    switch.set(true);
    std::thread::sleep(Duration::from_millis(100));
    trigger_invoke(&rt, user_id);
    std::thread::sleep(Duration::from_millis(600)); // 2 attempts x 100 ms + slack
    switch.set(false);
    std::thread::sleep(Duration::from_millis(100));
    trigger_invoke(&rt, user_id);
    std::thread::sleep(Duration::from_millis(500));
    let nodes = rt.shutdown_nodes();
    let user = nodes[user_id.index()].as_any().downcast_ref::<UserAgent>().expect("user");
    let stats = user.stats();
    assert_eq!(stats.unavailable, 1, "partitioned check must fail closed: {stats:?}");
    assert_eq!(stats.allowed, 1, "healed network must serve again: {stats:?}");
}

/// Process-death recovery on the live check path: a manager is
/// [`wanacl_rt::Runtime::kill`]ed mid-update (no `on_crash` hook, the
/// thread just dies), respawned from its `FileStorage` WAL by the node
/// factory, and the update retry converges — with the captured live
/// trace staying clean under the invariant oracle (no I5 violation:
/// everything acked before the kill comes back from disk).
#[test]
fn live_kill_restart_mid_update_converges_from_wal() {
    let policy = live_policy(2); // C = 2: checks need BOTH managers
    let mut acl = Acl::new();
    acl.add(UserId(1), Right::Use);

    let base = std::env::temp_dir().join(format!("wanacl-live-kill-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);

    let mut b: RuntimeBuilder<ProtoMsg> = RuntimeBuilder::new(11);
    let traces = b.capture_traces();
    let manager_ids: Vec<NodeId> = (0..2).map(NodeId::from_index).collect();
    for (i, &id) in manager_ids.iter().enumerate() {
        let mut config =
            fast_manager_config(vec![manager_ids[1 - i]], policy.clone(), acl.clone());
        config.snapshot_every = 2;
        let dir = base.join(format!("m{i}"));
        let sink = b.metrics().clone();
        let got = b.add_node_with_factory(
            format!("manager{i}"),
            std::sync::Arc::new(move || {
                let mut node = ManagerNode::new(config.clone());
                node.set_storage(Box::new(
                    wanacl_rt::FileStorage::open(dir.clone())
                        .expect("storage dir")
                        .with_metrics(sink.clone()),
                ));
                Box::new(node)
            }),
        );
        assert_eq!(got, id);
    }
    let host = b.add_node(
        "host",
        Box::new(HostNode::new(
            vec![AppHost {
                app: AppId(0),
                policy: policy.clone(),
                directory: ManagerDirectory::Static(manager_ids.clone().into()),
                application: Box::new(CountingApp::new()),
            }],
            None,
        )),
    );
    let user = b.add_node(
        "user",
        Box::new(UserAgent::new(UserAgentConfig {
            user: UserId(1),
            app: AppId(0),
            hosts: vec![host].into(),
            workload: None,
            payload: "live".into(),
            secret: None,
            request_timeout: SimDuration::from_secs(5),
            max_requests: None,
        })),
    );
    let mut rt = b.start();
    std::thread::sleep(Duration::from_millis(150));

    // Durable state before the kill: an op acked and fsynced everywhere.
    rt.send_from_env(
        manager_ids[1],
        ProtoMsg::Admin {
            op: AclOp::Add { app: AppId(0), user: UserId(2), right: Right::Use },
            req: ReqId(1),
            issuer: UserId(999),
            signature: None,
        },
    );
    std::thread::sleep(Duration::from_millis(200));

    // Mid-update process death: issue an op at manager 1 and kill
    // manager 0 immediately, before dissemination can reach it. The
    // update quorum (M - C + 1 = 1) accepts at manager 1, which keeps
    // retrying the transfer to its dead peer.
    rt.send_from_env(
        manager_ids[1],
        ProtoMsg::Admin {
            op: AclOp::Add { app: AppId(0), user: UserId(2), right: Right::Manage },
            req: ReqId(2),
            issuer: UserId(999),
            signature: None,
        },
    );
    assert_eq!(rt.kill(manager_ids[0]), Ok(wanacl_rt::NodeExit::Killed));

    // A check during the outage cannot reach C = 2 managers: the host
    // retries, the attempt budget runs out, the user sees fail-closed.
    trigger_invoke(&rt, user);
    std::thread::sleep(Duration::from_millis(600));

    // Respawn from disk: the factory reopens the same WAL directory and
    // `on_start` replays snapshot + tail, then peer retransmission
    // delivers the op issued while the process was dead.
    rt.restart(manager_ids[0]).expect("restart");
    std::thread::sleep(Duration::from_millis(800));
    trigger_invoke(&rt, user);
    std::thread::sleep(Duration::from_millis(500));

    assert_eq!(rt.metrics().counter("rt.node_killed"), 1);
    assert_eq!(rt.metrics().counter("rt.node_restarted"), 1);
    let nodes = rt.shutdown_nodes();
    let m0 = nodes[0].as_any().downcast_ref::<ManagerNode>().expect("manager");
    assert!(!m0.is_recovering(), "restarted manager must be serving");
    assert_eq!(m0.stats().recovered_from_disk, 1, "respawn must replay the WAL");
    assert!(
        m0.acl_has(AppId(0), UserId(2), Right::Use),
        "state acked before the kill must come back from disk"
    );
    assert!(
        m0.acl_has(AppId(0), UserId(2), Right::Manage),
        "the mid-kill update's retry must converge after the restart"
    );
    let user = nodes[user.index()].as_any().downcast_ref::<UserAgent>().expect("user");
    let stats = user.stats();
    assert_eq!(stats.unavailable, 1, "outage check must fail closed: {stats:?}");
    assert_eq!(stats.allowed, 1, "post-restart check must serve: {stats:?}");

    // The live trace, replayed through the campaign oracle: bounded
    // revocation, quorum hygiene, and durability (I5) all hold — the
    // disk recovery claim must account for every durable slot.
    use wanacl_sim::world::Observer;
    let mut oracle = InvariantOracle::new(&policy, SimDuration::from_millis(500));
    let entries = traces.drain_sorted();
    for (i, e) in entries.iter().enumerate() {
        let event =
            wanacl_sim::trace::TraceEvent::Note { node: e.node, text: e.text.clone() };
        oracle.on_event(e.at, i as u64, &event);
    }
    assert!(oracle.stats().allows >= 1, "the oracle must have seen real evidence");
    assert!(
        oracle.is_clean(),
        "live kill/restart must not violate invariants: {:?}",
        oracle.violations()
    );
    let _ = std::fs::remove_dir_all(&base);
}
