//! Length-prefixed binary batch framing for coalesced envelopes.
//!
//! The worker pool flushes each node-step's outbound traffic as one
//! per-peer batch. Inside the process that batch travels as
//! `Vec<Arc<M>>` (the PR 3 zero-copy envelopes); when a batch has to
//! cross a byte boundary — a future cross-process transport, the WAL
//! shipping path, or the wire captures in tests — it is framed by this
//! codec:
//!
//! ```text
//! batch   := header frame* trailer
//! header  := magic:u32 "WANB" | version:u8 | count:u32le
//! frame   := len:u32le | payload:bytes[len]
//! trailer := crc32:u32le          (over header + all frames)
//! ```
//!
//! The CRC is the same polynomial the FileStorage WAL uses, so a torn
//! or bit-flipped batch is rejected rather than mis-parsed. Frames are
//! length-prefixed, never delimited, so payloads are arbitrary bytes.
//!
//! Messages opt in by implementing [`WireMsg`]; the runtime itself
//! stays generic over any `M` and only the byte-carrying tests and the
//! `rt_live/codec_frame` bench exercise encode/decode today.

const MAGIC: u32 = 0x574e_4142; // "WANB"
const VERSION: u8 = 1;
/// Upper bound on a single frame, to fail fast on corrupt lengths.
const MAX_FRAME: usize = 16 << 20;

/// A message that can cross a byte boundary.
pub trait WireMsg: Sized {
    /// Appends this message's payload bytes to `out`.
    fn encode(&self, out: &mut Vec<u8>);
    /// Rebuilds a message from one frame's payload.
    fn decode(bytes: &[u8]) -> Result<Self, CodecError>;
}

impl WireMsg for Vec<u8> {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(self);
    }
    fn decode(bytes: &[u8]) -> Result<Self, CodecError> {
        Ok(bytes.to_vec())
    }
}

impl WireMsg for String {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(self.as_bytes());
    }
    fn decode(bytes: &[u8]) -> Result<Self, CodecError> {
        String::from_utf8(bytes.to_vec()).map_err(|_| CodecError::Malformed("invalid utf-8"))
    }
}

/// Why a batch failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer is shorter than its framing claims.
    Truncated,
    /// Bad magic, unsupported version, oversized frame, or payload
    /// rejected by the message type.
    Malformed(&'static str),
    /// The trailer CRC does not match the framed bytes.
    CrcMismatch {
        /// CRC recorded in the trailer.
        expected: u32,
        /// CRC computed over the received bytes.
        actual: u32,
    },
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "batch truncated"),
            CodecError::Malformed(what) => write!(f, "malformed batch: {what}"),
            CodecError::CrcMismatch { expected, actual } => {
                write!(f, "batch crc mismatch: expected {expected:#010x}, got {actual:#010x}")
            }
        }
    }
}

impl std::error::Error for CodecError {}

/// CRC-32 (IEEE), bit-reflected — matches the FileStorage WAL framing.
fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xedb8_8320 & mask);
        }
    }
    !crc
}

/// Frames `msgs` into one length-prefixed, CRC-trailed batch.
pub fn encode_batch<M: WireMsg>(msgs: &[M]) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + msgs.len() * 8);
    out.extend_from_slice(&MAGIC.to_le_bytes());
    out.push(VERSION);
    out.extend_from_slice(&(msgs.len() as u32).to_le_bytes());
    let mut scratch = Vec::new();
    for msg in msgs {
        scratch.clear();
        msg.encode(&mut scratch);
        out.extend_from_slice(&(scratch.len() as u32).to_le_bytes());
        out.extend_from_slice(&scratch);
    }
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Parses one batch produced by [`encode_batch`], verifying the CRC
/// before interpreting any payload.
pub fn decode_batch<M: WireMsg>(bytes: &[u8]) -> Result<Vec<M>, CodecError> {
    if bytes.len() < 13 {
        return Err(CodecError::Truncated);
    }
    let (body, trailer) = bytes.split_at(bytes.len() - 4);
    let expected = u32::from_le_bytes(trailer.try_into().expect("4 bytes"));
    let actual = crc32(body);
    if expected != actual {
        return Err(CodecError::CrcMismatch { expected, actual });
    }
    if u32::from_le_bytes(body[0..4].try_into().expect("4 bytes")) != MAGIC {
        return Err(CodecError::Malformed("bad magic"));
    }
    if body[4] != VERSION {
        return Err(CodecError::Malformed("unsupported version"));
    }
    let count = u32::from_le_bytes(body[5..9].try_into().expect("4 bytes")) as usize;
    let mut msgs = Vec::with_capacity(count.min(1024));
    let mut at = 9;
    for _ in 0..count {
        if body.len() - at < 4 {
            return Err(CodecError::Truncated);
        }
        let len = u32::from_le_bytes(body[at..at + 4].try_into().expect("4 bytes")) as usize;
        if len > MAX_FRAME {
            return Err(CodecError::Malformed("frame too large"));
        }
        at += 4;
        if body.len() - at < len {
            return Err(CodecError::Truncated);
        }
        msgs.push(M::decode(&body[at..at + len])?);
        at += len;
    }
    if at != body.len() {
        return Err(CodecError::Malformed("trailing bytes after last frame"));
    }
    Ok(msgs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_mixed_payloads_including_empty() {
        let batch: Vec<Vec<u8>> = vec![b"check:u1".to_vec(), Vec::new(), vec![0u8; 3000]];
        let framed = encode_batch(&batch);
        let back: Vec<Vec<u8>> = decode_batch(&framed).expect("clean round trip");
        assert_eq!(back, batch);

        let empty: Vec<String> = Vec::new();
        let framed = encode_batch(&empty);
        assert_eq!(decode_batch::<String>(&framed).expect("empty batch"), empty);
    }

    #[test]
    fn string_payloads_round_trip() {
        let batch = vec!["grant alice".to_string(), "revoke bob".to_string()];
        let framed = encode_batch(&batch);
        assert_eq!(decode_batch::<String>(&framed).expect("round trip"), batch);
    }

    #[test]
    fn a_flipped_bit_is_caught_by_the_crc() {
        let batch = vec![b"payload".to_vec()];
        let mut framed = encode_batch(&batch);
        framed[10] ^= 0x40;
        match decode_batch::<Vec<u8>>(&framed) {
            Err(CodecError::CrcMismatch { .. }) => {}
            other => panic!("corruption slipped past the crc: {other:?}"),
        }
    }

    #[test]
    fn truncation_and_garbage_are_rejected_not_panicked() {
        let framed = encode_batch(&[b"abc".to_vec(), b"defg".to_vec()]);
        for cut in 0..framed.len() {
            assert!(
                decode_batch::<Vec<u8>>(&framed[..cut]).is_err(),
                "prefix of {cut} bytes must not decode"
            );
        }
        assert!(decode_batch::<Vec<u8>>(&[0xff; 64]).is_err());
    }

    #[test]
    fn frame_count_and_length_lies_are_malformed() {
        // Forge a batch whose header claims more frames than it carries,
        // with a valid CRC so the structural checks are what reject it.
        let mut body = Vec::new();
        body.extend_from_slice(&MAGIC.to_le_bytes());
        body.push(VERSION);
        body.extend_from_slice(&2u32.to_le_bytes()); // claims 2 frames
        body.extend_from_slice(&1u32.to_le_bytes());
        body.push(b'x'); // ...but carries only 1
        let crc = crc32(&body);
        body.extend_from_slice(&crc.to_le_bytes());
        assert_eq!(decode_batch::<Vec<u8>>(&body), Err(CodecError::Truncated));
    }
}
