//! The node-per-thread runtime.

use std::collections::{BinaryHeap, HashSet};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, RecvTimeoutError, Sender};

use wanacl_sim::clock::LocalTime;
use wanacl_sim::node::{Context, Effect, Node, NodeId};
use wanacl_sim::obs::MetricsSink;
use wanacl_sim::rng::SimRng;

use crate::router::{Envelope, Router};

/// A protocol node that can run on a thread.
pub trait RtNode<M>: Node<Msg = M> + Send {}
impl<M, T: Node<Msg = M> + Send> RtNode<M> for T {}

#[derive(Debug, PartialEq, Eq)]
struct DueTimer {
    due: Instant,
    id: u64,
    tag: u64,
}

impl Ord for DueTimer {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first.
        other.due.cmp(&self.due).then(other.id.cmp(&self.id))
    }
}
impl PartialOrd for DueTimer {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Builds a threaded deployment.
pub struct RuntimeBuilder<M> {
    nodes: Vec<(String, Box<dyn RtNode<M>>)>,
    seed: u64,
    metrics: MetricsSink,
}

impl<M> std::fmt::Debug for RuntimeBuilder<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RuntimeBuilder").field("nodes", &self.nodes.len()).finish()
    }
}

impl<M: Send + Sync + Clone + std::fmt::Debug + 'static> RuntimeBuilder<M> {
    /// Starts a builder; `seed` feeds each node's RNG stream.
    pub fn new(seed: u64) -> Self {
        RuntimeBuilder { nodes: Vec::new(), seed, metrics: MetricsSink::new() }
    }

    /// The deployment-wide metrics sink. All node threads record the
    /// `ctx.metric_incr`/`ctx.metric_observe` effects here — the same
    /// named counters and latency histograms the simulator's `World`
    /// collects. Clone the handle to keep reading after `start`.
    pub fn metrics(&self) -> &MetricsSink {
        &self.metrics
    }

    /// Adds a node; returns the id it will run under. Ids are assigned
    /// densely in add order, exactly like the simulator.
    pub fn add_node(&mut self, name: impl Into<String>, node: Box<dyn RtNode<M>>) -> NodeId {
        self.nodes.push((name.into(), node));
        NodeId::from_index(self.nodes.len() - 1)
    }

    /// Spawns all node threads and returns the running deployment.
    pub fn start(self) -> Runtime<M> {
        let router: Arc<Router<M>> = Router::new();
        let mut senders: Vec<Sender<Envelope<M>>> = Vec::new();
        // Register all inboxes first so ids are stable before any thread
        // runs.
        let mut inboxes = Vec::new();
        for _ in &self.nodes {
            let (tx, rx) = unbounded();
            let id = router.register(tx.clone());
            senders.push(tx);
            inboxes.push((id, rx));
        }
        let mut handles = Vec::new();
        for ((name, mut node), (id, rx)) in self.nodes.into_iter().zip(inboxes) {
            let router = router.clone();
            let seed = self.seed ^ (id.index() as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
            let metrics = self.metrics.clone();
            let handle = std::thread::Builder::new()
                .name(name)
                .spawn(move || {
                    run_node_thread(&mut *node, id, rx, router, seed, &metrics);
                    node
                })
                .expect("thread spawn");
            handles.push(handle);
        }
        Runtime { router, senders, handles, metrics: self.metrics }
    }
}

fn run_node_thread<M: Send + Sync + Clone + std::fmt::Debug + 'static>(
    node: &mut dyn RtNode<M>,
    id: NodeId,
    rx: crossbeam::channel::Receiver<Envelope<M>>,
    router: Arc<Router<M>>,
    seed: u64,
    metrics: &MetricsSink,
) {
    let start = Instant::now();
    let mut rng = SimRng::seed_from(seed);
    let mut next_timer: u64 = 0;
    let mut timers: BinaryHeap<DueTimer> = BinaryHeap::new();
    let mut cancelled: HashSet<u64> = HashSet::new();
    let mut up = true;

    let local_now = |start: Instant| LocalTime::from_nanos(start.elapsed().as_nanos() as u64);

    // on_start.
    let mut effects = Vec::new();
    {
        let mut ctx = Context::new(id, local_now(start), &mut effects, &mut rng, &mut next_timer);
        node.on_start(&mut ctx);
    }
    apply_effects(id, effects, &router, &mut timers, &mut cancelled, metrics);

    loop {
        // Fire due timers (only while up; a crash clears them anyway).
        let now = Instant::now();
        while up && timers.peek().is_some_and(|t| t.due <= now) {
            let t = timers.pop().expect("peeked");
            if cancelled.remove(&t.id) {
                continue;
            }
            let mut effects = Vec::new();
            {
                let mut ctx =
                    Context::new(id, local_now(start), &mut effects, &mut rng, &mut next_timer);
                node.on_timer(&mut ctx, t.tag);
            }
            apply_effects(id, effects, &router, &mut timers, &mut cancelled, metrics);
        }
        // Wait for the next message or timer deadline.
        let wait = if up {
            timers
                .peek()
                .map(|t| t.due.saturating_duration_since(Instant::now()))
                .unwrap_or(Duration::from_millis(50))
        } else {
            Duration::from_millis(50)
        };
        match rx.recv_timeout(wait) {
            Ok(Envelope::Msg { from, msg }) => {
                if !up {
                    continue; // a crashed node hears nothing
                }
                // Point-to-point sends hold the only reference, so this
                // unwraps without copying; broadcast recipients clone.
                let msg = Arc::try_unwrap(msg).unwrap_or_else(|shared| (*shared).clone());
                let mut effects = Vec::new();
                {
                    let mut ctx =
                        Context::new(id, local_now(start), &mut effects, &mut rng, &mut next_timer);
                    node.on_message(&mut ctx, from, msg);
                }
                apply_effects(id, effects, &router, &mut timers, &mut cancelled, metrics);
            }
            Ok(Envelope::Crash) => {
                if up {
                    up = false;
                    timers.clear();
                    cancelled.clear();
                    node.on_crash();
                }
            }
            Ok(Envelope::Recover) => {
                if !up {
                    up = true;
                    let mut effects = Vec::new();
                    {
                        let mut ctx = Context::new(
                            id,
                            local_now(start),
                            &mut effects,
                            &mut rng,
                            &mut next_timer,
                        );
                        node.on_recover(&mut ctx);
                    }
                    apply_effects(id, effects, &router, &mut timers, &mut cancelled, metrics);
                }
            }
            Ok(Envelope::Stop) => break,
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
}

fn apply_effects<M: Send + Sync + Clone + std::fmt::Debug + 'static>(
    id: NodeId,
    effects: Vec<Effect<M>>,
    router: &Router<M>,
    timers: &mut BinaryHeap<DueTimer>,
    cancelled: &mut HashSet<u64>,
    metrics: &MetricsSink,
) {
    for effect in effects {
        match effect {
            Effect::Send { to, msg } => router.send(id, to, msg),
            Effect::SetTimer { id: timer_id, local_delay, tag } => {
                let due = Instant::now() + Duration::from_nanos(local_delay.as_nanos());
                timers.push(DueTimer { due, id: timer_id.into_raw(), tag });
            }
            Effect::CancelTimer { id: timer_id } => {
                cancelled.insert(timer_id.into_raw());
            }
            // Metric effects land in the shared deployment sink, so the
            // live runtime reports the same named counters/latencies as
            // the simulator's World.
            Effect::MetricIncr { name } => metrics.incr(name),
            Effect::MetricObserve { name, value } => metrics.observe(name, value),
            // Traces are a simulator-side convenience; the threaded
            // runtime drops them.
            Effect::Trace { .. } => {}
        }
    }
}

/// A running threaded deployment.
pub struct Runtime<M> {
    router: Arc<Router<M>>,
    senders: Vec<Sender<Envelope<M>>>,
    handles: Vec<JoinHandle<Box<dyn RtNode<M>>>>,
    metrics: MetricsSink,
}

impl<M> std::fmt::Debug for Runtime<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Runtime").field("nodes", &self.senders.len()).finish()
    }
}

impl<M: Send + Sync + Clone + std::fmt::Debug + 'static> Runtime<M> {
    /// The router (for installing link policies and reading traffic
    /// stats).
    pub fn router(&self) -> &Arc<Router<M>> {
        &self.router
    }

    /// The deployment-wide metrics sink fed by every node thread.
    /// `metrics().snapshot()` gives a point-in-time [`wanacl_sim::metrics::Metrics`]
    /// for the exporters in [`wanacl_sim::obs`].
    pub fn metrics(&self) -> &MetricsSink {
        &self.metrics
    }

    /// Injects a message as the environment.
    pub fn send_from_env(&self, to: NodeId, msg: M) {
        self.router.send(NodeId::ENV, to, msg);
    }

    /// Crashes a node: it drops volatile state (`Node::on_crash`) and
    /// ignores all traffic until [`Runtime::recover`].
    pub fn crash(&self, node: NodeId) {
        if let Some(tx) = self.senders.get(node.index()) {
            let _ = tx.send(Envelope::Crash);
        }
    }

    /// Recovers a crashed node (`Node::on_recover`).
    pub fn recover(&self, node: NodeId) {
        if let Some(tx) = self.senders.get(node.index()) {
            let _ = tx.send(Envelope::Recover);
        }
    }

    /// Stops every node thread and returns the node objects for
    /// inspection, in id order.
    pub fn shutdown(self) -> Vec<Box<dyn RtNode<M>>> {
        for tx in &self.senders {
            let _ = tx.send(Envelope::Stop);
        }
        self.handles.into_iter().map(|h| h.join().expect("node thread panicked")).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::any::Any;

    #[derive(Debug, Default)]
    struct Counter {
        seen: u64,
        timer_fired: bool,
    }

    impl Node for Counter {
        type Msg = u64;
        fn on_start(&mut self, ctx: &mut Context<'_, u64>) {
            ctx.set_timer(wanacl_sim::time::SimDuration::from_millis(20), 7);
        }
        fn on_message(&mut self, ctx: &mut Context<'_, u64>, from: NodeId, msg: u64) {
            self.seen += 1;
            if from != NodeId::ENV && msg < 3 {
                ctx.send(from, msg + 1);
            }
        }
        fn on_timer(&mut self, _ctx: &mut Context<'_, u64>, tag: u64) {
            assert_eq!(tag, 7);
            self.timer_fired = true;
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[derive(Debug)]
    struct Opener {
        target: NodeId,
        replies: u64,
    }

    impl Node for Opener {
        type Msg = u64;
        fn on_message(&mut self, ctx: &mut Context<'_, u64>, from: NodeId, msg: u64) {
            if from == NodeId::ENV {
                ctx.send(self.target, 0);
            } else {
                self.replies += 1;
                if msg < 3 {
                    ctx.send(from, msg + 1);
                }
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn threads_exchange_messages_and_fire_timers() {
        let mut b: RuntimeBuilder<u64> = RuntimeBuilder::new(1);
        let counter_id = b.add_node("counter", Box::new(Counter::default()));
        let opener_id = b.add_node("opener", Box::new(Opener { target: counter_id, replies: 0 }));
        let rt = b.start();
        rt.send_from_env(opener_id, 0);
        std::thread::sleep(Duration::from_millis(200));
        let nodes = rt.shutdown();
        let counter = nodes[0].as_any().downcast_ref::<Counter>().expect("counter");
        let opener = nodes[1].as_any().downcast_ref::<Opener>().expect("opener");
        // Ping-pong 0->1->2->3 gives the counter messages 0 and 2.
        assert_eq!(counter.seen, 2);
        assert!(counter.timer_fired);
        assert_eq!(opener.replies, 2);
    }

    #[derive(Debug, Default)]
    struct Emitter;

    impl Node for Emitter {
        type Msg = u64;
        fn on_message(&mut self, ctx: &mut Context<'_, u64>, _from: NodeId, msg: u64) {
            ctx.metric_incr("test.msgs");
            ctx.metric_observe("test.value", msg as f64);
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn metric_effects_reach_the_shared_sink() {
        let mut b: RuntimeBuilder<u64> = RuntimeBuilder::new(3);
        let a = b.add_node("a", Box::new(Emitter));
        let c = b.add_node("b", Box::new(Emitter));
        let rt = b.start();
        rt.send_from_env(a, 10);
        rt.send_from_env(c, 30);
        let deadline = Instant::now() + Duration::from_secs(5);
        while rt.metrics().counter("test.msgs") < 2 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        let snap = rt.metrics().snapshot();
        rt.shutdown();
        assert_eq!(snap.counter("test.msgs"), 2);
        let summary = snap.histogram("test.value").and_then(|h| h.summary()).expect("samples");
        assert_eq!(summary.count, 2);
        assert_eq!(summary.sum, 40.0);
    }

    #[test]
    fn shutdown_returns_nodes_in_id_order() {
        let mut b: RuntimeBuilder<u64> = RuntimeBuilder::new(2);
        let a = b.add_node("a", Box::new(Counter::default()));
        let c = b.add_node("b", Box::new(Counter::default()));
        assert_eq!(a.index(), 0);
        assert_eq!(c.index(), 1);
        let rt = b.start();
        let nodes = rt.shutdown();
        assert_eq!(nodes.len(), 2);
    }
}
