//! The event-driven worker-pool runtime.
//!
//! A small fixed pool of workers (N ≈ cores by default) multiplexes
//! every logical node, replacing the old one-OS-thread-per-node design.
//! Each node owns an inbox *cell* — a control queue (unbounded, for
//! lifecycle commands that must never be lost) and a bounded data queue
//! with drop-newest overflow (`rt.inbox_overflow`). A push to an idle
//! cell sends one wake token to the owning worker; further pushes ride
//! the already-scheduled wake for free.
//!
//! Workers drain-the-inbox-then-step: each wake processes control
//! first, then up to a fixed batch of data envelopes, and flushes all
//! resulting sends coalesced per peer — one mailbox lock and one worker
//! wake per destination per step (`Transport::send_batch`), reusing the
//! `Arc`-envelope zero-copy path. Timers live in one sharded
//! [`TimerWheel`](crate::wheel) per worker and fire by absolute
//! deadline; the gap between a timer's deadline and its firing is
//! recorded in the `rt.timer_drift_ns` histogram.
//!
//! Node panics are caught per handler invocation: a panicking node
//! becomes a reportable [`NodeResult`] error and its worker keeps
//! serving every other node. A worker thread the OS refuses to spawn is
//! a startup-time [`RuntimeError`], not a panic.
//!
//! Unlike the simulator, a pooled run is *not* deterministic — worker
//! scheduling and wall-clock jitter are real. That is the point: the
//! protocol must tolerate it, and tests check outcomes rather than
//! traces.

use std::collections::{HashSet, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};

use wanacl_sim::clock::LocalTime;
use wanacl_sim::node::{Context, Effect, Node, NodeId};
use wanacl_sim::obs::MetricsSink;
use wanacl_sim::rng::SimRng;
use wanacl_sim::time::SimTime;

use crate::router::{Router, Transport};
use crate::wheel::{TimerEntry, TimerWheel};

/// Default bound on every node's data queue. Large enough that a
/// healthy node never sees it; small enough that a wedged node sheds
/// load instead of growing a queue without limit.
const DEFAULT_INBOX_CAPACITY: usize = 4096;

/// Data envelopes one node may consume per wake before yielding the
/// worker — bounds per-step latency for its siblings while keeping the
/// drain-then-flush coalescing window wide.
const MAX_STEP_BATCH: usize = 64;

/// Wake-channel sentinel telling a worker to exit. Never collides with
/// a node index (that value is `NodeId::ENV`, which owns no cell).
const WAKE_SHUTDOWN: u32 = u32::MAX;

/// A protocol node that can run on the pool.
pub trait RtNode<M>: Node<Msg = M> + Send {}
impl<M, T: Node<Msg = M> + Send> RtNode<M> for T {}

/// Builds a fresh instance of a node for [`Runtime::restart`] — e.g. a
/// `ManagerNode` reopening its `FileStorage` directory so `on_start`
/// replays the WAL + snapshot, exactly what a respawned process does.
pub type NodeFactory<M> = Arc<dyn Fn() -> Box<dyn RtNode<M>> + Send + Sync>;

/// How a node ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeExit {
    /// Clean stop via [`Runtime::shutdown`].
    Stopped,
    /// Torn down by [`Runtime::kill`] (process-death model: no
    /// `on_crash` hook ran).
    Killed,
    /// The runtime abandoned the node without a `Stop` — historically
    /// the wedged-deployment signal. The worker pool can no longer
    /// produce it (cells outlive their nodes), but chaos reports still
    /// recognise it.
    Disconnected,
}

/// Per-node outcome of [`Runtime::shutdown`]: how the node ended plus
/// the node object for inspection, or the panic message if one of its
/// handlers panicked. One panicking node is a reportable result, not a
/// cascade.
pub type NodeResult<M> = Result<(NodeExit, Box<dyn RtNode<M>>), String>;

/// Why the runtime could not start.
#[derive(Debug)]
pub enum RuntimeError {
    /// The OS refused to spawn a worker thread. Startup-time and
    /// recoverable: already-spawned workers are shut down cleanly
    /// before this is returned, so the caller can retry with fewer
    /// workers or report and exit.
    WorkerSpawn {
        /// Index of the worker that failed to spawn.
        worker: usize,
        /// The underlying OS error.
        source: std::io::Error,
    },
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuntimeError::WorkerSpawn { worker, source } => {
                write!(f, "failed to spawn runtime worker {worker}: {source}")
            }
        }
    }
}

impl std::error::Error for RuntimeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RuntimeError::WorkerSpawn { source, .. } => Some(source),
        }
    }
}

/// One captured `Effect::Trace` from a live node, stamped against the
/// deployment-wide epoch so events from different workers share a clock.
#[derive(Debug, Clone, PartialEq)]
pub struct LiveTraceEntry {
    /// Wall-clock time since [`Runtime`] start, as the sim time type the
    /// oracle consumes.
    pub at: SimTime,
    /// The emitting node.
    pub node: NodeId,
    /// The trace text (e.g. `audit=...` notes).
    pub text: String,
}

/// A shared, thread-safe buffer of live trace events.
///
/// Enabled via [`RuntimeBuilder::capture_traces`]; workers append every
/// `ctx.trace(..)` effect, and a chaos driver drains the buffer to feed
/// the invariant oracle the same `Note` stream the simulator produces.
/// Poison-tolerant like the metrics sink: a panicking node must not
/// take the evidence down with it.
#[derive(Debug, Clone, Default)]
pub struct TraceBuffer {
    entries: Arc<Mutex<Vec<LiveTraceEntry>>>,
}

impl TraceBuffer {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        TraceBuffer::default()
    }

    fn push(&self, entry: LiveTraceEntry) {
        self.entries.lock().unwrap_or_else(|e| e.into_inner()).push(entry);
    }

    /// Number of captured entries.
    pub fn len(&self) -> usize {
        self.entries.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Whether nothing has been captured.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Takes all captured entries, sorted by timestamp (stable, so
    /// same-instant events keep arrival order).
    pub fn drain_sorted(&self) -> Vec<LiveTraceEntry> {
        let mut entries =
            std::mem::take(&mut *self.entries.lock().unwrap_or_else(|e| e.into_inner()));
        entries.sort_by_key(|e| e.at);
        entries
    }
}

/// A lifecycle command on a node's control lane. Control is unbounded
/// and drained before data, so a kill or stop can never be shed by a
/// flash crowd.
pub(crate) enum ControlMsg<M> {
    /// Soft crash: drop volatile state, ignore traffic until `Recover`.
    Crash,
    /// Recover from a soft crash.
    Recover,
    /// Clean stop; replies with the node object.
    Stop(Sender<NodeResult<M>>),
    /// Process-death teardown; replies with the node object.
    Kill(Sender<NodeResult<M>>),
    /// Install a fresh node instance under this id (restart path).
    Install(Box<dyn RtNode<M>>),
}

/// The result of pushing one data message into a [`NodeCell`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CellPush {
    /// Queued (and the worker woken if it wasn't already scheduled).
    Delivered,
    /// The bounded data queue was full; the message was shed.
    Full,
    /// The node is dead (killed, stopped, or panicked); the network
    /// silently loses the message, like traffic to a down host.
    Dead,
}

/// What [`NodeCell::drain`] hands the worker: all queued control, a
/// bounded batch of data envelopes, and whether data remains queued.
pub(crate) type Drained<M> = (Vec<ControlMsg<M>>, Vec<(NodeId, Arc<M>)>, bool);

struct CellState<M> {
    control: VecDeque<ControlMsg<M>>,
    data: VecDeque<(NodeId, Arc<M>)>,
    /// True while a wake token for this cell is outstanding (in the
    /// worker's channel or local run queue). Pushes to a scheduled cell
    /// ride the existing wake for free.
    scheduled: bool,
    alive: bool,
}

/// One logical node's inbox, shared between the router (producers) and
/// the owning worker (consumer).
pub(crate) struct NodeCell<M> {
    index: u32,
    capacity: usize,
    wake: Sender<u32>,
    state: parking_lot::Mutex<CellState<M>>,
}

impl<M> NodeCell<M> {
    pub(crate) fn new(index: u32, capacity: usize, wake: Sender<u32>) -> Arc<Self> {
        Arc::new(NodeCell {
            index,
            capacity,
            wake,
            state: parking_lot::Mutex::new(CellState {
                control: VecDeque::new(),
                data: VecDeque::new(),
                scheduled: false,
                alive: true,
            }),
        })
    }

    pub(crate) fn push_data(&self, from: NodeId, msg: Arc<M>) -> CellPush {
        let wake = {
            let mut s = self.state.lock();
            if !s.alive {
                return CellPush::Dead;
            }
            if s.data.len() >= self.capacity {
                return CellPush::Full;
            }
            s.data.push_back((from, msg));
            !std::mem::replace(&mut s.scheduled, true)
        };
        if wake {
            let _ = self.wake.send(self.index);
        }
        CellPush::Delivered
    }

    /// Pushes an ordered batch under one lock and at most one wake;
    /// returns how many messages were shed on a full queue. A dead cell
    /// swallows the whole batch silently (overflow count 0).
    pub(crate) fn push_data_batch(&self, from: NodeId, msgs: Vec<Arc<M>>) -> u64 {
        let total = msgs.len();
        let (wake, overflowed) = {
            let mut s = self.state.lock();
            if !s.alive {
                return 0;
            }
            let room = self.capacity.saturating_sub(s.data.len());
            let take = room.min(total);
            for msg in msgs.into_iter().take(take) {
                s.data.push_back((from, msg));
            }
            let wake = take > 0 && !std::mem::replace(&mut s.scheduled, true);
            (wake, (total - take) as u64)
        };
        if wake {
            let _ = self.wake.send(self.index);
        }
        overflowed
    }

    /// Control always enqueues — the lane is unbounded and ignores
    /// `alive` so a queued `Stop` can still reach a poisoned node's
    /// worker for its reply.
    fn push_control(&self, ctl: ControlMsg<M>) {
        let wake = {
            let mut s = self.state.lock();
            s.control.push_back(ctl);
            !std::mem::replace(&mut s.scheduled, true)
        };
        if wake {
            let _ = self.wake.send(self.index);
        }
    }

    /// Re-opens a dead cell for the restart path, before the `Install`
    /// control message is queued — arriving data then sits behind the
    /// install, exactly like traffic reaching a booting process.
    fn revive(&self) {
        self.state.lock().alive = true;
    }

    /// Marks the cell dead and discards everything queued.
    pub(crate) fn clear_dead(&self) {
        let mut s = self.state.lock();
        s.alive = false;
        s.data.clear();
        s.control.clear();
    }

    /// Takes all queued control plus up to `max_data` data envelopes.
    /// The returned flag says whether data remains (the worker requeues
    /// itself); when nothing remains the cell becomes schedulable again.
    pub(crate) fn drain(&self, max_data: usize) -> Drained<M> {
        let mut s = self.state.lock();
        let ctls: Vec<ControlMsg<M>> = s.control.drain(..).collect();
        let take = s.data.len().min(max_data);
        let data: Vec<(NodeId, Arc<M>)> = s.data.drain(..take).collect();
        let more = !s.data.is_empty();
        if !more {
            s.scheduled = false;
        }
        (ctls, data, more)
    }
}

/// A worker's share of the deployment at start: `(node index, node)`.
type WorkerNodes<M> = Vec<(u32, Box<dyn RtNode<M>>)>;

struct NodeSpec<M> {
    name: String,
    node: Box<dyn RtNode<M>>,
    factory: Option<NodeFactory<M>>,
}

/// Decorates the base router into the transport nodes send through
/// (see [`RuntimeBuilder::wrap_transport`]).
type TransportWrap<M> = Box<dyn FnOnce(Arc<Router<M>>) -> Arc<dyn Transport<M>>>;

/// Builds a pooled deployment.
pub struct RuntimeBuilder<M> {
    nodes: Vec<NodeSpec<M>>,
    seed: u64,
    metrics: MetricsSink,
    inbox_capacity: usize,
    workers: Option<usize>,
    coalesce: bool,
    trace: Option<TraceBuffer>,
    wrap: Option<TransportWrap<M>>,
}

impl<M> std::fmt::Debug for RuntimeBuilder<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RuntimeBuilder").field("nodes", &self.nodes.len()).finish()
    }
}

impl<M: Send + Sync + Clone + std::fmt::Debug + 'static> RuntimeBuilder<M> {
    /// Starts a builder; `seed` feeds each node's RNG stream.
    pub fn new(seed: u64) -> Self {
        RuntimeBuilder {
            nodes: Vec::new(),
            seed,
            metrics: MetricsSink::new(),
            inbox_capacity: DEFAULT_INBOX_CAPACITY,
            workers: None,
            coalesce: true,
            trace: None,
            wrap: None,
        }
    }

    /// The deployment-wide metrics sink. All workers record the
    /// `ctx.metric_incr`/`ctx.metric_observe` effects here — the same
    /// named counters and latency histograms the simulator's `World`
    /// collects. Clone the handle to keep reading after `start`.
    pub fn metrics(&self) -> &MetricsSink {
        &self.metrics
    }

    /// Bounds every node's data queue at `capacity` messages (default
    /// 4096). Overflow is drop-newest and counted as
    /// `rt.inbox_overflow`; the control lane is exempt.
    pub fn inbox_capacity(&mut self, capacity: usize) -> &mut Self {
        self.inbox_capacity = capacity.max(1);
        self
    }

    /// Fixes the worker-pool size (default: the machine's available
    /// parallelism, clamped to the node count). Clamped to at least 1.
    pub fn workers(&mut self, n: usize) -> &mut Self {
        self.workers = Some(n.max(1));
        self
    }

    /// Enables or disables per-peer send coalescing (default on). With
    /// it off, every outbound message takes its own
    /// `Transport::send_shared` call — the A/B switch the batched-vs-
    /// unbatched equivalence tests flip; protocol outcomes must not
    /// depend on it.
    pub fn coalesce_sends(&mut self, on: bool) -> &mut Self {
        self.coalesce = on;
        self
    }

    /// Enables trace capture and returns the shared buffer. Without
    /// this, `Effect::Trace` stays dropped (tracing costs a mutex hit
    /// per note, so it is opt-in).
    pub fn capture_traces(&mut self) -> TraceBuffer {
        let buffer = self.trace.get_or_insert_with(TraceBuffer::new);
        buffer.clone()
    }

    /// Installs a transport decorator: `wrap` receives the base router
    /// at start and returns what nodes actually send through (e.g. a
    /// [`crate::chaos::ChaosRouter`]). Environment injection via
    /// [`Runtime::send_from_env`] keeps using the base router, so test
    /// drivers bypass injected faults.
    pub fn wrap_transport(
        &mut self,
        wrap: impl FnOnce(Arc<Router<M>>) -> Arc<dyn Transport<M>> + 'static,
    ) -> &mut Self {
        self.wrap = Some(Box::new(wrap));
        self
    }

    /// Adds a node; returns the id it will run under. Ids are assigned
    /// densely in add order, exactly like the simulator.
    pub fn add_node(&mut self, name: impl Into<String>, node: Box<dyn RtNode<M>>) -> NodeId {
        self.nodes.push(NodeSpec { name: name.into(), node, factory: None });
        NodeId::from_index(self.nodes.len() - 1)
    }

    /// Adds a restartable node: the factory builds the initial instance
    /// now and a fresh instance on every [`Runtime::restart`]. The
    /// factory must rebind any durable resources (storage directories)
    /// so the respawned node recovers from them.
    pub fn add_node_with_factory(
        &mut self,
        name: impl Into<String>,
        factory: NodeFactory<M>,
    ) -> NodeId {
        let node = factory();
        self.nodes.push(NodeSpec { name: name.into(), node, factory: Some(factory) });
        NodeId::from_index(self.nodes.len() - 1)
    }

    /// Spawns the worker pool and returns the running deployment.
    ///
    /// # Panics
    ///
    /// Panics if the OS refuses a worker thread; use
    /// [`RuntimeBuilder::try_start`] to handle that as an error.
    pub fn start(self) -> Runtime<M> {
        self.try_start().unwrap_or_else(|e| panic!("runtime start failed: {e}"))
    }

    /// Spawns the worker pool, surfacing a refused worker thread as a
    /// recoverable [`RuntimeError`] instead of a panic. Workers that
    /// did spawn are shut down cleanly before the error returns.
    pub fn try_start(self) -> Result<Runtime<M>, RuntimeError> {
        let router: Arc<Router<M>> = Router::new();
        router.set_metrics(self.metrics.clone());
        let transport: Arc<dyn Transport<M>> = match self.wrap {
            Some(wrap) => wrap(router.clone()),
            None => router.clone(),
        };
        let epoch = Instant::now();
        let nnodes = self.nodes.len();
        let nworkers = self
            .workers
            .unwrap_or_else(|| {
                std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
            })
            .clamp(1, nnodes.max(1));

        let mut wake_txs: Vec<Sender<u32>> = Vec::with_capacity(nworkers);
        let mut wake_rxs: Vec<Receiver<u32>> = Vec::with_capacity(nworkers);
        for _ in 0..nworkers {
            let (tx, rx) = unbounded();
            wake_txs.push(tx);
            wake_rxs.push(rx);
        }

        // Register all cells first so ids are stable before any worker
        // runs; node `i` belongs to worker `i % nworkers`.
        let mut cells: Vec<Arc<NodeCell<M>>> = Vec::with_capacity(nnodes);
        for i in 0..nnodes {
            let cell =
                NodeCell::new(i as u32, self.inbox_capacity, wake_txs[i % nworkers].clone());
            router.register_cell(cell.clone());
            cells.push(cell);
        }

        let mut names = Vec::with_capacity(nnodes);
        let mut factories = Vec::with_capacity(nnodes);
        let mut initial: Vec<WorkerNodes<M>> = (0..nworkers).map(|_| Vec::new()).collect();
        for (i, spec) in self.nodes.into_iter().enumerate() {
            names.push(spec.name);
            factories.push(spec.factory);
            initial[i % nworkers].push((i as u32, spec.node));
        }

        let mut pool = WorkerPool { wakes: wake_txs, handles: Vec::with_capacity(nworkers) };
        for (w, (wake_rx, nodes)) in wake_rxs.into_iter().zip(initial).enumerate() {
            let worker = Worker {
                seed: self.seed,
                coalesce: self.coalesce,
                wake_rx,
                cells: cells.clone(),
                slots: (0..nnodes).map(|_| WorkerSlot::Empty).collect(),
                epochs: vec![0; nnodes],
                wheel: TimerWheel::new(epoch),
                transport: transport.clone(),
                metrics: self.metrics.clone(),
                trace: self.trace.clone(),
                epoch_instant: epoch,
                outbox: Vec::new(),
                counters: Vec::new(),
            };
            match std::thread::Builder::new()
                .name(format!("rt-worker-{w}"))
                .spawn(move || worker.run(nodes))
            {
                Ok(handle) => pool.handles.push(handle),
                // Dropping `pool` here sends the shutdown sentinel to
                // every spawned worker and joins them, so a partial
                // start never leaks threads.
                Err(source) => return Err(RuntimeError::WorkerSpawn { worker: w, source }),
            }
        }

        Ok(Runtime {
            router,
            transport,
            cells,
            slots: (0..nnodes).map(|_| RtSlot::Running).collect(),
            names,
            factories,
            metrics: self.metrics,
            trace: self.trace,
            epoch,
            pool,
        })
    }
}

/// Owns the worker threads; dropping it (after [`Runtime::shutdown`]'s
/// orderly per-node stop, or on an abandoned runtime) sends each worker
/// the exit sentinel and joins it, so workers never outlive the
/// deployment.
struct WorkerPool {
    wakes: Vec<Sender<u32>>,
    handles: Vec<JoinHandle<()>>,
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        for wake in &self.wakes {
            let _ = wake.send(WAKE_SHUTDOWN);
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// A node as the owning worker sees it.
struct WorkerNode<M> {
    node: Box<dyn RtNode<M>>,
    rng: SimRng,
    next_timer: u64,
    cancelled: HashSet<u64>,
    up: bool,
    /// This incarnation's local-clock zero (`LocalTime` = elapsed).
    started: Instant,
}

impl<M> WorkerNode<M> {
    fn new(node: Box<dyn RtNode<M>>, deployment_seed: u64, idx: u32) -> Self {
        let seed = deployment_seed ^ (idx as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        WorkerNode {
            node,
            rng: SimRng::seed_from(seed),
            next_timer: 0,
            cancelled: HashSet::new(),
            up: true,
            started: Instant::now(),
        }
    }
}

enum WorkerSlot<M> {
    /// No instance under this id (not this worker's node, or killed).
    Empty,
    /// A live instance.
    Live(WorkerNode<M>),
    /// A handler panicked; the message is held for kill/stop replies.
    Poisoned(String),
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "node handler panicked (non-string payload)".into())
}

/// Runs one handler invocation under `catch_unwind` and folds its
/// effects into the step's outbox/counters/wheel. Returns the panic
/// message if the handler blew up.
#[allow(clippy::too_many_arguments)]
fn invoke<M, F>(
    wn: &mut WorkerNode<M>,
    idx: u32,
    tepoch: u32,
    outbox: &mut Vec<(NodeId, Vec<Arc<M>>)>,
    counters: &mut Vec<(&'static str, u64)>,
    wheel: &mut TimerWheel,
    metrics: &MetricsSink,
    trace: Option<&TraceBuffer>,
    epoch_instant: Instant,
    call: F,
) -> Result<(), String>
where
    M: Send + Sync + Clone + std::fmt::Debug + 'static,
    F: FnOnce(&mut dyn RtNode<M>, &mut Context<'_, M>),
{
    let id = NodeId::from_index(idx as usize);
    let mut effects: Vec<Effect<M>> = Vec::new();
    let local = LocalTime::from_nanos(wn.started.elapsed().as_nanos() as u64);
    {
        let node = &mut wn.node;
        let rng = &mut wn.rng;
        let next_timer = &mut wn.next_timer;
        let fx = &mut effects;
        if let Err(payload) = catch_unwind(AssertUnwindSafe(move || {
            let mut ctx = Context::new(id, local, fx, rng, next_timer);
            call(&mut **node, &mut ctx);
        })) {
            return Err(panic_message(payload));
        }
    }
    for effect in effects {
        match effect {
            // Sends coalesce per peer and flush once per step.
            Effect::Send { to, msg } => {
                let msg = Arc::new(msg);
                match outbox.iter_mut().find(|(peer, _)| *peer == to) {
                    Some((_, batch)) => batch.push(msg),
                    None => outbox.push((to, vec![msg])),
                }
            }
            Effect::SetTimer { id: timer_id, local_delay, tag } => {
                wheel.insert(TimerEntry {
                    due: Instant::now() + Duration::from_nanos(local_delay.as_nanos()),
                    node: idx,
                    epoch: tepoch,
                    id: timer_id.into_raw(),
                    tag,
                });
            }
            Effect::CancelTimer { id: timer_id } => {
                wn.cancelled.insert(timer_id.into_raw());
            }
            // Counter bumps batch per step; one sink lock per distinct
            // name instead of one per effect.
            Effect::MetricIncr { name } => match counters.iter_mut().find(|(n, _)| *n == name) {
                Some((_, delta)) => *delta += 1,
                None => counters.push((name, 1)),
            },
            Effect::MetricObserve { name, value } => metrics.observe(name, value),
            // With capture enabled, traces (audit notes) feed the live
            // oracle; otherwise they stay a sim-side convenience.
            Effect::Trace { text } => {
                if let Some(buffer) = trace {
                    let at = SimTime::from_nanos(epoch_instant.elapsed().as_nanos() as u64);
                    buffer.push(LiveTraceEntry { at, node: id, text });
                }
            }
        }
    }
    Ok(())
}

struct Worker<M> {
    seed: u64,
    coalesce: bool,
    wake_rx: Receiver<u32>,
    cells: Vec<Arc<NodeCell<M>>>,
    slots: Vec<WorkerSlot<M>>,
    epochs: Vec<u32>,
    wheel: TimerWheel,
    transport: Arc<dyn Transport<M>>,
    metrics: MetricsSink,
    trace: Option<TraceBuffer>,
    epoch_instant: Instant,
    /// Reusable per-step scratch: outbound sends grouped by peer.
    outbox: Vec<(NodeId, Vec<Arc<M>>)>,
    /// Reusable per-step scratch: aggregated counter bumps.
    counters: Vec<(&'static str, u64)>,
}

impl<M: Send + Sync + Clone + std::fmt::Debug + 'static> Worker<M> {
    fn run(mut self, initial: WorkerNodes<M>) {
        for (idx, node) in initial {
            self.boot(idx, node);
        }
        let mut run_queue: VecDeque<u32> = VecDeque::new();
        loop {
            // Drain wake tokens without blocking. The shutdown sentinel
            // only arrives after every node was stopped (or the whole
            // deployment was abandoned), so returning on it is safe.
            loop {
                match self.wake_rx.try_recv() {
                    Ok(WAKE_SHUTDOWN) => return,
                    Ok(idx) => run_queue.push_back(idx),
                    Err(_) => break,
                }
            }
            // Fire everything due, by absolute deadline.
            let now = Instant::now();
            while let Some(entry) = self.wheel.pop_due(now) {
                self.fire(entry);
            }
            // One bounded batch for one node, then re-check wakes and
            // timers — round-robin fairness under floods.
            if let Some(idx) = run_queue.pop_front() {
                if self.step(idx) {
                    run_queue.push_back(idx);
                }
                continue;
            }
            // Idle: park until the next timer deadline or a wake.
            let waited = match self.wheel.next_deadline() {
                Some(deadline) => self.wake_rx.recv_deadline(deadline),
                None => self.wake_rx.recv(),
            };
            match waited {
                Ok(WAKE_SHUTDOWN) => return,
                Ok(idx) => run_queue.push_back(idx),
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => return,
            }
        }
    }

    /// Installs the initial instance of a node and runs `on_start`.
    fn boot(&mut self, idx: u32, node: Box<dyn RtNode<M>>) {
        let mut outbox = std::mem::take(&mut self.outbox);
        let mut counters = std::mem::take(&mut self.counters);
        let slot = self.make_node(idx, node, &mut outbox, &mut counters);
        self.slots[idx as usize] = slot;
        self.flush(idx, &mut outbox, &mut counters);
        self.outbox = outbox;
        self.counters = counters;
    }

    /// Builds a [`WorkerNode`] and runs its `on_start` under the
    /// current timer epoch.
    fn make_node(
        &mut self,
        idx: u32,
        node: Box<dyn RtNode<M>>,
        outbox: &mut Vec<(NodeId, Vec<Arc<M>>)>,
        counters: &mut Vec<(&'static str, u64)>,
    ) -> WorkerSlot<M> {
        let mut wn = WorkerNode::new(node, self.seed, idx);
        match invoke(
            &mut wn,
            idx,
            self.epochs[idx as usize],
            outbox,
            counters,
            &mut self.wheel,
            &self.metrics,
            self.trace.as_ref(),
            self.epoch_instant,
            |node, ctx| node.on_start(ctx),
        ) {
            Ok(()) => WorkerSlot::Live(wn),
            Err(msg) => self.poison(idx as usize, msg),
        }
    }

    /// Marks a node's remains after a handler panic: the cell goes
    /// dead (traffic to it silently vanishes, like a crashed process),
    /// pending timers die via the epoch bump, and the message is held
    /// for the kill/stop reply.
    fn poison(&mut self, i: usize, msg: String) -> WorkerSlot<M> {
        self.cells[i].clear_dead();
        self.epochs[i] = self.epochs[i].wrapping_add(1);
        WorkerSlot::Poisoned(msg)
    }

    /// Fires one matured timer entry, discarding it if its epoch is
    /// stale (crash/kill/restart since arming) or it was cancelled.
    fn fire(&mut self, entry: TimerEntry) {
        let i = entry.node as usize;
        if self.epochs[i] != entry.epoch {
            return;
        }
        let mut slot = std::mem::replace(&mut self.slots[i], WorkerSlot::Empty);
        let mut outbox = std::mem::take(&mut self.outbox);
        let mut counters = std::mem::take(&mut self.counters);
        let mut poisoned = None;
        if let WorkerSlot::Live(wn) = &mut slot {
            if wn.up && !wn.cancelled.remove(&entry.id) {
                let drift = Instant::now().saturating_duration_since(entry.due);
                self.metrics.observe("rt.timer_drift_ns", drift.as_nanos() as f64);
                if let Err(msg) = invoke(
                    wn,
                    entry.node,
                    entry.epoch,
                    &mut outbox,
                    &mut counters,
                    &mut self.wheel,
                    &self.metrics,
                    self.trace.as_ref(),
                    self.epoch_instant,
                    |node, ctx| node.on_timer(ctx, entry.tag),
                ) {
                    poisoned = Some(msg);
                }
            }
        }
        if let Some(msg) = poisoned {
            slot = self.poison(i, msg);
        }
        self.slots[i] = slot;
        self.flush(entry.node, &mut outbox, &mut counters);
        self.outbox = outbox;
        self.counters = counters;
    }

    /// Drains one node's cell and steps it: control first (lifecycle
    /// can never be shed), then up to [`MAX_STEP_BATCH`] data
    /// envelopes, then one coalesced flush. Returns whether data
    /// remains queued (the caller requeues the node).
    fn step(&mut self, idx: u32) -> bool {
        let i = idx as usize;
        let (ctls, data, more) = self.cells[i].drain(MAX_STEP_BATCH);
        if ctls.is_empty() && data.is_empty() {
            return more;
        }
        let mut slot = std::mem::replace(&mut self.slots[i], WorkerSlot::Empty);
        let mut outbox = std::mem::take(&mut self.outbox);
        let mut counters = std::mem::take(&mut self.counters);
        // Set when Stop/Kill consumed the node: remaining queued work is
        // void and the slot has already been settled.
        let mut halted = false;

        for ctl in ctls {
            if halted {
                break;
            }
            match ctl {
                ControlMsg::Crash => {
                    let mut poisoned = None;
                    if let WorkerSlot::Live(wn) = &mut slot {
                        if wn.up {
                            wn.up = false;
                            // Pending timers die with the volatile state.
                            self.epochs[i] = self.epochs[i].wrapping_add(1);
                            wn.cancelled.clear();
                            if let Err(payload) =
                                catch_unwind(AssertUnwindSafe(|| wn.node.on_crash()))
                            {
                                poisoned = Some(panic_message(payload));
                            }
                        }
                    }
                    if let Some(msg) = poisoned {
                        slot = self.poison(i, msg);
                    }
                }
                ControlMsg::Recover => {
                    let mut poisoned = None;
                    if let WorkerSlot::Live(wn) = &mut slot {
                        if !wn.up {
                            wn.up = true;
                            if let Err(msg) = invoke(
                                wn,
                                idx,
                                self.epochs[i],
                                &mut outbox,
                                &mut counters,
                                &mut self.wheel,
                                &self.metrics,
                                self.trace.as_ref(),
                                self.epoch_instant,
                                |node, ctx| node.on_recover(ctx),
                            ) {
                                poisoned = Some(msg);
                            }
                        }
                    }
                    if let Some(msg) = poisoned {
                        slot = self.poison(i, msg);
                    }
                }
                ControlMsg::Stop(reply) | ControlMsg::Kill(reply)
                    if matches!(slot, WorkerSlot::Empty) =>
                {
                    let _ = reply.send(Err(format!("node {idx} has no live instance")));
                    halted = true;
                }
                ControlMsg::Stop(reply) => {
                    let result = match std::mem::replace(&mut slot, WorkerSlot::Empty) {
                        WorkerSlot::Live(wn) => Ok((NodeExit::Stopped, wn.node)),
                        WorkerSlot::Poisoned(msg) => Err(msg),
                        WorkerSlot::Empty => unreachable!("guarded above"),
                    };
                    self.cells[i].clear_dead();
                    self.epochs[i] = self.epochs[i].wrapping_add(1);
                    let _ = reply.send(result);
                    halted = true;
                }
                ControlMsg::Kill(reply) => {
                    let result = match std::mem::replace(&mut slot, WorkerSlot::Empty) {
                        WorkerSlot::Live(wn) => Ok((NodeExit::Killed, wn.node)),
                        WorkerSlot::Poisoned(msg) => Err(msg),
                        WorkerSlot::Empty => unreachable!("guarded above"),
                    };
                    self.cells[i].clear_dead();
                    self.epochs[i] = self.epochs[i].wrapping_add(1);
                    let _ = reply.send(result);
                    halted = true;
                }
                ControlMsg::Install(node) => {
                    // A fresh incarnation: old timers are dead, the
                    // local clock and RNG restart, `on_start` replays
                    // durable state.
                    self.epochs[i] = self.epochs[i].wrapping_add(1);
                    slot = self.make_node(idx, node, &mut outbox, &mut counters);
                }
            }
        }

        if !halted && !data.is_empty() {
            let mut poisoned = None;
            if let WorkerSlot::Live(wn) = &mut slot {
                if wn.up {
                    self.metrics.observe("rt.batch_size", data.len() as f64);
                    for (from, msg) in data {
                        // Point-to-point sends hold the only reference,
                        // so this unwraps without copying; broadcast
                        // recipients clone.
                        let msg = Arc::try_unwrap(msg).unwrap_or_else(|shared| (*shared).clone());
                        if let Err(msg) = invoke(
                            wn,
                            idx,
                            self.epochs[i],
                            &mut outbox,
                            &mut counters,
                            &mut self.wheel,
                            &self.metrics,
                            self.trace.as_ref(),
                            self.epoch_instant,
                            |node, ctx| node.on_message(ctx, from, msg),
                        ) {
                            poisoned = Some(msg);
                            break;
                        }
                    }
                }
                // A crashed (down) node hears nothing: the batch is
                // consumed and dropped, as the old runtime did.
            }
            if let Some(msg) = poisoned {
                slot = self.poison(i, msg);
            }
        }

        self.slots[i] = slot;
        self.flush(idx, &mut outbox, &mut counters);
        self.outbox = outbox;
        self.counters = counters;
        more && !halted
    }

    /// Ships the step's coalesced sends (one `send_batch` per peer) and
    /// aggregated counter bumps.
    fn flush(
        &mut self,
        from_idx: u32,
        outbox: &mut Vec<(NodeId, Vec<Arc<M>>)>,
        counters: &mut Vec<(&'static str, u64)>,
    ) {
        let from = NodeId::from_index(from_idx as usize);
        let mut batched = 0u64;
        for (to, msgs) in outbox.drain(..) {
            if self.coalesce && msgs.len() > 1 {
                batched += 1;
                self.transport.send_batch(from, to, msgs);
            } else {
                for msg in msgs {
                    self.transport.send_shared(from, to, msg);
                }
            }
        }
        if batched > 0 {
            counters.push(("rt.peer_batches", batched));
        }
        for (name, delta) in counters.drain(..) {
            self.metrics.add(name, delta);
        }
    }
}

/// Runtime-side view of one node slot.
enum RtSlot<M> {
    /// The node is (presumed) live on its worker.
    Running,
    /// The node was stopped or killed; the outcome is held for
    /// [`Runtime::shutdown`].
    Finished(NodeResult<M>),
}

/// A running pooled deployment.
pub struct Runtime<M> {
    router: Arc<Router<M>>,
    transport: Arc<dyn Transport<M>>,
    cells: Vec<Arc<NodeCell<M>>>,
    slots: Vec<RtSlot<M>>,
    names: Vec<String>,
    factories: Vec<Option<NodeFactory<M>>>,
    metrics: MetricsSink,
    trace: Option<TraceBuffer>,
    epoch: Instant,
    pool: WorkerPool,
}

impl<M> std::fmt::Debug for Runtime<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Runtime")
            .field("nodes", &self.cells.len())
            .field("workers", &self.pool.handles.len())
            .finish()
    }
}

impl<M: Send + Sync + Clone + std::fmt::Debug + 'static> Runtime<M> {
    /// The router (for installing link policies and reading traffic
    /// stats).
    pub fn router(&self) -> &Arc<Router<M>> {
        &self.router
    }

    /// The transport nodes send through (the router itself, or the
    /// decorator installed via [`RuntimeBuilder::wrap_transport`]).
    pub fn transport(&self) -> &Arc<dyn Transport<M>> {
        &self.transport
    }

    /// The deployment-wide metrics sink fed by every worker.
    /// `metrics().snapshot()` gives a point-in-time
    /// [`wanacl_sim::metrics::Metrics`] for the exporters in
    /// [`wanacl_sim::obs`].
    pub fn metrics(&self) -> &MetricsSink {
        &self.metrics
    }

    /// The live trace buffer, when capture was enabled at build time.
    pub fn trace(&self) -> Option<&TraceBuffer> {
        self.trace.as_ref()
    }

    /// Number of worker threads serving the deployment.
    pub fn workers(&self) -> usize {
        self.pool.handles.len()
    }

    /// The instant the deployment started — the zero point of every
    /// [`LiveTraceEntry::at`].
    pub fn epoch(&self) -> Instant {
        self.epoch
    }

    /// Injects a message as the environment. Goes through the base
    /// router, bypassing any chaos decorator: the test driver's control
    /// traffic is not subject to injected faults.
    pub fn send_from_env(&self, to: NodeId, msg: M) {
        self.router.send(NodeId::ENV, to, msg);
    }

    /// Crashes a node: it drops volatile state (`Node::on_crash`) and
    /// ignores all traffic until [`Runtime::recover`].
    pub fn crash(&self, node: NodeId) {
        if matches!(self.slots.get(node.index()), Some(RtSlot::Running)) {
            self.cells[node.index()].push_control(ControlMsg::Crash);
        }
    }

    /// Recovers a crashed node (`Node::on_recover`).
    pub fn recover(&self, node: NodeId) {
        if matches!(self.slots.get(node.index()), Some(RtSlot::Running)) {
            self.cells[node.index()].push_control(ControlMsg::Recover);
        }
    }

    /// Kills a node like a process death: no `on_crash` hook runs, its
    /// inbox goes dead (in-flight traffic to it is lost, as to a down
    /// host), and the stale node object is parked for
    /// [`Runtime::shutdown`]. Blocks until the owning worker confirms.
    /// Returns how the node ended, or the panic message if it was
    /// already down from a panic.
    pub fn kill(&mut self, node: NodeId) -> Result<NodeExit, String> {
        let index = node.index();
        let Some(slot) = self.slots.get_mut(index) else {
            return Err(format!("unknown node {index}"));
        };
        if matches!(slot, RtSlot::Finished(_)) {
            return Err(format!("node {index} ({}) is not running", self.names[index]));
        }
        let (reply_tx, reply_rx) = unbounded();
        self.cells[index].push_control(ControlMsg::Kill(reply_tx));
        match reply_rx.recv() {
            Ok(Ok((exit, stale))) => {
                self.metrics.incr("rt.node_killed");
                self.slots[index] = RtSlot::Finished(Ok((exit, stale)));
                Ok(exit)
            }
            Ok(Err(msg)) => {
                self.slots[index] = RtSlot::Finished(Err(msg.clone()));
                Err(msg)
            }
            Err(_) => Err(format!("worker serving node {index} is gone")),
        }
    }

    /// Respawns a killed node from its registered factory (see
    /// [`RuntimeBuilder::add_node_with_factory`]): a fresh node instance
    /// under the same id, with its inbox cell revived in place. Durable
    /// state comes back through whatever the factory rebinds — for
    /// managers, the `FileStorage` WAL + snapshot recovery in
    /// `on_start`.
    pub fn restart(&mut self, node: NodeId) -> Result<(), String> {
        let index = node.index();
        if !matches!(self.slots.get(index), Some(RtSlot::Finished(_))) {
            return Err(format!("node {index} is still running (kill it first)"));
        }
        let Some(Some(factory)) = self.factories.get(index) else {
            return Err(format!("node {index} has no restart factory"));
        };
        let fresh = factory();
        // Revive before queueing the install so traffic arriving from
        // now on sits behind `on_start`, like packets reaching a
        // booting process.
        self.cells[index].revive();
        self.cells[index].push_control(ControlMsg::Install(fresh));
        self.slots[index] = RtSlot::Running;
        self.metrics.incr("rt.node_restarted");
        Ok(())
    }

    /// Stops every running node and returns the per-node outcomes, in
    /// id order: the exit status and node object, or the panic message
    /// for a node whose handler panicked. A single crashed node never
    /// aborts the whole teardown. Worker threads exit after the last
    /// reply.
    pub fn shutdown(self) -> Vec<NodeResult<M>> {
        let mut pending: Vec<Option<Receiver<NodeResult<M>>>> = Vec::new();
        for (i, slot) in self.slots.iter().enumerate() {
            if matches!(slot, RtSlot::Running) {
                let (tx, rx) = unbounded();
                self.cells[i].push_control(ControlMsg::Stop(tx));
                pending.push(Some(rx));
            } else {
                pending.push(None);
            }
        }
        self.slots
            .into_iter()
            .zip(pending)
            .enumerate()
            .map(|(i, (slot, rx))| match slot {
                RtSlot::Finished(outcome) => outcome,
                RtSlot::Running => match rx.expect("running slots queued a stop").recv() {
                    Ok(outcome) => outcome,
                    Err(_) => Err(format!("worker serving node {i} is gone")),
                },
            })
            .collect()
        // `self.pool` drops here: the exit sentinel goes to each worker
        // and they are joined.
    }

    /// Convenience teardown for tests and examples that expect every
    /// node to come back: unwraps each outcome, panicking with the
    /// node's panic message otherwise.
    pub fn shutdown_nodes(self) -> Vec<Box<dyn RtNode<M>>> {
        self.shutdown()
            .into_iter()
            .enumerate()
            .map(|(i, outcome)| match outcome {
                Ok((_, node)) => node,
                Err(msg) => panic!("node {i} panicked: {msg}"),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::any::Any;

    #[derive(Debug, Default)]
    struct Counter {
        seen: u64,
        timer_fired: bool,
    }

    impl Node for Counter {
        type Msg = u64;
        fn on_start(&mut self, ctx: &mut Context<'_, u64>) {
            ctx.set_timer(wanacl_sim::time::SimDuration::from_millis(20), 7);
        }
        fn on_message(&mut self, ctx: &mut Context<'_, u64>, from: NodeId, msg: u64) {
            self.seen += 1;
            if from != NodeId::ENV && msg < 3 {
                ctx.send(from, msg + 1);
            }
        }
        fn on_timer(&mut self, _ctx: &mut Context<'_, u64>, tag: u64) {
            assert_eq!(tag, 7);
            self.timer_fired = true;
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[derive(Debug)]
    struct Opener {
        target: NodeId,
        replies: u64,
    }

    impl Node for Opener {
        type Msg = u64;
        fn on_message(&mut self, ctx: &mut Context<'_, u64>, from: NodeId, msg: u64) {
            if from == NodeId::ENV {
                ctx.send(self.target, 0);
            } else {
                self.replies += 1;
                if msg < 3 {
                    ctx.send(from, msg + 1);
                }
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn threads_exchange_messages_and_fire_timers() {
        let mut b: RuntimeBuilder<u64> = RuntimeBuilder::new(1);
        let counter_id = b.add_node("counter", Box::new(Counter::default()));
        let opener_id = b.add_node("opener", Box::new(Opener { target: counter_id, replies: 0 }));
        let rt = b.start();
        rt.send_from_env(opener_id, 0);
        std::thread::sleep(Duration::from_millis(200));
        let nodes = rt.shutdown_nodes();
        let counter = nodes[0].as_any().downcast_ref::<Counter>().expect("counter");
        let opener = nodes[1].as_any().downcast_ref::<Opener>().expect("opener");
        // Ping-pong 0->1->2->3 gives the counter messages 0 and 2.
        assert_eq!(counter.seen, 2);
        assert!(counter.timer_fired);
        assert_eq!(opener.replies, 2);
    }

    #[derive(Debug, Default)]
    struct Emitter;

    impl Node for Emitter {
        type Msg = u64;
        fn on_message(&mut self, ctx: &mut Context<'_, u64>, _from: NodeId, msg: u64) {
            ctx.metric_incr("test.msgs");
            ctx.metric_observe("test.value", msg as f64);
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn metric_effects_reach_the_shared_sink() {
        let mut b: RuntimeBuilder<u64> = RuntimeBuilder::new(3);
        let a = b.add_node("a", Box::new(Emitter));
        let c = b.add_node("b", Box::new(Emitter));
        let rt = b.start();
        rt.send_from_env(a, 10);
        rt.send_from_env(c, 30);
        let deadline = Instant::now() + Duration::from_secs(5);
        while rt.metrics().counter("test.msgs") < 2 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        let snap = rt.metrics().snapshot();
        rt.shutdown();
        assert_eq!(snap.counter("test.msgs"), 2);
        let summary = snap.histogram("test.value").and_then(|h| h.summary()).expect("samples");
        assert_eq!(summary.count, 2);
        assert_eq!(summary.sum, 40.0);
    }

    #[test]
    fn shutdown_returns_nodes_in_id_order() {
        let mut b: RuntimeBuilder<u64> = RuntimeBuilder::new(2);
        let a = b.add_node("a", Box::new(Counter::default()));
        let c = b.add_node("b", Box::new(Counter::default()));
        assert_eq!(a.index(), 0);
        assert_eq!(c.index(), 1);
        let rt = b.start();
        let nodes = rt.shutdown();
        assert_eq!(nodes.len(), 2);
        for (i, outcome) in nodes.into_iter().enumerate() {
            let (exit, _) = outcome.unwrap_or_else(|e| panic!("node {i}: {e}"));
            assert_eq!(exit, NodeExit::Stopped);
        }
    }

    /// On any message, dies the way a buggy node would.
    #[derive(Debug)]
    struct Panicker;

    impl Node for Panicker {
        type Msg = u64;
        fn on_message(&mut self, _ctx: &mut Context<'_, u64>, _from: NodeId, _msg: u64) {
            panic!("injected node bug");
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn one_panicking_node_is_reported_not_cascaded() {
        let mut b: RuntimeBuilder<u64> = RuntimeBuilder::new(5);
        // One worker: both nodes share it, proving a panic is contained
        // per node, not per thread.
        b.workers(1);
        let bad = b.add_node("bad", Box::new(Panicker));
        let good = b.add_node("good", Box::new(Counter::default()));
        let rt = b.start();
        rt.send_from_env(bad, 1);
        rt.send_from_env(good, 1);
        std::thread::sleep(Duration::from_millis(100));
        let outcomes = rt.shutdown();
        let Err(err) = outcomes[bad.index()].as_ref() else {
            panic!("panic must surface as Err");
        };
        assert!(err.contains("injected node bug"), "{err}");
        let (exit, node) = outcomes[good.index()].as_ref().expect("good node survives");
        assert_eq!(*exit, NodeExit::Stopped);
        assert_eq!(node.as_any().downcast_ref::<Counter>().expect("counter").seen, 1);
    }

    #[test]
    fn kill_then_restart_respawns_from_the_factory() {
        let mut b: RuntimeBuilder<u64> = RuntimeBuilder::new(9);
        let a = b.add_node_with_factory("replayable", Arc::new(|| Box::new(Counter::default())));
        let mut rt = b.start();
        rt.send_from_env(a, 1);
        std::thread::sleep(Duration::from_millis(50));

        assert_eq!(rt.kill(a), Ok(NodeExit::Killed));
        assert!(rt.kill(a).is_err(), "double kill is an error");
        // Traffic to a killed node vanishes silently, like a down host.
        rt.send_from_env(a, 2);
        std::thread::sleep(Duration::from_millis(20));

        rt.restart(a).expect("factory registered");
        rt.send_from_env(a, 3);
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(rt.metrics().counter("rt.node_killed"), 1);
        assert_eq!(rt.metrics().counter("rt.node_restarted"), 1);

        let outcomes = rt.shutdown();
        let (exit, node) = outcomes[a.index()].as_ref().expect("restarted node");
        assert_eq!(*exit, NodeExit::Stopped);
        // The fresh instance saw only the post-restart message.
        assert_eq!(node.as_any().downcast_ref::<Counter>().expect("counter").seen, 1);
    }

    #[test]
    fn restart_without_factory_is_an_error() {
        let mut b: RuntimeBuilder<u64> = RuntimeBuilder::new(9);
        let a = b.add_node("fixed", Box::new(Counter::default()));
        let mut rt = b.start();
        rt.kill(a).expect("kill");
        let err = rt.restart(a).expect_err("no factory");
        assert!(err.contains("factory"), "{err}");
        rt.shutdown();
    }

    #[derive(Debug)]
    struct Tracer;

    impl Node for Tracer {
        type Msg = u64;
        fn on_message(&mut self, ctx: &mut Context<'_, u64>, _from: NodeId, msg: u64) {
            ctx.trace(format!("audit=test msg={msg}"));
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn trace_capture_collects_notes_with_a_shared_clock() {
        let mut b: RuntimeBuilder<u64> = RuntimeBuilder::new(11);
        let buffer = b.capture_traces();
        let a = b.add_node("tracer", Box::new(Tracer));
        let rt = b.start();
        rt.send_from_env(a, 42);
        let deadline = Instant::now() + Duration::from_secs(5);
        while buffer.is_empty() && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        rt.shutdown();
        let entries = buffer.drain_sorted();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].node, a);
        assert_eq!(entries[0].text, "audit=test msg=42");
        assert!(buffer.is_empty(), "drain takes everything");
    }

    #[test]
    fn timer_firings_record_bounded_drift() {
        let mut b: RuntimeBuilder<u64> = RuntimeBuilder::new(13);
        b.add_node("ticker", Box::new(Counter::default()));
        let rt = b.start();
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let snap = rt.metrics().snapshot();
            if snap.histogram("rt.timer_drift_ns").and_then(|h| h.summary()).is_some() {
                break;
            }
            assert!(Instant::now() < deadline, "timer never fired");
            std::thread::sleep(Duration::from_millis(5));
        }
        let snap = rt.metrics().snapshot();
        rt.shutdown();
        let drift =
            snap.histogram("rt.timer_drift_ns").and_then(|h| h.summary()).expect("drift sample");
        assert!(drift.count >= 1);
        // Absolute-deadline firing keeps drift far below the old
        // stale-`recv_timeout` loop's worst case; 100ms is generous
        // slack for a loaded CI machine.
        assert!(drift.max < 100_000_000.0, "drift {:?}ns", drift.max);
    }

    /// On one trigger message, sprays `n` messages at one peer — the
    /// coalescing path must batch them into a single flush.
    #[derive(Debug)]
    struct Sprayer {
        target: NodeId,
        n: u64,
    }

    impl Node for Sprayer {
        type Msg = u64;
        fn on_message(&mut self, ctx: &mut Context<'_, u64>, from: NodeId, _msg: u64) {
            if from == NodeId::ENV {
                for i in 0..self.n {
                    ctx.send(self.target, i);
                }
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn per_peer_sends_coalesce_into_one_batch() {
        let mut b: RuntimeBuilder<u64> = RuntimeBuilder::new(17);
        let sink_id_placeholder = NodeId::from_index(1);
        let sprayer = b.add_node("sprayer", Box::new(Sprayer { target: sink_id_placeholder, n: 32 }));
        let sink = b.add_node("sink", Box::new(Counter::default()));
        assert_eq!(sink, sink_id_placeholder);
        let rt = b.start();
        rt.send_from_env(sprayer, 0);
        let deadline = Instant::now() + Duration::from_secs(5);
        while rt.metrics().counter("rt.peer_batches") < 1 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        std::thread::sleep(Duration::from_millis(50));
        assert!(rt.metrics().counter("rt.peer_batches") >= 1, "spray must coalesce");
        let nodes = rt.shutdown_nodes();
        let counter = nodes[sink.index()].as_any().downcast_ref::<Counter>().expect("sink");
        assert_eq!(counter.seen, 32, "coalescing must not lose or reorder messages");
    }

    #[test]
    fn worker_count_is_clamped_and_reported() {
        let mut b: RuntimeBuilder<u64> = RuntimeBuilder::new(19);
        b.workers(64);
        for i in 0..3 {
            b.add_node(format!("n{i}"), Box::new(Counter::default()));
        }
        let rt = b.start();
        assert_eq!(rt.workers(), 3, "64 workers clamp to the 3 nodes");
        rt.shutdown();
    }

    #[test]
    fn runtime_error_is_reportable() {
        let err = RuntimeError::WorkerSpawn {
            worker: 2,
            source: std::io::Error::new(std::io::ErrorKind::OutOfMemory, "no threads left"),
        };
        let text = err.to_string();
        assert!(text.contains("worker 2"), "{text}");
        assert!(text.contains("no threads left"), "{text}");
        assert!(std::error::Error::source(&err).is_some());
    }
}
