//! The node-per-thread runtime.

use std::collections::{BinaryHeap, HashSet};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender};

use wanacl_sim::clock::LocalTime;
use wanacl_sim::node::{Context, Effect, Node, NodeId};
use wanacl_sim::obs::MetricsSink;
use wanacl_sim::rng::SimRng;
use wanacl_sim::time::SimTime;

use crate::router::{Envelope, Router, Transport};

/// Default bound on every node inbox. Large enough that a healthy node
/// never sees it; small enough that a wedged node sheds load instead of
/// growing a queue without limit.
const DEFAULT_INBOX_CAPACITY: usize = 4096;

/// A protocol node that can run on a thread.
pub trait RtNode<M>: Node<Msg = M> + Send {}
impl<M, T: Node<Msg = M> + Send> RtNode<M> for T {}

/// Builds a fresh instance of a node for [`Runtime::restart`] — e.g. a
/// `ManagerNode` reopening its `FileStorage` directory so `on_start`
/// replays the WAL + snapshot, exactly what a respawned process does.
pub type NodeFactory<M> = Arc<dyn Fn() -> Box<dyn RtNode<M>> + Send + Sync>;

/// How a node thread ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeExit {
    /// Clean stop via [`Runtime::shutdown`].
    Stopped,
    /// Torn down by [`Runtime::kill`] (process-death model: no
    /// `on_crash` hook ran).
    Killed,
    /// The inbox disconnected while the node was running — the runtime
    /// side dropped its sender without a `Stop`, i.e. the deployment
    /// wedged rather than shut down. Counted as `rt.inbox_disconnected`.
    Disconnected,
}

/// Per-node outcome of [`Runtime::shutdown`]: how the thread ended plus
/// the node object for inspection, or the panic message if the thread
/// panicked. One panicking node is a reportable result, not a cascade.
pub type NodeResult<M> = Result<(NodeExit, Box<dyn RtNode<M>>), String>;

/// One captured `Effect::Trace` from a live node, stamped against the
/// deployment-wide epoch so events from different threads share a clock.
#[derive(Debug, Clone, PartialEq)]
pub struct LiveTraceEntry {
    /// Wall-clock time since [`Runtime`] start, as the sim time type the
    /// oracle consumes.
    pub at: SimTime,
    /// The emitting node.
    pub node: NodeId,
    /// The trace text (e.g. `audit=...` notes).
    pub text: String,
}

/// A shared, thread-safe buffer of live trace events.
///
/// Enabled via [`RuntimeBuilder::capture_traces`]; node threads append
/// every `ctx.trace(..)` effect, and a chaos driver drains the buffer to
/// feed the invariant oracle the same `Note` stream the simulator
/// produces. Poison-tolerant like the metrics sink: a panicking node
/// must not take the evidence down with it.
#[derive(Debug, Clone, Default)]
pub struct TraceBuffer {
    entries: Arc<Mutex<Vec<LiveTraceEntry>>>,
}

impl TraceBuffer {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        TraceBuffer::default()
    }

    fn push(&self, entry: LiveTraceEntry) {
        self.entries.lock().unwrap_or_else(|e| e.into_inner()).push(entry);
    }

    /// Number of captured entries.
    pub fn len(&self) -> usize {
        self.entries.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Whether nothing has been captured.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Takes all captured entries, sorted by timestamp (stable, so
    /// same-instant events keep arrival order).
    pub fn drain_sorted(&self) -> Vec<LiveTraceEntry> {
        let mut entries =
            std::mem::take(&mut *self.entries.lock().unwrap_or_else(|e| e.into_inner()));
        entries.sort_by_key(|e| e.at);
        entries
    }
}

#[derive(Debug, PartialEq, Eq)]
struct DueTimer {
    due: Instant,
    id: u64,
    tag: u64,
}

impl Ord for DueTimer {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first.
        other.due.cmp(&self.due).then(other.id.cmp(&self.id))
    }
}
impl PartialOrd for DueTimer {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

struct NodeSpec<M> {
    name: String,
    node: Box<dyn RtNode<M>>,
    factory: Option<NodeFactory<M>>,
}

/// Decorates the base router into the transport node threads send
/// through (see [`RuntimeBuilder::wrap_transport`]).
type TransportWrap<M> = Box<dyn FnOnce(Arc<Router<M>>) -> Arc<dyn Transport<M>>>;

/// Builds a threaded deployment.
pub struct RuntimeBuilder<M> {
    nodes: Vec<NodeSpec<M>>,
    seed: u64,
    metrics: MetricsSink,
    inbox_capacity: usize,
    trace: Option<TraceBuffer>,
    wrap: Option<TransportWrap<M>>,
}

impl<M> std::fmt::Debug for RuntimeBuilder<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RuntimeBuilder").field("nodes", &self.nodes.len()).finish()
    }
}

impl<M: Send + Sync + Clone + std::fmt::Debug + 'static> RuntimeBuilder<M> {
    /// Starts a builder; `seed` feeds each node's RNG stream.
    pub fn new(seed: u64) -> Self {
        RuntimeBuilder {
            nodes: Vec::new(),
            seed,
            metrics: MetricsSink::new(),
            inbox_capacity: DEFAULT_INBOX_CAPACITY,
            trace: None,
            wrap: None,
        }
    }

    /// The deployment-wide metrics sink. All node threads record the
    /// `ctx.metric_incr`/`ctx.metric_observe` effects here — the same
    /// named counters and latency histograms the simulator's `World`
    /// collects. Clone the handle to keep reading after `start`.
    pub fn metrics(&self) -> &MetricsSink {
        &self.metrics
    }

    /// Bounds every node inbox at `capacity` queued messages (default
    /// 4096). Overflow is drop-newest and counted as
    /// `rt.inbox_overflow`; lifecycle envelopes are exempt.
    pub fn inbox_capacity(&mut self, capacity: usize) -> &mut Self {
        self.inbox_capacity = capacity.max(1);
        self
    }

    /// Enables trace capture and returns the shared buffer. Without
    /// this, `Effect::Trace` stays dropped (tracing costs a mutex hit
    /// per note, so it is opt-in).
    pub fn capture_traces(&mut self) -> TraceBuffer {
        let buffer = self.trace.get_or_insert_with(TraceBuffer::new);
        buffer.clone()
    }

    /// Installs a transport decorator: `wrap` receives the base router
    /// at `start` and returns what node threads actually send through
    /// (e.g. a [`crate::chaos::ChaosRouter`]). Environment injection via
    /// [`Runtime::send_from_env`] keeps using the base router, so test
    /// drivers bypass injected faults.
    pub fn wrap_transport(
        &mut self,
        wrap: impl FnOnce(Arc<Router<M>>) -> Arc<dyn Transport<M>> + 'static,
    ) -> &mut Self {
        self.wrap = Some(Box::new(wrap));
        self
    }

    /// Adds a node; returns the id it will run under. Ids are assigned
    /// densely in add order, exactly like the simulator.
    pub fn add_node(&mut self, name: impl Into<String>, node: Box<dyn RtNode<M>>) -> NodeId {
        self.nodes.push(NodeSpec { name: name.into(), node, factory: None });
        NodeId::from_index(self.nodes.len() - 1)
    }

    /// Adds a restartable node: the factory builds the initial instance
    /// now and a fresh instance on every [`Runtime::restart`]. The
    /// factory must rebind any durable resources (storage directories)
    /// so the respawned node recovers from them.
    pub fn add_node_with_factory(
        &mut self,
        name: impl Into<String>,
        factory: NodeFactory<M>,
    ) -> NodeId {
        let node = factory();
        self.nodes.push(NodeSpec { name: name.into(), node, factory: Some(factory) });
        NodeId::from_index(self.nodes.len() - 1)
    }

    /// Spawns all node threads and returns the running deployment.
    pub fn start(self) -> Runtime<M> {
        let router: Arc<Router<M>> = Router::new();
        router.set_metrics(self.metrics.clone());
        let transport: Arc<dyn Transport<M>> = match self.wrap {
            Some(wrap) => wrap(router.clone()),
            None => router.clone(),
        };
        let epoch = Instant::now();
        let mut senders: Vec<Sender<Envelope<M>>> = Vec::new();
        // Register all inboxes first so ids are stable before any thread
        // runs.
        let mut inboxes = Vec::new();
        for _ in &self.nodes {
            let (tx, rx) = bounded(self.inbox_capacity);
            let id = router.register(tx.clone());
            senders.push(tx);
            inboxes.push((id, rx));
        }
        let mut slots = Vec::new();
        let mut names = Vec::new();
        let mut factories = Vec::new();
        for (spec, (id, rx)) in self.nodes.into_iter().zip(inboxes) {
            names.push(spec.name.clone());
            factories.push(spec.factory);
            slots.push(Slot::Running(spawn_node_thread(
                spec.name,
                spec.node,
                id,
                rx,
                &transport,
                self.seed,
                &self.metrics,
                self.trace.as_ref(),
                epoch,
            )));
        }
        Runtime {
            router,
            transport,
            senders,
            slots,
            names,
            factories,
            seed: self.seed,
            inbox_capacity: self.inbox_capacity,
            metrics: self.metrics,
            trace: self.trace,
            epoch,
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn spawn_node_thread<M: Send + Sync + Clone + std::fmt::Debug + 'static>(
    name: String,
    mut node: Box<dyn RtNode<M>>,
    id: NodeId,
    rx: Receiver<Envelope<M>>,
    transport: &Arc<dyn Transport<M>>,
    deployment_seed: u64,
    metrics: &MetricsSink,
    trace: Option<&TraceBuffer>,
    epoch: Instant,
) -> JoinHandle<(NodeExit, Box<dyn RtNode<M>>)> {
    let transport = Arc::clone(transport);
    let seed = deployment_seed ^ (id.index() as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    let metrics = metrics.clone();
    let trace = trace.cloned();
    std::thread::Builder::new()
        .name(name)
        .spawn(move || {
            let exit =
                run_node_thread(&mut *node, id, rx, transport, seed, &metrics, trace.as_ref(), epoch);
            (exit, node)
        })
        .expect("thread spawn")
}

#[allow(clippy::too_many_arguments)]
fn run_node_thread<M: Send + Sync + Clone + std::fmt::Debug + 'static>(
    node: &mut dyn RtNode<M>,
    id: NodeId,
    rx: Receiver<Envelope<M>>,
    transport: Arc<dyn Transport<M>>,
    seed: u64,
    metrics: &MetricsSink,
    trace: Option<&TraceBuffer>,
    epoch: Instant,
) -> NodeExit {
    let start = Instant::now();
    let mut rng = SimRng::seed_from(seed);
    let mut next_timer: u64 = 0;
    let mut timers: BinaryHeap<DueTimer> = BinaryHeap::new();
    let mut cancelled: HashSet<u64> = HashSet::new();
    let mut up = true;

    let local_now = |start: Instant| LocalTime::from_nanos(start.elapsed().as_nanos() as u64);

    // on_start.
    let mut effects = Vec::new();
    {
        let mut ctx = Context::new(id, local_now(start), &mut effects, &mut rng, &mut next_timer);
        node.on_start(&mut ctx);
    }
    apply_effects(id, effects, &transport, &mut timers, &mut cancelled, metrics, trace, epoch);

    loop {
        // Fire due timers (only while up; a crash clears them anyway).
        let now = Instant::now();
        while up && timers.peek().is_some_and(|t| t.due <= now) {
            let t = timers.pop().expect("peeked");
            if cancelled.remove(&t.id) {
                continue;
            }
            let mut effects = Vec::new();
            {
                let mut ctx =
                    Context::new(id, local_now(start), &mut effects, &mut rng, &mut next_timer);
                node.on_timer(&mut ctx, t.tag);
            }
            apply_effects(id, effects, &transport, &mut timers, &mut cancelled, metrics, trace, epoch);
        }
        // Wait for the next message or timer deadline.
        let wait = if up {
            timers
                .peek()
                .map(|t| t.due.saturating_duration_since(Instant::now()))
                .unwrap_or(Duration::from_millis(50))
        } else {
            Duration::from_millis(50)
        };
        match rx.recv_timeout(wait) {
            Ok(Envelope::Msg { from, msg }) => {
                if !up {
                    continue; // a crashed node hears nothing
                }
                // Point-to-point sends hold the only reference, so this
                // unwraps without copying; broadcast recipients clone.
                let msg = Arc::try_unwrap(msg).unwrap_or_else(|shared| (*shared).clone());
                let mut effects = Vec::new();
                {
                    let mut ctx =
                        Context::new(id, local_now(start), &mut effects, &mut rng, &mut next_timer);
                    node.on_message(&mut ctx, from, msg);
                }
                apply_effects(
                    id,
                    effects,
                    &transport,
                    &mut timers,
                    &mut cancelled,
                    metrics,
                    trace,
                    epoch,
                );
            }
            Ok(Envelope::Crash) => {
                if up {
                    up = false;
                    timers.clear();
                    cancelled.clear();
                    node.on_crash();
                }
            }
            Ok(Envelope::Recover) => {
                if !up {
                    up = true;
                    let mut effects = Vec::new();
                    {
                        let mut ctx = Context::new(
                            id,
                            local_now(start),
                            &mut effects,
                            &mut rng,
                            &mut next_timer,
                        );
                        node.on_recover(&mut ctx);
                    }
                    apply_effects(
                        id,
                        effects,
                        &transport,
                        &mut timers,
                        &mut cancelled,
                        metrics,
                        trace,
                        epoch,
                    );
                }
            }
            Ok(Envelope::Stop) => return NodeExit::Stopped,
            // Process-death model: no on_crash hook, the thread just
            // dies. Unsynced storage buffers die with the node object.
            Ok(Envelope::Kill) => return NodeExit::Killed,
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => {
                // Nobody can ever reach this node again and nobody told
                // it to stop: that is a wedged deployment, not a clean
                // exit — count it so chaos runs can tell the two apart.
                metrics.incr("rt.inbox_disconnected");
                return NodeExit::Disconnected;
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn apply_effects<M: Send + Sync + Clone + std::fmt::Debug + 'static>(
    id: NodeId,
    effects: Vec<Effect<M>>,
    transport: &Arc<dyn Transport<M>>,
    timers: &mut BinaryHeap<DueTimer>,
    cancelled: &mut HashSet<u64>,
    metrics: &MetricsSink,
    trace: Option<&TraceBuffer>,
    epoch: Instant,
) {
    for effect in effects {
        match effect {
            Effect::Send { to, msg } => transport.send(id, to, msg),
            Effect::SetTimer { id: timer_id, local_delay, tag } => {
                let due = Instant::now() + Duration::from_nanos(local_delay.as_nanos());
                timers.push(DueTimer { due, id: timer_id.into_raw(), tag });
            }
            Effect::CancelTimer { id: timer_id } => {
                cancelled.insert(timer_id.into_raw());
            }
            // Metric effects land in the shared deployment sink, so the
            // live runtime reports the same named counters/latencies as
            // the simulator's World.
            Effect::MetricIncr { name } => metrics.incr(name),
            Effect::MetricObserve { name, value } => metrics.observe(name, value),
            // With capture enabled, traces (audit notes) feed the live
            // oracle; otherwise they stay a sim-side convenience.
            Effect::Trace { text } => {
                if let Some(buffer) = trace {
                    let at = SimTime::from_nanos(epoch.elapsed().as_nanos() as u64);
                    buffer.push(LiveTraceEntry { at, node: id, text });
                }
            }
        }
    }
}

/// Where one node slot currently stands.
enum Slot<M> {
    /// The thread is (presumed) running.
    Running(JoinHandle<(NodeExit, Box<dyn RtNode<M>>)>),
    /// The thread was joined (after a kill); the outcome is held for
    /// [`Runtime::shutdown`].
    Finished(NodeResult<M>),
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "node thread panicked (non-string payload)".into())
}

/// A running threaded deployment.
pub struct Runtime<M> {
    router: Arc<Router<M>>,
    transport: Arc<dyn Transport<M>>,
    senders: Vec<Sender<Envelope<M>>>,
    slots: Vec<Slot<M>>,
    names: Vec<String>,
    factories: Vec<Option<NodeFactory<M>>>,
    seed: u64,
    inbox_capacity: usize,
    metrics: MetricsSink,
    trace: Option<TraceBuffer>,
    epoch: Instant,
}

impl<M> std::fmt::Debug for Runtime<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Runtime").field("nodes", &self.senders.len()).finish()
    }
}

impl<M: Send + Sync + Clone + std::fmt::Debug + 'static> Runtime<M> {
    /// The router (for installing link policies and reading traffic
    /// stats).
    pub fn router(&self) -> &Arc<Router<M>> {
        &self.router
    }

    /// The transport node threads send through (the router itself, or
    /// the decorator installed via [`RuntimeBuilder::wrap_transport`]).
    pub fn transport(&self) -> &Arc<dyn Transport<M>> {
        &self.transport
    }

    /// The deployment-wide metrics sink fed by every node thread.
    /// `metrics().snapshot()` gives a point-in-time [`wanacl_sim::metrics::Metrics`]
    /// for the exporters in [`wanacl_sim::obs`].
    pub fn metrics(&self) -> &MetricsSink {
        &self.metrics
    }

    /// The live trace buffer, when capture was enabled at build time.
    pub fn trace(&self) -> Option<&TraceBuffer> {
        self.trace.as_ref()
    }

    /// The instant the deployment started — the zero point of every
    /// [`LiveTraceEntry::at`].
    pub fn epoch(&self) -> Instant {
        self.epoch
    }

    /// Injects a message as the environment. Goes through the base
    /// router, bypassing any chaos decorator: the test driver's control
    /// traffic is not subject to injected faults.
    pub fn send_from_env(&self, to: NodeId, msg: M) {
        self.router.send(NodeId::ENV, to, msg);
    }

    /// Crashes a node: it drops volatile state (`Node::on_crash`) and
    /// ignores all traffic until [`Runtime::recover`].
    pub fn crash(&self, node: NodeId) {
        if let Some(tx) = self.senders.get(node.index()) {
            let _ = tx.send(Envelope::Crash);
        }
    }

    /// Recovers a crashed node (`Node::on_recover`).
    pub fn recover(&self, node: NodeId) {
        if let Some(tx) = self.senders.get(node.index()) {
            let _ = tx.send(Envelope::Recover);
        }
    }

    /// Kills a node like a process death: the thread exits without any
    /// `on_crash` hook, its inbox closes (so in-flight traffic to it is
    /// lost, as to a down host), and the stale node object is parked
    /// for [`Runtime::shutdown`]. Returns how the thread ended, or the
    /// panic message if it was already down from a panic.
    pub fn kill(&mut self, node: NodeId) -> Result<NodeExit, String> {
        let index = node.index();
        let Some(slot) = self.slots.get_mut(index) else {
            return Err(format!("unknown node {index}"));
        };
        if matches!(slot, Slot::Finished(_)) {
            return Err(format!("node {index} is not running"));
        }
        if let Some(tx) = self.senders.get(index) {
            // Control lane: enqueues even past a full inbox. Fails only
            // if the thread is already gone, which join handles below.
            let _ = tx.send(Envelope::Kill);
        }
        let Slot::Running(handle) =
            std::mem::replace(slot, Slot::Finished(Err("killed (slot taken)".into())))
        else {
            unreachable!("checked above");
        };
        let outcome = match handle.join() {
            Ok((exit, node)) => {
                self.metrics.incr("rt.node_killed");
                (Ok(exit), Slot::Finished(Ok((exit, node))))
            }
            Err(payload) => {
                let msg = panic_message(payload);
                (Err(msg.clone()), Slot::Finished(Err(msg)))
            }
        };
        self.slots[index] = outcome.1;
        outcome.0
    }

    /// Respawns a killed node from its registered factory (see
    /// [`RuntimeBuilder::add_node_with_factory`]): a fresh node instance
    /// on a fresh thread under the same id, with a fresh inbox swapped
    /// into the router. Durable state comes back through whatever the
    /// factory rebinds — for managers, the `FileStorage` WAL + snapshot
    /// recovery in `on_start`.
    pub fn restart(&mut self, node: NodeId) -> Result<(), String> {
        let index = node.index();
        if !matches!(self.slots.get(index), Some(Slot::Finished(_))) {
            return Err(format!("node {index} is still running (kill it first)"));
        }
        let Some(Some(factory)) = self.factories.get(index) else {
            return Err(format!("node {index} has no restart factory"));
        };
        let fresh = factory();
        let (tx, rx) = bounded(self.inbox_capacity);
        self.router.replace(node, tx.clone());
        self.senders[index] = tx;
        self.slots[index] = Slot::Running(spawn_node_thread(
            self.names[index].clone(),
            fresh,
            node,
            rx,
            &self.transport,
            self.seed,
            &self.metrics,
            self.trace.as_ref(),
            self.epoch,
        ));
        self.metrics.incr("rt.node_restarted");
        Ok(())
    }

    /// Stops every running node thread and returns the per-node
    /// outcomes, in id order: the exit status and node object, or the
    /// panic message for a thread that panicked. A single crashed node
    /// no longer aborts the whole teardown.
    pub fn shutdown(self) -> Vec<NodeResult<M>> {
        for (slot, tx) in self.slots.iter().zip(&self.senders) {
            if matches!(slot, Slot::Running(_)) {
                let _ = tx.send(Envelope::Stop);
            }
        }
        self.slots
            .into_iter()
            .map(|slot| match slot {
                Slot::Running(handle) => match handle.join() {
                    Ok((exit, node)) => Ok((exit, node)),
                    Err(payload) => Err(panic_message(payload)),
                },
                Slot::Finished(outcome) => outcome,
            })
            .collect()
    }

    /// Convenience teardown for tests and examples that expect every
    /// node to come back: unwraps each outcome, panicking with the
    /// node's panic message otherwise.
    pub fn shutdown_nodes(self) -> Vec<Box<dyn RtNode<M>>> {
        self.shutdown()
            .into_iter()
            .enumerate()
            .map(|(i, outcome)| match outcome {
                Ok((_, node)) => node,
                Err(msg) => panic!("node {i} panicked: {msg}"),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::any::Any;

    #[derive(Debug, Default)]
    struct Counter {
        seen: u64,
        timer_fired: bool,
    }

    impl Node for Counter {
        type Msg = u64;
        fn on_start(&mut self, ctx: &mut Context<'_, u64>) {
            ctx.set_timer(wanacl_sim::time::SimDuration::from_millis(20), 7);
        }
        fn on_message(&mut self, ctx: &mut Context<'_, u64>, from: NodeId, msg: u64) {
            self.seen += 1;
            if from != NodeId::ENV && msg < 3 {
                ctx.send(from, msg + 1);
            }
        }
        fn on_timer(&mut self, _ctx: &mut Context<'_, u64>, tag: u64) {
            assert_eq!(tag, 7);
            self.timer_fired = true;
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[derive(Debug)]
    struct Opener {
        target: NodeId,
        replies: u64,
    }

    impl Node for Opener {
        type Msg = u64;
        fn on_message(&mut self, ctx: &mut Context<'_, u64>, from: NodeId, msg: u64) {
            if from == NodeId::ENV {
                ctx.send(self.target, 0);
            } else {
                self.replies += 1;
                if msg < 3 {
                    ctx.send(from, msg + 1);
                }
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn threads_exchange_messages_and_fire_timers() {
        let mut b: RuntimeBuilder<u64> = RuntimeBuilder::new(1);
        let counter_id = b.add_node("counter", Box::new(Counter::default()));
        let opener_id = b.add_node("opener", Box::new(Opener { target: counter_id, replies: 0 }));
        let rt = b.start();
        rt.send_from_env(opener_id, 0);
        std::thread::sleep(Duration::from_millis(200));
        let nodes = rt.shutdown_nodes();
        let counter = nodes[0].as_any().downcast_ref::<Counter>().expect("counter");
        let opener = nodes[1].as_any().downcast_ref::<Opener>().expect("opener");
        // Ping-pong 0->1->2->3 gives the counter messages 0 and 2.
        assert_eq!(counter.seen, 2);
        assert!(counter.timer_fired);
        assert_eq!(opener.replies, 2);
    }

    #[derive(Debug, Default)]
    struct Emitter;

    impl Node for Emitter {
        type Msg = u64;
        fn on_message(&mut self, ctx: &mut Context<'_, u64>, _from: NodeId, msg: u64) {
            ctx.metric_incr("test.msgs");
            ctx.metric_observe("test.value", msg as f64);
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn metric_effects_reach_the_shared_sink() {
        let mut b: RuntimeBuilder<u64> = RuntimeBuilder::new(3);
        let a = b.add_node("a", Box::new(Emitter));
        let c = b.add_node("b", Box::new(Emitter));
        let rt = b.start();
        rt.send_from_env(a, 10);
        rt.send_from_env(c, 30);
        let deadline = Instant::now() + Duration::from_secs(5);
        while rt.metrics().counter("test.msgs") < 2 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        let snap = rt.metrics().snapshot();
        rt.shutdown();
        assert_eq!(snap.counter("test.msgs"), 2);
        let summary = snap.histogram("test.value").and_then(|h| h.summary()).expect("samples");
        assert_eq!(summary.count, 2);
        assert_eq!(summary.sum, 40.0);
    }

    #[test]
    fn shutdown_returns_nodes_in_id_order() {
        let mut b: RuntimeBuilder<u64> = RuntimeBuilder::new(2);
        let a = b.add_node("a", Box::new(Counter::default()));
        let c = b.add_node("b", Box::new(Counter::default()));
        assert_eq!(a.index(), 0);
        assert_eq!(c.index(), 1);
        let rt = b.start();
        let nodes = rt.shutdown();
        assert_eq!(nodes.len(), 2);
        for (i, outcome) in nodes.into_iter().enumerate() {
            let (exit, _) = outcome.unwrap_or_else(|e| panic!("node {i}: {e}"));
            assert_eq!(exit, NodeExit::Stopped);
        }
    }

    /// On any message, dies the way a buggy node would.
    #[derive(Debug)]
    struct Panicker;

    impl Node for Panicker {
        type Msg = u64;
        fn on_message(&mut self, _ctx: &mut Context<'_, u64>, _from: NodeId, _msg: u64) {
            panic!("injected node bug");
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn one_panicking_node_is_reported_not_cascaded() {
        let mut b: RuntimeBuilder<u64> = RuntimeBuilder::new(5);
        let bad = b.add_node("bad", Box::new(Panicker));
        let good = b.add_node("good", Box::new(Counter::default()));
        let rt = b.start();
        rt.send_from_env(bad, 1);
        rt.send_from_env(good, 1);
        std::thread::sleep(Duration::from_millis(100));
        let outcomes = rt.shutdown();
        let Err(err) = outcomes[bad.index()].as_ref() else {
            panic!("panic must surface as Err");
        };
        assert!(err.contains("injected node bug"), "{err}");
        let (exit, node) = outcomes[good.index()].as_ref().expect("good node survives");
        assert_eq!(*exit, NodeExit::Stopped);
        assert_eq!(node.as_any().downcast_ref::<Counter>().expect("counter").seen, 1);
    }

    #[test]
    fn kill_then_restart_respawns_from_the_factory() {
        let mut b: RuntimeBuilder<u64> = RuntimeBuilder::new(9);
        let a = b.add_node_with_factory("replayable", Arc::new(|| Box::new(Counter::default())));
        let mut rt = b.start();
        rt.send_from_env(a, 1);
        std::thread::sleep(Duration::from_millis(50));

        assert_eq!(rt.kill(a), Ok(NodeExit::Killed));
        assert!(rt.kill(a).is_err(), "double kill is an error");
        // Traffic to a killed node vanishes silently, like a down host.
        rt.send_from_env(a, 2);
        std::thread::sleep(Duration::from_millis(20));

        rt.restart(a).expect("factory registered");
        rt.send_from_env(a, 3);
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(rt.metrics().counter("rt.node_killed"), 1);
        assert_eq!(rt.metrics().counter("rt.node_restarted"), 1);

        let outcomes = rt.shutdown();
        let (exit, node) = outcomes[a.index()].as_ref().expect("restarted node");
        assert_eq!(*exit, NodeExit::Stopped);
        // The fresh instance saw only the post-restart message.
        assert_eq!(node.as_any().downcast_ref::<Counter>().expect("counter").seen, 1);
    }

    #[test]
    fn restart_without_factory_is_an_error() {
        let mut b: RuntimeBuilder<u64> = RuntimeBuilder::new(9);
        let a = b.add_node("fixed", Box::new(Counter::default()));
        let mut rt = b.start();
        rt.kill(a).expect("kill");
        let err = rt.restart(a).expect_err("no factory");
        assert!(err.contains("factory"), "{err}");
        rt.shutdown();
    }

    #[derive(Debug)]
    struct Tracer;

    impl Node for Tracer {
        type Msg = u64;
        fn on_message(&mut self, ctx: &mut Context<'_, u64>, _from: NodeId, msg: u64) {
            ctx.trace(format!("audit=test msg={msg}"));
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn trace_capture_collects_notes_with_a_shared_clock() {
        let mut b: RuntimeBuilder<u64> = RuntimeBuilder::new(11);
        let buffer = b.capture_traces();
        let a = b.add_node("tracer", Box::new(Tracer));
        let rt = b.start();
        rt.send_from_env(a, 42);
        let deadline = Instant::now() + Duration::from_secs(5);
        while buffer.is_empty() && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        rt.shutdown();
        let entries = buffer.drain_sorted();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].node, a);
        assert_eq!(entries[0].text, "audit=test msg=42");
        assert!(buffer.is_empty(), "drain takes everything");
    }
}
