//! In-process message routing between node threads.

use crossbeam::channel::{Sender, TrySendError};
use parking_lot::RwLock;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use wanacl_sim::node::NodeId;
use wanacl_sim::obs::MetricsSink;

/// An inbox item delivered through a raw channel mailbox (the
/// [`Router::register`] path used by router/chaos tests and external
/// taps). Pool-backed nodes instead receive `(from, msg)` pairs through
/// their worker's [`crate::runtime::NodeCell`]; lifecycle commands
/// travel on the runtime's control lane and never appear on either
/// data path.
#[derive(Debug)]
pub enum Envelope<M> {
    /// A routed protocol message. The payload is `Arc`-shared so a
    /// broadcast clones a pointer per recipient instead of the message;
    /// receivers that hold the only reference unwrap it without copying.
    Msg {
        /// The sender.
        from: NodeId,
        /// The payload (shared; see [`Router::broadcast`]).
        msg: Arc<M>,
    },
}

/// What node threads use to emit traffic: implemented by [`Router`]
/// directly and by decorators such as [`crate::chaos::ChaosRouter`]
/// that perturb delivery before handing off to the inner router.
///
/// Data-plane only — lifecycle envelopes never travel through a
/// `Transport`, so fault injection can never eat a `Stop` or `Kill`.
pub trait Transport<M: Send + Sync + 'static>: Send + Sync {
    /// Routes one already-`Arc`-shared message.
    fn send_shared(&self, from: NodeId, to: NodeId, msg: Arc<M>);

    /// Routes one message.
    fn send(&self, from: NodeId, to: NodeId, msg: M) {
        self.send_shared(from, to, Arc::new(msg));
    }

    /// Fans one message out to every target, sharing the allocation.
    fn broadcast(&self, from: NodeId, targets: &[NodeId], msg: M) {
        let msg = Arc::new(msg);
        for &to in targets {
            self.send_shared(from, to, Arc::clone(&msg));
        }
    }

    /// Routes an ordered per-peer batch of already-shared messages —
    /// the worker pool's coalesced flush. The default forwards one
    /// message at a time so fault-injecting decorators keep their
    /// per-message drop/dup/delay semantics; [`Router`] overrides it to
    /// lock and wake the destination mailbox once for the whole batch.
    fn send_batch(&self, from: NodeId, to: NodeId, msgs: Vec<Arc<M>>) {
        for msg in msgs {
            self.send_shared(from, to, msg);
        }
    }
}

/// Per-link delivery policy (loss and symmetric partitions), evaluated at
/// send time like the simulator's network model.
pub trait LinkPolicy<M>: Send + Sync {
    /// Whether the message may be delivered.
    fn allow(&self, from: NodeId, to: NodeId, msg: &M) -> bool;
}

/// Deliver everything.
#[derive(Debug, Clone, Copy, Default)]
pub struct DeliverAll;

impl<M> LinkPolicy<M> for DeliverAll {
    fn allow(&self, _from: NodeId, _to: NodeId, _msg: &M) -> bool {
        true
    }
}

/// A dynamic partition switch: when engaged, messages between the two
/// sides are dropped. Useful for live partition experiments.
#[derive(Debug)]
pub struct PartitionSwitch {
    side_a: Vec<NodeId>,
    side_b: Vec<NodeId>,
    engaged: std::sync::atomic::AtomicBool,
}

impl PartitionSwitch {
    /// Creates a disengaged switch between two node sets.
    pub fn new(side_a: Vec<NodeId>, side_b: Vec<NodeId>) -> Arc<Self> {
        Arc::new(PartitionSwitch {
            side_a,
            side_b,
            engaged: std::sync::atomic::AtomicBool::new(false),
        })
    }

    /// Engages or heals the partition.
    pub fn set(&self, engaged: bool) {
        self.engaged.store(engaged, Ordering::SeqCst);
    }
}

impl<M> LinkPolicy<M> for PartitionSwitch {
    fn allow(&self, from: NodeId, to: NodeId, _msg: &M) -> bool {
        if !self.engaged.load(Ordering::SeqCst) {
            return true;
        }
        let a_from = self.side_a.contains(&from);
        let b_from = self.side_b.contains(&from);
        let a_to = self.side_a.contains(&to);
        let b_to = self.side_b.contains(&to);
        !((a_from && b_to) || (b_from && a_to))
    }
}

/// Pseudo-random message loss: drops a deterministic fraction of
/// messages using a per-policy counter hash (deterministic in *send
/// order*, which under threads is itself nondeterministic — fine for
/// live chaos testing).
#[derive(Debug)]
pub struct LossyPolicy {
    /// Drop `numerator` out of every `denominator` messages.
    numerator: u64,
    denominator: u64,
    counter: AtomicU64,
}

impl LossyPolicy {
    /// Drops roughly `fraction` of all messages.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ fraction < 1`.
    pub fn new(fraction: f64) -> Arc<Self> {
        assert!((0.0..1.0).contains(&fraction), "loss fraction must be in [0,1)");
        let denominator = 1_000;
        Arc::new(LossyPolicy {
            numerator: (fraction * denominator as f64).round() as u64,
            denominator,
            counter: AtomicU64::new(0),
        })
    }
}

impl<M> LinkPolicy<M> for LossyPolicy {
    fn allow(&self, _from: NodeId, _to: NodeId, _msg: &M) -> bool {
        let n = self.counter.fetch_add(1, Ordering::Relaxed);
        // Golden-ratio hash spreads drops evenly through the stream.
        let h = n.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 32;
        (h % self.denominator) >= self.numerator
    }
}

/// Routes messages to node inboxes, applying the link policy.
///
/// Inboxes are bounded (see [`crate::RuntimeBuilder::inbox_capacity`]);
/// the overflow policy is drop-newest: a message that finds the
/// destination queue full is discarded and counted (`rt.inbox_overflow`
/// in the attached metrics sink), exactly like a NIC ring overrun. Only
/// data-plane messages can overflow — lifecycle envelopes bypass the
/// bound on the channel's control lane.
pub struct Router<M> {
    inboxes: RwLock<Vec<Mailbox<M>>>,
    policy: RwLock<Arc<dyn LinkPolicy<M>>>,
    metrics: RwLock<Option<MetricsSink>>,
    sent: AtomicU64,
    dropped: AtomicU64,
    overflowed: AtomicU64,
}

/// Where one node's data traffic lands.
pub(crate) enum Mailbox<M> {
    /// A raw channel inbox (tests, decorator probes), delivered as
    /// [`Envelope`]s via `try_send`.
    Channel(Sender<Envelope<M>>),
    /// A pooled node's inbox cell; a push wakes the owning worker.
    Pool(Arc<crate::runtime::NodeCell<M>>),
}

impl<M> std::fmt::Debug for Router<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Router")
            .field("nodes", &self.inboxes.read().len())
            .field("sent", &self.sent.load(Ordering::Relaxed))
            .field("dropped", &self.dropped.load(Ordering::Relaxed))
            .field("overflowed", &self.overflowed.load(Ordering::Relaxed))
            .finish()
    }
}

impl<M: Send + Sync + 'static> Router<M> {
    /// Creates an empty router delivering everything.
    pub fn new() -> Arc<Self> {
        Arc::new(Router {
            inboxes: RwLock::new(Vec::new()),
            policy: RwLock::new(Arc::new(DeliverAll)),
            metrics: RwLock::new(None),
            sent: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            overflowed: AtomicU64::new(0),
        })
    }

    /// Installs a link policy.
    pub fn set_policy(&self, policy: Arc<dyn LinkPolicy<M>>) {
        *self.policy.write() = policy;
    }

    /// Attaches a sink for the router's own counters
    /// (`rt.inbox_overflow`).
    pub fn set_metrics(&self, metrics: MetricsSink) {
        *self.metrics.write() = Some(metrics);
    }

    /// Registers a channel-backed mailbox and returns the id it will
    /// receive under. Deliveries arrive as [`Envelope`]s via `try_send`
    /// (a full or closed channel is a silent network drop). The worker
    /// pool registers cells instead; this entry point serves test
    /// drivers and external observers that tap the traffic directly.
    pub fn register(&self, sender: Sender<Envelope<M>>) -> NodeId {
        let mut inboxes = self.inboxes.write();
        inboxes.push(Mailbox::Channel(sender));
        NodeId::from_index(inboxes.len() - 1)
    }

    /// Registers a worker-pool inbox cell. Restart reuses the same cell
    /// (revived in place), so a node id's mailbox never changes after
    /// registration.
    pub(crate) fn register_cell(&self, cell: Arc<crate::runtime::NodeCell<M>>) -> NodeId {
        let mut inboxes = self.inboxes.write();
        inboxes.push(Mailbox::Pool(cell));
        NodeId::from_index(inboxes.len() - 1)
    }

    /// Routes one message; silently drops on policy denial, a full
    /// inbox, or a closed inbox (matching the unreliable-network model).
    pub fn send(&self, from: NodeId, to: NodeId, msg: M) {
        self.send_shared(from, to, Arc::new(msg));
    }

    /// Routes one already-shared message (see [`Router::broadcast`]).
    pub fn send_shared(&self, from: NodeId, to: NodeId, msg: Arc<M>) {
        self.sent.fetch_add(1, Ordering::Relaxed);
        if !self.policy.read().allow(from, to, &msg) {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let inboxes = self.inboxes.read();
        match inboxes.get(to.index()) {
            Some(Mailbox::Channel(sender)) => match sender.try_send(Envelope::Msg { from, msg }) {
                Ok(()) => {}
                // Drop-newest overflow: the receiver is wedged or badly
                // behind; shedding here keeps senders from blocking and
                // makes backpressure observable.
                Err(TrySendError::Full(_)) => self.count_overflow(1),
                // A dead inbox is a down node: the network just loses
                // the message.
                Err(TrySendError::Disconnected(_)) => {}
            },
            Some(Mailbox::Pool(cell)) => match cell.push_data(from, msg) {
                crate::runtime::CellPush::Delivered | crate::runtime::CellPush::Dead => {}
                crate::runtime::CellPush::Full => self.count_overflow(1),
            },
            None => {}
        }
    }

    /// Routes an ordered per-peer batch. Policy still sees every
    /// message (so partitions and loss behave exactly as for singles),
    /// but a pool mailbox is locked — and its worker woken — once for
    /// the whole batch instead of once per message.
    pub fn send_batch(&self, from: NodeId, to: NodeId, msgs: Vec<Arc<M>>) {
        self.sent.fetch_add(msgs.len() as u64, Ordering::Relaxed);
        let mut survivors = Vec::with_capacity(msgs.len());
        {
            let policy = self.policy.read();
            for msg in msgs {
                if policy.allow(from, to, &msg) {
                    survivors.push(msg);
                } else {
                    self.dropped.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        if survivors.is_empty() {
            return;
        }
        let inboxes = self.inboxes.read();
        match inboxes.get(to.index()) {
            Some(Mailbox::Pool(cell)) => {
                let overflowed = cell.push_data_batch(from, survivors);
                self.count_overflow(overflowed);
            }
            Some(Mailbox::Channel(sender)) => {
                for msg in survivors {
                    match sender.try_send(Envelope::Msg { from, msg }) {
                        Ok(()) => {}
                        Err(TrySendError::Full(_)) => self.count_overflow(1),
                        Err(TrySendError::Disconnected(_)) => {}
                    }
                }
            }
            None => {}
        }
    }

    fn count_overflow(&self, n: u64) {
        if n == 0 {
            return;
        }
        self.dropped.fetch_add(n, Ordering::Relaxed);
        self.overflowed.fetch_add(n, Ordering::Relaxed);
        if let Some(metrics) = self.metrics.read().as_ref() {
            metrics.add("rt.inbox_overflow", n);
        }
    }

    /// Fans one message out to every target, allocating the payload
    /// once and sharing it by `Arc` — the zero-copy path for
    /// retransmit-to-all-peers traffic. Per-link policy still applies
    /// to each target independently.
    pub fn broadcast(&self, from: NodeId, targets: &[NodeId], msg: M) {
        let msg = Arc::new(msg);
        for &to in targets {
            self.send_shared(from, to, Arc::clone(&msg));
        }
    }

    /// Messages sent / dropped so far (drops include overflows).
    pub fn stats(&self) -> (u64, u64) {
        (self.sent.load(Ordering::Relaxed), self.dropped.load(Ordering::Relaxed))
    }

    /// Messages dropped because the destination inbox was full.
    pub fn overflowed(&self) -> u64 {
        self.overflowed.load(Ordering::Relaxed)
    }
}

impl<M: Send + Sync + 'static> Transport<M> for Router<M> {
    fn send_shared(&self, from: NodeId, to: NodeId, msg: Arc<M>) {
        Router::send_shared(self, from, to, msg);
    }

    fn send(&self, from: NodeId, to: NodeId, msg: M) {
        Router::send(self, from, to, msg);
    }

    fn broadcast(&self, from: NodeId, targets: &[NodeId], msg: M) {
        Router::broadcast(self, from, targets, msg);
    }

    fn send_batch(&self, from: NodeId, to: NodeId, msgs: Vec<Arc<M>>) {
        Router::send_batch(self, from, to, msgs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::unbounded;

    #[test]
    fn routes_to_registered_inbox() {
        let router: Arc<Router<u32>> = Router::new();
        let (tx, rx) = unbounded();
        let id = router.register(tx);
        router.send(NodeId::ENV, id, 42);
        let Envelope::Msg { msg, .. } = rx.try_recv().expect("delivered");
        assert_eq!(*msg, 42);
    }

    #[test]
    fn broadcast_shares_one_allocation_across_targets() {
        let router: Arc<Router<u32>> = Router::new();
        let (tx_a, rx_a) = unbounded();
        let (tx_b, rx_b) = unbounded();
        let a = router.register(tx_a);
        let b = router.register(tx_b);
        router.broadcast(NodeId::ENV, &[a, b], 7);
        let Envelope::Msg { msg: msg_a, .. } = rx_a.try_recv().expect("a delivered");
        let Envelope::Msg { msg: msg_b, .. } = rx_b.try_recv().expect("b delivered");
        assert_eq!((*msg_a, *msg_b), (7, 7));
        assert!(Arc::ptr_eq(&msg_a, &msg_b), "both recipients share the same buffer");
    }

    #[test]
    fn broadcast_applies_policy_per_target() {
        let router: Arc<Router<u32>> = Router::new();
        let (tx_a, _rx_a) = unbounded();
        let (tx_b, rx_b) = unbounded();
        let a = router.register(tx_a);
        let b = router.register(tx_b);
        let switch = PartitionSwitch::new(vec![NodeId::ENV], vec![a]);
        router.set_policy(switch.clone());
        switch.set(true);
        router.broadcast(NodeId::ENV, &[a, b], 9);
        assert_eq!(router.stats(), (2, 1));
        assert!(rx_b.try_recv().is_ok());
    }

    #[test]
    fn partition_switch_blocks_and_heals() {
        let router: Arc<Router<u32>> = Router::new();
        let (tx_a, _rx_a) = unbounded();
        let (tx_b, rx_b) = unbounded();
        let a = router.register(tx_a);
        let b = router.register(tx_b);
        let switch = PartitionSwitch::new(vec![a], vec![b]);
        router.set_policy(switch.clone());

        switch.set(true);
        router.send(a, b, 1);
        assert!(rx_b.try_recv().is_err());
        assert_eq!(router.stats().1, 1);

        switch.set(false);
        router.send(a, b, 2);
        assert!(rx_b.try_recv().is_ok());
    }

    #[test]
    fn lossy_policy_drops_roughly_the_requested_fraction() {
        let router: Arc<Router<u32>> = Router::new();
        let (tx, rx) = unbounded();
        let id = router.register(tx);
        router.set_policy(LossyPolicy::new(0.3));
        for i in 0..10_000 {
            router.send(NodeId::ENV, id, i);
        }
        let delivered = rx.try_iter().count();
        assert!((6_500..7_500).contains(&delivered), "delivered {delivered}");
    }

    #[test]
    #[should_panic(expected = "loss fraction")]
    fn lossy_policy_rejects_certain_loss() {
        let _ = LossyPolicy::new(1.0);
    }

    #[test]
    fn send_to_unknown_node_is_silent() {
        let router: Arc<Router<u32>> = Router::new();
        router.send(NodeId::ENV, NodeId::from_index(9), 1);
        assert_eq!(router.stats(), (1, 0));
    }

    #[test]
    fn full_inbox_sheds_newest_and_counts_overflow() {
        let router: Arc<Router<u32>> = Router::new();
        let sink = MetricsSink::new();
        router.set_metrics(sink.clone());
        let (tx, rx) = crossbeam::channel::bounded(2);
        let id = router.register(tx);
        for i in 0..5 {
            router.send(NodeId::ENV, id, i);
        }
        assert_eq!(router.overflowed(), 3);
        assert_eq!(router.stats(), (5, 3));
        assert_eq!(sink.counter("rt.inbox_overflow"), 3);
        // The two oldest messages survived; the overflow dropped newest.
        let got: Vec<u32> = rx
            .try_iter()
            .map(|e| {
                let Envelope::Msg { msg, .. } = e;
                *msg
            })
            .collect();
        assert_eq!(got, vec![0, 1]);
    }

    #[test]
    fn send_to_dead_inbox_is_silent() {
        let router: Arc<Router<u32>> = Router::new();
        let (tx, rx) = crossbeam::channel::bounded(4);
        let id = router.register(tx);
        drop(rx); // the node thread died
        router.send(NodeId::ENV, id, 1);
        assert_eq!(router.stats(), (1, 0));
        assert_eq!(router.overflowed(), 0);
    }

    #[test]
    fn pool_mailbox_sheds_newest_wakes_once_and_dies_silently() {
        use crate::runtime::NodeCell;
        let router: Arc<Router<u32>> = Router::new();
        let sink = MetricsSink::new();
        router.set_metrics(sink.clone());
        let (wake_tx, wake_rx) = unbounded();
        let cell = NodeCell::new(0, 2, wake_tx);
        let id = router.register_cell(cell.clone());
        for i in 0..5 {
            router.send(NodeId::ENV, id, i);
        }
        assert_eq!(router.overflowed(), 3);
        assert_eq!(sink.counter("rt.inbox_overflow"), 3);
        assert_eq!(wake_rx.try_iter().count(), 1, "one wake per scheduling flip");
        let (ctl, data, more) = cell.drain(16);
        assert!(ctl.is_empty());
        let got: Vec<u32> = data.iter().map(|(_, m)| **m).collect();
        assert_eq!(got, vec![0, 1], "drop-newest kept the oldest two");
        assert!(!more);
        // A dead cell swallows traffic silently, like a down host.
        cell.clear_dead();
        router.send(NodeId::ENV, id, 9);
        assert_eq!(router.overflowed(), 3);
        assert_eq!(cell.drain(16).1.len(), 0);
    }

    #[test]
    fn batch_to_pool_mailbox_delivers_in_order_with_one_wake() {
        use crate::runtime::NodeCell;
        let router: Arc<Router<u32>> = Router::new();
        let (wake_tx, wake_rx) = unbounded();
        let cell = NodeCell::new(0, 3, wake_tx);
        let id = router.register_cell(cell.clone());
        let msgs: Vec<Arc<u32>> = (0..5).map(Arc::new).collect();
        router.send_batch(NodeId::ENV, id, msgs);
        assert_eq!(router.stats(), (5, 2));
        assert_eq!(router.overflowed(), 2, "capacity 3 sheds the newest 2");
        assert_eq!(wake_rx.try_iter().count(), 1, "the whole batch costs one wake");
        let (_, data, _) = cell.drain(16);
        let got: Vec<u32> = data.iter().map(|(_, m)| **m).collect();
        assert_eq!(got, vec![0, 1, 2]);
    }

    #[test]
    fn batch_applies_policy_per_message() {
        use crate::runtime::NodeCell;
        let router: Arc<Router<u32>> = Router::new();
        let (wake_tx, _wake_rx) = unbounded();
        let cell = NodeCell::new(0, 2000, wake_tx);
        let id = router.register_cell(cell.clone());
        router.set_policy(LossyPolicy::new(0.5));
        let msgs: Vec<Arc<u32>> = (0..1000).map(Arc::new).collect();
        router.send_batch(NodeId::ENV, id, msgs);
        let (sent, dropped) = router.stats();
        assert_eq!(sent, 1000);
        assert!((300..700).contains(&dropped), "dropped {dropped}");
    }
}
