//! File-backed stable storage for live (threaded) manager deployments.
//!
//! [`FileStorage`] implements the [`Storage`] contract of `wanacl-sim`
//! against a real directory:
//!
//! * the WAL is a single append-only file of CRC-framed records —
//!   `[len: u32 LE][crc32(payload): u32 LE][payload]` — so a torn tail
//!   (power cut mid-write) is detected by the checksum and discarded on
//!   recovery, exactly like the simulated torn-tail fault;
//! * records are buffered in memory until [`Storage::sync`], which
//!   appends all pending frames and runs `File::sync_all` — the fsync
//!   barrier the manager requires before acking an update;
//! * snapshots are written to `snapshot.tmp`, fsynced, then atomically
//!   renamed over `snapshot`, after which the WAL is truncated — a crash
//!   mid-snapshot leaves either the old or the new snapshot, never a
//!   half-written one.
//!
//! The CRC is a hand-rolled table-driven CRC-32 (IEEE 802.3 polynomial)
//! so the crate needs no extra dependencies.

use std::any::Any;
use std::fs::{self, File, OpenOptions};
use std::io::Write as _;
use std::path::PathBuf;

use wanacl_sim::obs::MetricsSink;
use wanacl_sim::storage::{Recovered, Storage, StorageError, StorageStats};

/// Bytes of one frame header: length + checksum.
const FRAME_HEADER: usize = 8;
/// WAL file name inside the storage directory.
const WAL_FILE: &str = "wal";
/// Snapshot file name inside the storage directory.
const SNAPSHOT_FILE: &str = "snapshot";
/// Temporary snapshot name (renamed over [`SNAPSHOT_FILE`] when safe).
const SNAPSHOT_TMP: &str = "snapshot.tmp";

/// Computes the CRC-32 (IEEE 802.3, reflected) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    // Table-driven, one table entry per byte value, built on first use.
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 { (crc >> 1) ^ 0xedb8_8320 } else { crc >> 1 };
            }
            *entry = crc;
        }
        table
    });
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ table[((crc ^ b as u32) & 0xff) as usize];
    }
    !crc
}

fn frame(record: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER + record.len());
    out.extend_from_slice(&(record.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(record).to_le_bytes());
    out.extend_from_slice(record);
    out
}

/// Splits a WAL image into valid records, stopping at the first torn or
/// corrupt frame. Returns the records, the byte offset of the valid
/// prefix, and how many trailing garbage regions were discarded (0/1).
fn parse_wal(bytes: &[u8]) -> (Vec<Vec<u8>>, usize, u64) {
    let mut records = Vec::new();
    let mut offset = 0;
    while bytes.len() - offset >= FRAME_HEADER {
        let len = u32::from_le_bytes(bytes[offset..offset + 4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(bytes[offset + 4..offset + 8].try_into().unwrap());
        let start = offset + FRAME_HEADER;
        let Some(end) = start.checked_add(len).filter(|&e| e <= bytes.len()) else {
            break; // truncated payload
        };
        if crc32(&bytes[start..end]) != crc {
            break; // torn or bit-rotted frame
        }
        records.push(bytes[start..end].to_vec());
        offset = end;
    }
    let torn = u64::from(offset < bytes.len());
    (records, offset, torn)
}

/// CRC-framed WAL + atomic-rename snapshot in a directory.
///
/// `crash()` models process death for tests: the in-memory buffer of
/// unsynced records is dropped (they never reached the file) and the
/// file handle is closed; durable bytes stay on disk for the next
/// [`Storage::recover`].
#[derive(Debug)]
pub struct FileStorage {
    dir: PathBuf,
    /// Open WAL handle; `None` after a crash until the next operation
    /// reopens it.
    wal: Option<File>,
    /// Records appended but not yet written + fsynced.
    buffered: Vec<Vec<u8>>,
    stats: StorageStats,
    /// Optional sink for `storage.*` counters and fsync latency.
    metrics: Option<MetricsSink>,
    /// Planted-bug hook mirroring `SimStorage::set_drop_state_on_recover`:
    /// when armed, `recover()` pretends the directory read back empty.
    drop_state_on_recover: bool,
}

impl FileStorage {
    /// Opens (creating if needed) storage rooted at `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, std::io::Error> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(FileStorage {
            dir,
            wal: None,
            buffered: Vec::new(),
            stats: StorageStats::default(),
            metrics: None,
            drop_state_on_recover: false,
        })
    }

    /// Arms the planted drop-the-WAL bug: the next [`Storage::recover`]
    /// reports empty stable storage, as if the directory were wiped.
    /// Exists so the live chaos harness can prove the durability oracle
    /// (I5) catches a real recovery bug on real disks, exactly like the
    /// sim's `SimStorage::set_drop_state_on_recover`.
    pub fn set_drop_state_on_recover(&mut self, drop: bool) {
        self.drop_state_on_recover = drop;
    }

    /// Attaches a metrics sink: every [`Storage::sync`] then records a
    /// `storage.wal_fsync` count and a `storage.wal_fsync_s` wall-clock
    /// latency sample — the real-disk analogue of the simulator's
    /// `mgr.wal_appends` accounting.
    pub fn with_metrics(mut self, metrics: MetricsSink) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// The directory this storage lives in.
    pub fn dir(&self) -> &std::path::Path {
        &self.dir
    }

    fn wal_path(&self) -> PathBuf {
        self.dir.join(WAL_FILE)
    }

    fn wal_handle(&mut self) -> Result<&mut File, std::io::Error> {
        if self.wal.is_none() {
            let file = OpenOptions::new()
                .create(true)
                .append(true)
                .read(true)
                .open(self.wal_path())?;
            self.wal = Some(file);
        }
        match self.wal.as_mut() {
            Some(file) => Ok(file),
            // Unreachable today, but a torn-down handle must surface as
            // an I/O error the durability path can report — a manager
            // mid-recovery cannot afford a panic here.
            None => Err(std::io::Error::other("wal handle unavailable after reopen")),
        }
    }

    /// Fsyncs the directory so renames and truncations are durable
    /// (best-effort on platforms where directories cannot be opened).
    fn sync_dir(&self) {
        if let Ok(d) = File::open(&self.dir) {
            let _ = d.sync_all();
        }
    }
}

impl Storage for FileStorage {
    fn append(&mut self, record: &[u8]) -> Result<(), StorageError> {
        self.stats.appends += 1;
        self.buffered.push(record.to_vec());
        Ok(())
    }

    fn sync(&mut self) -> Result<(), StorageError> {
        if self.buffered.is_empty() {
            self.stats.syncs += 1;
            return Ok(());
        }
        let frames: Vec<u8> = self.buffered.iter().flat_map(|r| frame(r)).collect();
        let fsync_start = std::time::Instant::now();
        let result = (|| {
            let wal = self.wal_handle()?;
            wal.write_all(&frames)?;
            wal.sync_all()
        })();
        if let Some(metrics) = &self.metrics {
            metrics.incr("storage.wal_fsync");
            metrics.observe("storage.wal_fsync_s", fsync_start.elapsed().as_secs_f64());
        }
        match result {
            Ok(()) => {
                self.buffered.clear();
                self.stats.syncs += 1;
                Ok(())
            }
            Err(_) => {
                self.stats.sync_failures += 1;
                if let Some(metrics) = &self.metrics {
                    metrics.incr("storage.wal_fsync_failed");
                }
                Err(StorageError::SyncFailed)
            }
        }
    }

    fn write_snapshot(&mut self, snapshot: &[u8]) -> Result<(), StorageError> {
        let tmp = self.dir.join(SNAPSHOT_TMP);
        let fin = self.dir.join(SNAPSHOT_FILE);
        let result = (|| {
            let mut f = File::create(&tmp)?;
            f.write_all(&frame(snapshot))?;
            f.sync_all()?;
            fs::rename(&tmp, &fin)?;
            // The snapshot now covers everything; drop the old log.
            self.wal = None;
            let wal = File::create(self.wal_path())?;
            wal.sync_all()?;
            Ok::<(), std::io::Error>(())
        })();
        self.sync_dir();
        match result {
            Ok(()) => {
                self.stats.snapshots += 1;
                Ok(())
            }
            Err(_) => Err(StorageError::Io),
        }
    }

    fn recover(&mut self) -> Recovered {
        self.stats.recoveries += 1;
        self.wal = None;
        self.buffered.clear();
        if self.drop_state_on_recover {
            // Planted bug: durable bytes "read back" empty.
            return Recovered { snapshot: None, records: Vec::new(), torn_records: 0 };
        }

        // The snapshot is itself one CRC frame, so a corrupt snapshot
        // file reads back as absent rather than as garbage state.
        let snapshot = fs::read(self.dir.join(SNAPSHOT_FILE)).ok().and_then(|bytes| {
            let (mut frames, _, torn) = parse_wal(&bytes);
            self.stats.torn_records += torn;
            if frames.len() == 1 && torn == 0 { frames.pop() } else { None }
        });

        let mut torn_records = 0;
        let records = match fs::read(self.wal_path()) {
            Ok(bytes) => {
                let (records, valid_len, torn) = parse_wal(&bytes);
                torn_records = torn;
                if torn > 0 {
                    // Truncate the garbage tail so future appends extend
                    // a clean log instead of burying bad bytes mid-file.
                    if let Ok(f) = OpenOptions::new().write(true).open(self.wal_path()) {
                        let _ = f.set_len(valid_len as u64);
                        let _ = f.sync_all();
                    }
                }
                records
            }
            Err(_) => Vec::new(),
        };
        self.stats.torn_records += torn_records;
        Recovered { snapshot, records, torn_records }
    }

    fn crash(&mut self) {
        // Unsynced records never reached the file: the lost suffix.
        self.stats.lost_records += self.buffered.len() as u64;
        self.buffered.clear();
        self.wal = None;
    }

    fn stats(&self) -> StorageStats {
        self.stats
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use std::sync::atomic::{AtomicU64, Ordering};

    /// A fresh scratch directory per test (no tempfile dependency).
    fn scratch(name: &str) -> PathBuf {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "wanacl-filestore-{}-{}-{}",
            std::process::id(),
            name,
            n
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn synced_records_survive_crash_and_reopen() {
        let dir = scratch("survive");
        let mut st = FileStorage::open(&dir).unwrap();
        st.append(b"alpha").unwrap();
        st.append(b"beta").unwrap();
        st.sync().unwrap();
        st.append(b"never-synced").unwrap();
        st.crash();

        // A brand-new instance (fresh process) sees only the synced prefix.
        let mut st2 = FileStorage::open(&dir).unwrap();
        let rec = st2.recover();
        assert_eq!(rec.records, vec![b"alpha".to_vec(), b"beta".to_vec()]);
        assert_eq!(rec.torn_records, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_detected_truncated_and_log_stays_usable() {
        let dir = scratch("torn");
        let mut st = FileStorage::open(&dir).unwrap();
        st.append(b"good").unwrap();
        st.sync().unwrap();
        drop(st);

        // Simulate a power cut mid-append: half a frame lands on disk.
        let half = &frame(b"torn-record")[..10];
        let mut f = OpenOptions::new().append(true).open(dir.join(WAL_FILE)).unwrap();
        f.write_all(half).unwrap();
        drop(f);

        let mut st = FileStorage::open(&dir).unwrap();
        let rec = st.recover();
        assert_eq!(rec.records, vec![b"good".to_vec()]);
        assert_eq!(rec.torn_records, 1);

        // The tail was truncated: appending works and recovers cleanly.
        st.append(b"after").unwrap();
        st.sync().unwrap();
        let rec = st.recover();
        assert_eq!(rec.records, vec![b"good".to_vec(), b"after".to_vec()]);
        assert_eq!(rec.torn_records, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_frame_stops_replay_at_the_damage() {
        let dir = scratch("corrupt");
        let mut st = FileStorage::open(&dir).unwrap();
        st.append(b"one").unwrap();
        st.append(b"two").unwrap();
        st.sync().unwrap();
        drop(st);

        // Flip a payload bit in the second frame.
        let path = dir.join(WAL_FILE);
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        fs::write(&path, &bytes).unwrap();

        let mut st = FileStorage::open(&dir).unwrap();
        let rec = st.recover();
        assert_eq!(rec.records, vec![b"one".to_vec()]);
        assert_eq!(rec.torn_records, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_is_atomic_and_truncates_the_wal() {
        let dir = scratch("snapshot");
        let mut st = FileStorage::open(&dir).unwrap();
        st.append(b"pre-snapshot").unwrap();
        st.sync().unwrap();
        st.write_snapshot(b"state-v1").unwrap();
        st.append(b"post-snapshot").unwrap();
        st.sync().unwrap();
        st.crash();

        let mut st2 = FileStorage::open(&dir).unwrap();
        let rec = st2.recover();
        assert_eq!(rec.snapshot, Some(b"state-v1".to_vec()));
        assert_eq!(rec.records, vec![b"post-snapshot".to_vec()]);

        // A half-written tmp file from a crash mid-snapshot is ignored.
        fs::write(dir.join(SNAPSHOT_TMP), b"garbage").unwrap();
        let rec = st2.recover();
        assert_eq!(rec.snapshot, Some(b"state-v1".to_vec()));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_snapshot_reads_back_as_absent() {
        let dir = scratch("badsnap");
        let mut st = FileStorage::open(&dir).unwrap();
        st.write_snapshot(b"state").unwrap();
        drop(st);
        let path = dir.join(SNAPSHOT_FILE);
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        fs::write(&path, &bytes).unwrap();

        let mut st = FileStorage::open(&dir).unwrap();
        assert_eq!(st.recover().snapshot, None);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn sync_records_fsync_count_and_latency() {
        let dir = scratch("metrics");
        let sink = MetricsSink::new();
        let mut st = FileStorage::open(&dir).unwrap().with_metrics(sink.clone());
        st.append(b"r1").unwrap();
        st.sync().unwrap();
        st.append(b"r2").unwrap();
        st.sync().unwrap();
        assert_eq!(sink.counter("storage.wal_fsync"), 2);
        assert_eq!(sink.counter("storage.wal_fsync_failed"), 0);
        let snap = sink.snapshot();
        let s = snap.histogram("storage.wal_fsync_s").and_then(|h| h.summary()).expect("samples");
        assert_eq!(s.count, 2);
        assert!(s.min >= 0.0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_wal_reopen_is_an_error_not_a_panic() {
        let dir = scratch("reopenfail");
        let mut st = FileStorage::open(&dir).unwrap();
        st.append(b"r1").unwrap();
        st.sync().unwrap();
        // Crash drops the handle; a directory squatting on the WAL path
        // then makes the lazy reopen fail at the filesystem.
        st.crash();
        fs::remove_file(dir.join(WAL_FILE)).unwrap();
        fs::create_dir(dir.join(WAL_FILE)).unwrap();

        st.append(b"r2").unwrap();
        assert_eq!(st.sync(), Err(StorageError::SyncFailed));
        assert_eq!(st.stats().sync_failures, 1);

        // Clearing the obstruction lets the same storage recover and
        // sync again — the failure was reportable, not fatal.
        fs::remove_dir(dir.join(WAL_FILE)).unwrap();
        assert_eq!(st.sync(), Ok(()));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_directory_recovers_to_nothing() {
        let dir = scratch("empty");
        let mut st = FileStorage::open(&dir).unwrap();
        let rec = st.recover();
        assert!(rec.snapshot.is_none());
        assert!(rec.records.is_empty());
        assert_eq!(rec.torn_records, 0);
        let _ = fs::remove_dir_all(&dir);
    }
}
