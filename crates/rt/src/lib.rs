//! # wanacl-rt — event-driven live runtime
//!
//! The protocol nodes of `wanacl-core` are written against the
//! [`wanacl_sim::node::Node`] interface: they observe only incoming
//! messages, local-clock timers, and their RNG. This crate drives those
//! *same* node implementations on a small fixed worker pool over
//! wall-clock time — demonstrating that the logic is
//! substrate-independent and providing a live deployment vehicle that
//! scales to thousands of logical nodes.
//!
//! Each worker multiplexes its share of nodes: inbound envelopes land
//! in per-node inbox cells (bounded data lane, unbounded control lane),
//! each wake drains-then-steps one node, outbound sends coalesce into
//! one per-peer batch through the in-process [`router`] (with optional
//! loss/partition policy), and timers fire from a per-worker
//! [`mod@wheel`] by absolute deadline. Batches that must cross a byte
//! boundary are framed by the [`codec`].
//!
//! Unlike the simulator, a pooled run is *not* deterministic — worker
//! scheduling and wall-clock jitter are real. That is the point: the
//! protocol must tolerate it, and the tests in this crate check outcomes
//! rather than traces.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod chaos;
pub mod codec;
pub mod router;
pub mod runtime;
pub mod storage;
pub mod wheel;

pub use chaos::ChaosRouter;
pub use router::{LinkPolicy, Transport};
pub use runtime::{
    LiveTraceEntry, NodeExit, NodeFactory, NodeResult, Runtime, RuntimeBuilder, RuntimeError,
    TraceBuffer,
};
pub use storage::FileStorage;
pub use wanacl_sim::obs::{metrics_jsonl, prometheus_text, MetricsSink};
