//! # wanacl-rt — real-time threaded driver
//!
//! The protocol nodes of `wanacl-core` are written against the
//! [`wanacl_sim::node::Node`] interface: they observe only incoming
//! messages, local-clock timers, and their RNG. This crate drives those
//! *same* node implementations over OS threads, crossbeam channels, and
//! wall-clock timers — demonstrating that the logic is
//! substrate-independent and providing a live deployment vehicle.
//!
//! Each node runs on its own thread with an inbox; effects requested
//! through the [`wanacl_sim::node::Context`] are executed by the driver:
//! sends are routed through an in-process [`router`] (with optional
//! loss/partition policy), timers become `recv_timeout` deadlines.
//!
//! Unlike the simulator, a threaded run is *not* deterministic — thread
//! scheduling and wall-clock jitter are real. That is the point: the
//! protocol must tolerate it, and the tests in this crate check outcomes
//! rather than traces.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod chaos;
pub mod router;
pub mod runtime;
pub mod storage;

pub use chaos::ChaosRouter;
pub use router::{LinkPolicy, Transport};
pub use runtime::{
    LiveTraceEntry, NodeExit, NodeFactory, NodeResult, Runtime, RuntimeBuilder, TraceBuffer,
};
pub use storage::FileStorage;
pub use wanacl_sim::obs::{metrics_jsonl, prometheus_text, MetricsSink};
