//! A hashed timer wheel for the worker-pool runtime.
//!
//! Each worker owns one wheel shard holding the pending timers of every
//! logical node assigned to that worker, replacing the per-node
//! `BinaryHeap` + `recv_timeout` loop of the thread-per-node runtime.
//! The wheel is a ring of [`SLOTS`] buckets, [`TICK`] wide each
//! (~1 s of total span); timers further out sit in an overflow heap and
//! migrate into the ring as the cursor advances. An occupancy bitmask
//! makes [`TimerWheel::next_deadline`] a couple of word scans, so the
//! worker can park on `recv_deadline` against the exact next due
//! `Instant` — timers fire by absolute deadline, never by a recomputed
//! relative wait (the drift bug of the old loop).
//!
//! Cancellation is handled above the wheel: entries carry the owning
//! node's timer `epoch`, and the worker drops fired entries whose epoch
//! is stale (node crashed, was killed, or restarted) or whose id is in
//! the node's cancelled set. The wheel itself never removes entries
//! early, which keeps inserts O(1).

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::time::{Duration, Instant};

/// Bucket width. 1 ms keeps firing granularity well under the
/// millisecond-scale protocol timers while bounding ring memory.
const TICK: Duration = Duration::from_millis(1);
/// Ring size; must be a multiple of 64 for the occupancy bitmask.
const SLOTS: usize = 1024;
/// Occupancy bitmask words.
const WORDS: usize = SLOTS / 64;

/// One armed timer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct TimerEntry {
    /// Absolute deadline.
    pub due: Instant,
    /// Dense index of the owning node.
    pub node: u32,
    /// The owning node's timer epoch at arm time; a mismatch at fire
    /// time means the node crashed/restarted since and the timer is
    /// dead.
    pub epoch: u32,
    /// Driver-assigned timer id (for the cancelled set).
    pub id: u64,
    /// The node-chosen tag passed back to `on_timer`.
    pub tag: u64,
}

/// Orders overflow entries earliest-first under `Reverse`.
#[derive(Debug, PartialEq, Eq)]
struct OverflowEntry(TimerEntry);

impl Ord for OverflowEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.due.cmp(&other.0.due).then(self.0.id.cmp(&other.0.id))
    }
}
impl PartialOrd for OverflowEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// One worker's shard of the deployment-wide timer state.
#[derive(Debug)]
pub(crate) struct TimerWheel {
    /// Time zero; ticks are measured from here.
    origin: Instant,
    /// The ring. Entries in slot `t % SLOTS` have tick `t` in
    /// `[cursor, cursor + SLOTS)`.
    slots: Vec<Vec<TimerEntry>>,
    /// One bit per slot: set when the slot is non-empty.
    occupied: [u64; WORDS],
    /// First tick not yet fully elapsed and drained.
    cursor: u64,
    /// Timers due beyond the ring span.
    overflow: BinaryHeap<Reverse<OverflowEntry>>,
    /// Entries already matured out of the ring, sorted by (due, id),
    /// consumed front to back.
    due: Vec<TimerEntry>,
    /// Index of the next unconsumed entry in `due`.
    due_next: usize,
    /// Total armed entries across ring + overflow + matured buffer.
    len: usize,
}

impl TimerWheel {
    /// An empty wheel with its tick origin at `origin`.
    pub fn new(origin: Instant) -> Self {
        TimerWheel {
            origin,
            slots: (0..SLOTS).map(|_| Vec::new()).collect(),
            occupied: [0; WORDS],
            cursor: 0,
            overflow: BinaryHeap::new(),
            due: Vec::new(),
            due_next: 0,
            len: 0,
        }
    }

    fn tick_of(&self, at: Instant) -> u64 {
        (at.saturating_duration_since(self.origin).as_nanos() / TICK.as_nanos()) as u64
    }

    /// Whether no timers are armed at all.
    #[cfg(test)]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Arms a timer.
    pub fn insert(&mut self, entry: TimerEntry) {
        self.len += 1;
        let tick = self.tick_of(entry.due);
        if tick < self.cursor {
            // Already elapsed: mature it straight into the due buffer.
            let at = self
                .due
                .iter()
                .skip(self.due_next)
                .position(|e| (e.due, e.id) > (entry.due, entry.id))
                .map(|p| self.due_next + p)
                .unwrap_or(self.due.len());
            self.due.insert(at, entry);
        } else if tick - self.cursor < SLOTS as u64 {
            let slot = (tick % SLOTS as u64) as usize;
            self.slots[slot].push(entry);
            self.occupied[slot / 64] |= 1u64 << (slot % 64);
        } else {
            self.overflow.push(Reverse(OverflowEntry(entry)));
        }
    }

    /// Matures every entry due at or before `now` into the due buffer,
    /// advancing the cursor and pulling overflow timers into the ring as
    /// their ticks come within span.
    fn advance(&mut self, now: Instant) {
        let now_tick = self.tick_of(now);
        // Fully-elapsed slots drain wholesale.
        while self.cursor < now_tick {
            let slot = (self.cursor % SLOTS as u64) as usize;
            if !self.slots[slot].is_empty() {
                let drained = std::mem::take(&mut self.slots[slot]);
                // Same-slot entries from a future lap go back.
                for e in drained {
                    let tick = self.tick_of(e.due);
                    if tick <= self.cursor {
                        self.due.push(e);
                    } else {
                        self.slots[slot].push(e);
                    }
                }
                if self.slots[slot].is_empty() {
                    self.occupied[slot / 64] &= !(1u64 << (slot % 64));
                }
            }
            self.cursor += 1;
            // Overflow entries whose tick just came within span join the
            // ring lazily, one span edge at a time.
            let edge = self.cursor + SLOTS as u64 - 1;
            while let Some(Reverse(OverflowEntry(e))) = self.overflow.peek() {
                if self.tick_of(e.due) > edge {
                    break;
                }
                let Reverse(OverflowEntry(e)) = self.overflow.pop().expect("peeked");
                let slot = (self.tick_of(e.due).max(self.cursor) % SLOTS as u64) as usize;
                self.slots[slot].push(e);
                self.occupied[slot / 64] |= 1u64 << (slot % 64);
            }
        }
        // The partial slot containing `now`: extract only what is due.
        let slot = (self.cursor % SLOTS as u64) as usize;
        if self.slots[slot].iter().any(|e| e.due <= now) {
            let bucket = std::mem::take(&mut self.slots[slot]);
            for e in bucket {
                if e.due <= now {
                    self.due.push(e);
                } else {
                    self.slots[slot].push(e);
                }
            }
            if self.slots[slot].is_empty() {
                self.occupied[slot / 64] &= !(1u64 << (slot % 64));
            }
        }
        // Keep the matured buffer deterministic within this worker.
        if self.due.len() > self.due_next + 1 {
            self.due[self.due_next..].sort_by_key(|e| (e.due, e.id));
        }
    }

    /// Takes the next timer due at or before `now`, earliest (due, id)
    /// first.
    pub fn pop_due(&mut self, now: Instant) -> Option<TimerEntry> {
        if self.due_next >= self.due.len() {
            self.due.clear();
            self.due_next = 0;
            if self.len == 0 {
                return None;
            }
            self.advance(now);
        }
        if self.due_next < self.due.len() {
            let entry = self.due[self.due_next];
            self.due_next += 1;
            self.len -= 1;
            return Some(entry);
        }
        None
    }

    /// The earliest armed deadline, for the worker's parked wait.
    pub fn next_deadline(&self) -> Option<Instant> {
        let mut best: Option<Instant> = None;
        if let Some(e) = self.due.get(self.due_next) {
            best = Some(e.due);
        }
        // First occupied slot at or after the cursor (two laps of the
        // bitmask cover the wrap).
        let start = (self.cursor % SLOTS as u64) as usize;
        'scan: for step in 0..=WORDS {
            let word_index = (start / 64 + step) % WORDS;
            let mut word = self.occupied[word_index];
            if step == 0 {
                word &= !0u64 << (start % 64);
            }
            while word != 0 {
                let bit = word.trailing_zeros() as usize;
                let slot = word_index * 64 + bit;
                for e in &self.slots[slot] {
                    if best.is_none_or(|b| e.due < b) {
                        best = Some(e.due);
                    }
                }
                word &= word - 1;
                // One non-empty slot bounds the search: anything in a
                // later slot of this scan can still be earlier only
                // within the same lap ambiguity, so keep scanning the
                // current word but stop after it.
            }
            if best.is_some() && step > 0 {
                break 'scan;
            }
        }
        if let Some(Reverse(OverflowEntry(e))) = self.overflow.peek() {
            if best.is_none_or(|b| e.due < b) {
                best = Some(e.due);
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(due: Instant, id: u64) -> TimerEntry {
        TimerEntry { due, node: 0, epoch: 0, id, tag: id }
    }

    #[test]
    fn fires_in_due_order_across_slots_and_overflow() {
        let origin = Instant::now();
        let mut wheel = TimerWheel::new(origin);
        // Deliberately out of order: far overflow, near ring, elapsed.
        wheel.insert(entry(origin + Duration::from_secs(3), 1));
        wheel.insert(entry(origin + Duration::from_millis(5), 2));
        wheel.insert(entry(origin, 3));
        wheel.insert(entry(origin + Duration::from_millis(5), 4));

        let now = origin + Duration::from_millis(10);
        assert_eq!(wheel.pop_due(now).map(|e| e.id), Some(3));
        assert_eq!(wheel.pop_due(now).map(|e| e.id), Some(2));
        assert_eq!(wheel.pop_due(now).map(|e| e.id), Some(4));
        assert_eq!(wheel.pop_due(now), None, "the 3s timer is not due yet");
        assert!(!wheel.is_empty());

        let later = origin + Duration::from_secs(4);
        assert_eq!(wheel.pop_due(later).map(|e| e.id), Some(1));
        assert!(wheel.is_empty());
        assert_eq!(wheel.pop_due(later), None);
    }

    #[test]
    fn next_deadline_tracks_the_earliest_timer() {
        let origin = Instant::now();
        let mut wheel = TimerWheel::new(origin);
        assert_eq!(wheel.next_deadline(), None);
        let far = origin + Duration::from_secs(9);
        wheel.insert(entry(far, 1));
        assert_eq!(wheel.next_deadline(), Some(far), "overflow peeks through");
        let near = origin + Duration::from_millis(7);
        wheel.insert(entry(near, 2));
        assert_eq!(wheel.next_deadline(), Some(near));
        // Consuming the near timer restores the far deadline.
        assert_eq!(wheel.pop_due(origin + Duration::from_millis(8)).map(|e| e.id), Some(2));
        assert_eq!(wheel.next_deadline(), Some(far));
    }

    #[test]
    fn lap_wrap_does_not_fire_future_timers_early() {
        let origin = Instant::now();
        let mut wheel = TimerWheel::new(origin);
        // Two timers hash to the same slot, one lap apart (1.024s span).
        let near = origin + Duration::from_millis(100);
        let lap = near + Duration::from_millis(1024);
        wheel.insert(entry(near, 1));
        wheel.insert(entry(lap, 2));
        let mid = origin + Duration::from_millis(200);
        assert_eq!(wheel.pop_due(mid).map(|e| e.id), Some(1));
        assert_eq!(wheel.pop_due(mid), None, "the next-lap timer must wait");
        assert_eq!(wheel.pop_due(lap + Duration::from_millis(1)).map(|e| e.id), Some(2));
    }

    #[test]
    fn thousands_of_timers_drain_completely() {
        let origin = Instant::now();
        let mut wheel = TimerWheel::new(origin);
        for i in 0..5_000u64 {
            wheel.insert(entry(origin + Duration::from_micros(i * 997), i));
        }
        let mut fired = Vec::new();
        let mut now = origin;
        while !wheel.is_empty() {
            now += Duration::from_millis(50);
            while let Some(e) = wheel.pop_due(now) {
                assert!(e.due <= now, "never fires early");
                fired.push(e.id);
            }
        }
        assert_eq!(fired.len(), 5_000);
        let mut sorted = fired.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 5_000, "every timer fires exactly once");
    }
}
