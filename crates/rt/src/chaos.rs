//! Live fault injection: a [`Transport`] decorator driven by the same
//! [`NemesisPlan`](wanacl_sim::nemesis::NemesisPlan) the simulator runs.
//!
//! [`ChaosRouter`] wraps the base [`Router`] and applies the plan's
//! *network* faults to every data-plane send, mapping elapsed wall-clock
//! time onto [`SimTime`] one second to one second, so a plan sampled for
//! a sim campaign replays against real threads: a partition scripted for
//! sim-seconds 10..20 severs live traffic during wall-seconds 10..20 of
//! the deployment. Evaluation order mirrors the simulator's
//! `NemesisNet`: partitions (certain loss) → injected random loss → the
//! inner router's own link policy → duplication → delay spikes.
//!
//! Lifecycle faults (crashes, disk faults) are not interpreted here —
//! the chaos driver maps those onto [`crate::Runtime::kill`] /
//! [`crate::Runtime::restart`] / [`crate::Runtime::crash`], just as the
//! sim world installs them outside the net layer.
//!
//! Delayed deliveries ride a dedicated pump thread with a deadline heap;
//! the decorated send never blocks the sending node.

use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, RecvTimeoutError, Sender};

use wanacl_sim::nemesis::Fault;
use wanacl_sim::node::NodeId;
use wanacl_sim::obs::MetricsSink;
use wanacl_sim::rng::SimRng;
use wanacl_sim::time::{SimDuration, SimTime};

use crate::router::{Router, Transport};

/// A delivery the pump thread owes the inner router.
struct DelayedDelivery<M> {
    due: Instant,
    seq: u64,
    from: NodeId,
    to: NodeId,
    msg: Arc<M>,
}

impl<M> PartialEq for DelayedDelivery<M> {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}
impl<M> Eq for DelayedDelivery<M> {}
impl<M> Ord for DelayedDelivery<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: earliest deadline first out of the max-heap.
        other.due.cmp(&self.due).then(other.seq.cmp(&self.seq))
    }
}
impl<M> PartialOrd for DelayedDelivery<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Seeded fault-injecting transport wrapping the base [`Router`].
///
/// Install via [`crate::RuntimeBuilder::wrap_transport`]:
///
/// ```ignore
/// let faults = plan.net_faults().to_vec();
/// builder.wrap_transport(move |router| ChaosRouter::new(router, faults, seed, None));
/// ```
///
/// Environment traffic (`from == NodeId::ENV`) bypasses injection so the
/// driving harness keeps a reliable control channel, matching the
/// simulator where nemesis attacks only protocol links.
pub struct ChaosRouter<M> {
    inner: Arc<Router<M>>,
    faults: Vec<Fault>,
    epoch: Instant,
    /// Seeded decision stream. A mutex serializes decisions across
    /// sending threads; the drop/duplicate/delay draws stay a
    /// deterministic function of *decision order*, which under threads
    /// is itself racy — same caveat as the router's `LossyPolicy`.
    rng: Mutex<SimRng>,
    delay_tx: Sender<DelayedDelivery<M>>,
    seq: AtomicU64,
    metrics: Option<MetricsSink>,
    dropped: AtomicU64,
    duplicated: AtomicU64,
    delayed: AtomicU64,
}

impl<M> std::fmt::Debug for ChaosRouter<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChaosRouter")
            .field("faults", &self.faults.len())
            .field("dropped", &self.dropped.load(Ordering::Relaxed))
            .field("duplicated", &self.duplicated.load(Ordering::Relaxed))
            .field("delayed", &self.delayed.load(Ordering::Relaxed))
            .finish()
    }
}

impl<M: Send + Sync + 'static> ChaosRouter<M> {
    /// Wraps `inner` with the network faults of a plan (lifecycle
    /// faults in the list are filtered out, like `NemesisNet::new`).
    /// The fault-window clock starts now; construct immediately before
    /// `RuntimeBuilder::start` so windows line up with the deployment.
    pub fn new(
        inner: Arc<Router<M>>,
        faults: Vec<Fault>,
        seed: u64,
        metrics: Option<MetricsSink>,
    ) -> Arc<Self> {
        let (delay_tx, delay_rx) = unbounded::<DelayedDelivery<M>>();
        let pump_router = inner.clone();
        // The pump owns delayed deliveries; it drains and exits once the
        // ChaosRouter (the only sender) is dropped.
        std::thread::Builder::new()
            .name("chaos-delay-pump".into())
            .spawn(move || {
                let mut heap: BinaryHeap<DelayedDelivery<M>> = BinaryHeap::new();
                let mut disconnected = false;
                loop {
                    let now = Instant::now();
                    while heap.peek().is_some_and(|d| d.due <= now) {
                        let d = heap.pop().expect("peeked");
                        pump_router.send_shared(d.from, d.to, d.msg);
                    }
                    if disconnected && heap.is_empty() {
                        return;
                    }
                    let wait = heap
                        .peek()
                        .map(|d| d.due.saturating_duration_since(Instant::now()))
                        .unwrap_or(Duration::from_millis(50));
                    match delay_rx.recv_timeout(wait) {
                        Ok(delivery) => heap.push(delivery),
                        Err(RecvTimeoutError::Timeout) => {}
                        Err(RecvTimeoutError::Disconnected) => disconnected = true,
                    }
                }
            })
            .expect("thread spawn");
        Arc::new(ChaosRouter {
            inner,
            faults: faults.into_iter().filter(|f| f.is_net()).collect(),
            epoch: Instant::now(),
            rng: Mutex::new(SimRng::seed_from(seed ^ 0x6c69_7665_6e65_7421)), // "livenet!"
            delay_tx,
            seq: AtomicU64::new(0),
            metrics,
            dropped: AtomicU64::new(0),
            duplicated: AtomicU64::new(0),
            delayed: AtomicU64::new(0),
        })
    }

    /// Elapsed wall time as the plan's clock.
    fn now(&self) -> SimTime {
        SimTime::from_nanos(self.epoch.elapsed().as_nanos() as u64)
    }

    /// Messages (dropped, duplicated, delayed) by injection so far.
    pub fn stats(&self) -> (u64, u64, u64) {
        (
            self.dropped.load(Ordering::Relaxed),
            self.duplicated.load(Ordering::Relaxed),
            self.delayed.load(Ordering::Relaxed),
        )
    }

    fn incr(&self, counter: &AtomicU64, name: &'static str) {
        counter.fetch_add(1, Ordering::Relaxed);
        if let Some(metrics) = &self.metrics {
            metrics.incr(name);
        }
    }

    fn deliver(&self, from: NodeId, to: NodeId, msg: Arc<M>, extra: SimDuration) {
        if extra == SimDuration::ZERO {
            self.inner.send_shared(from, to, msg);
            return;
        }
        self.incr(&self.delayed, "rt.chaos_delayed");
        let delivery = DelayedDelivery {
            due: Instant::now() + Duration::from_nanos(extra.as_nanos()),
            seq: self.seq.fetch_add(1, Ordering::Relaxed),
            from,
            to,
            msg,
        };
        if self.delay_tx.send(delivery).is_err() {
            // Pump gone (teardown race): the message is just lost, like
            // a packet in flight when the deployment stops.
        }
    }
}

impl<M: Send + Sync + 'static> Transport<M> for ChaosRouter<M> {
    fn send_shared(&self, from: NodeId, to: NodeId, msg: Arc<M>) {
        // Environment/control traffic is exempt from injection.
        if from == NodeId::ENV {
            self.inner.send_shared(from, to, msg);
            return;
        }
        let now = self.now();
        // 1. Partitions: certain loss.
        if self.faults.iter().any(|f| f.severs(from, to, now)) {
            self.incr(&self.dropped, "rt.chaos_dropped");
            return;
        }
        // 2..5 need the decision stream.
        let (drop, duplicate, extra) = {
            let mut rng = self.rng.lock().unwrap_or_else(|e| e.into_inner());
            let mut drop = false;
            let mut duplicate = false;
            let mut extra = SimDuration::ZERO;
            for fault in &self.faults {
                match fault {
                    // 2. Injected random loss.
                    Fault::Drop { window, prob } if window.contains(now) => {
                        drop = drop || rng.chance(*prob);
                    }
                    // 4. Duplication of a surviving delivery.
                    Fault::Duplicate { window, prob } if window.contains(now) => {
                        duplicate = duplicate || rng.chance(*prob);
                    }
                    // 5. Delay spikes stretch the delivery.
                    Fault::DelaySpike { window, extra_min, extra_max }
                        if window.contains(now) =>
                    {
                        let span = extra_max.as_nanos().saturating_sub(extra_min.as_nanos());
                        let add = if span == 0 {
                            *extra_min
                        } else {
                            SimDuration::from_nanos(extra_min.as_nanos() + rng.range(0, span))
                        };
                        extra = extra + add;
                    }
                    _ => {}
                }
            }
            (drop, duplicate, extra)
        };
        if drop {
            self.incr(&self.dropped, "rt.chaos_dropped");
            return;
        }
        // 3. The inner router's own link policy applies per delivery
        // inside `deliver` (send_shared), like the sim's base verdict.
        if duplicate {
            self.incr(&self.duplicated, "rt.chaos_duplicated");
            // Trailing copy: same fate machinery, shifted by up to the
            // injected extra plus a millisecond of reordering jitter.
            let trail = extra + SimDuration::from_millis(1);
            self.deliver(from, to, Arc::clone(&msg), trail);
        }
        self.deliver(from, to, msg, extra);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::Envelope;
    use wanacl_sim::nemesis::NemesisPlan;

    fn n(i: usize) -> NodeId {
        NodeId::from_index(i)
    }

    fn harness(
        faults: Vec<Fault>,
    ) -> (Arc<ChaosRouter<u32>>, crossbeam::channel::Receiver<Envelope<u32>>, NodeId) {
        let router: Arc<Router<u32>> = Router::new();
        let (tx, rx) = crossbeam::channel::bounded(1024);
        let id = router.register(tx);
        let chaos = ChaosRouter::new(router, faults, 7, None);
        (chaos, rx, id)
    }

    #[test]
    fn partition_window_severs_then_heals() {
        // Sever 0 -> target for the first 200ms of the run.
        let plan = NemesisPlan::builder(SimTime::from_secs(60))
            .partition(vec![n(9)], vec![n(0)], SimTime::ZERO, SimTime::from_millis(200))
            .build();
        let (chaos, rx, id) = harness(plan.net_faults().to_vec());
        assert_eq!(id, n(0));
        chaos.send(n(9), id, 1);
        assert!(rx.try_recv().is_err(), "partition must sever");
        assert_eq!(chaos.stats().0, 1);
        std::thread::sleep(Duration::from_millis(250));
        chaos.send(n(9), id, 2);
        assert!(
            matches!(rx.recv_timeout(Duration::from_secs(1)), Ok(Envelope::Msg { msg, .. }) if *msg == 2),
            "healed window must deliver"
        );
    }

    #[test]
    fn env_traffic_bypasses_injection() {
        let plan = NemesisPlan::builder(SimTime::from_secs(60))
            .drop_burst(SimTime::ZERO, SimTime::from_secs(60), 1.0)
            .build();
        let (chaos, rx, id) = harness(plan.net_faults().to_vec());
        chaos.send(NodeId::ENV, id, 5);
        assert!(rx.try_recv().is_ok(), "env sends must not be dropped");
        chaos.send(n(3), id, 6);
        assert!(rx.try_recv().is_err(), "certain loss drops protocol sends");
        assert_eq!(chaos.stats().0, 1);
    }

    #[test]
    fn duplication_forks_and_delay_defers() {
        let plan = NemesisPlan::builder(SimTime::from_secs(60))
            .duplicate_burst(SimTime::ZERO, SimTime::from_secs(60), 1.0)
            .delay_spike(
                SimTime::ZERO,
                SimTime::from_secs(60),
                SimDuration::from_millis(20),
                SimDuration::from_millis(40),
            )
            .build();
        let (chaos, rx, id) = harness(plan.net_faults().to_vec());
        let sent_at = Instant::now();
        chaos.send(n(3), id, 9);
        let mut got = 0;
        while got < 2 {
            match rx.recv_timeout(Duration::from_secs(2)) {
                Ok(Envelope::Msg { msg, .. }) => {
                    assert_eq!(*msg, 9);
                    got += 1;
                }
                other => panic!("expected duplicate deliveries, got {other:?}"),
            }
        }
        assert!(
            sent_at.elapsed() >= Duration::from_millis(20),
            "the delay spike must defer delivery"
        );
        let (dropped, duplicated, delayed) = chaos.stats();
        assert_eq!((dropped, duplicated), (0, 1));
        assert!(delayed >= 2, "both copies ride the pump: {delayed}");
    }
}
