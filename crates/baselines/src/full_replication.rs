//! Baseline 1 (§3, first option): replicate the full ACL onto **every
//! application host**.
//!
//! Checks are free (purely local), but every update costs `O(|Hosts(A)|)`
//! messages, and a partitioned host serves *stale rights indefinitely* —
//! there is no time bound on revocation, which is exactly the weakness
//! the paper's lease design removes.

use std::any::Any;
use std::collections::{BTreeMap, BTreeSet};

use wanacl_core::msg::{AclOp, OpId};
use wanacl_core::types::Acl;
use wanacl_sim::clock::LocalTime;
use wanacl_sim::node::{Context, Node, NodeId};
use wanacl_sim::time::SimDuration;

use crate::msg::BaselineMsg;

const TAG_RETRY: u64 = 1 << 56;

/// The manager of the full-replication strategy: applies updates locally
/// and pushes them to every host (persistent retransmission until acked).
#[derive(Debug)]
pub struct FullReplManager {
    hosts: Vec<NodeId>,
    acl: Acl,
    next_seq: u64,
    pending: BTreeMap<OpId, (AclOp, BTreeSet<NodeId>)>,
    retry_interval: SimDuration,
}

impl FullReplManager {
    /// Creates a manager pushing to the given hosts.
    pub fn new(hosts: Vec<NodeId>, initial_acl: Acl, retry_interval: SimDuration) -> Self {
        FullReplManager { hosts, acl: initial_acl, next_seq: 0, pending: BTreeMap::new(), retry_interval }
    }

    /// Updates not yet acknowledged by every host.
    pub fn pending_pushes(&self) -> usize {
        self.pending.len()
    }
}

impl Node for FullReplManager {
    type Msg = BaselineMsg;

    fn on_start(&mut self, ctx: &mut Context<'_, BaselineMsg>) {
        ctx.set_timer(self.retry_interval, TAG_RETRY);
    }

    fn on_message(&mut self, ctx: &mut Context<'_, BaselineMsg>, from: NodeId, msg: BaselineMsg) {
        match msg {
            BaselineMsg::Admin { op } => {
                let id = OpId { origin: ctx.id(), seq: self.next_seq };
                self.next_seq += 1;
                match op {
                    AclOp::Add { user, right, .. } => self.acl.add(user, right),
                    AclOp::Revoke { user, right, .. } => self.acl.revoke(user, right),
                }
                ctx.metric_incr("base.full.updates");
                let targets: BTreeSet<NodeId> = self.hosts.iter().copied().collect();
                for host in &targets {
                    ctx.metric_incr("base.full.push_msgs");
                    ctx.send(*host, BaselineMsg::AclPush { id, op });
                }
                if !targets.is_empty() {
                    self.pending.insert(id, (op, targets));
                }
            }
            BaselineMsg::AclPushAck { id } => {
                let done = if let Some((_, targets)) = self.pending.get_mut(&id) {
                    targets.remove(&from);
                    targets.is_empty()
                } else {
                    false
                };
                if done {
                    self.pending.remove(&id);
                }
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, BaselineMsg>, _tag: u64) {
        for (id, (op, targets)) in &self.pending {
            for host in targets {
                ctx.metric_incr("base.full.push_msgs");
                ctx.send(*host, BaselineMsg::AclPush { id: *id, op: *op });
            }
        }
        ctx.set_timer(self.retry_interval, TAG_RETRY);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// A host holding a complete local ACL replica; checks never touch the
/// network.
#[derive(Debug)]
pub struct FullReplHost {
    acl: Acl,
    applied: BTreeSet<OpId>,
    /// Local time at which the first revoke was applied (convergence
    /// measurement for the comparison harness).
    revoke_seen_at: Option<LocalTime>,
    allowed: u64,
    denied: u64,
}

impl FullReplHost {
    /// Creates a host with the bootstrap ACL.
    pub fn new(initial_acl: Acl) -> Self {
        FullReplHost {
            acl: initial_acl,
            applied: BTreeSet::new(),
            revoke_seen_at: None,
            allowed: 0,
            denied: 0,
        }
    }

    /// When this host first applied a revoke, if ever.
    pub fn revoke_seen_at(&self) -> Option<LocalTime> {
        self.revoke_seen_at
    }

    /// `(allowed, denied)` decision counts.
    pub fn decisions(&self) -> (u64, u64) {
        (self.allowed, self.denied)
    }
}

impl Node for FullReplHost {
    type Msg = BaselineMsg;

    fn on_message(&mut self, ctx: &mut Context<'_, BaselineMsg>, from: NodeId, msg: BaselineMsg) {
        match msg {
            BaselineMsg::Invoke { user, req } => {
                ctx.metric_incr("base.full.checks");
                let allowed = self.acl.has(user, wanacl_core::types::Right::Use);
                if allowed {
                    self.allowed += 1;
                } else {
                    self.denied += 1;
                }
                ctx.send(from, BaselineMsg::InvokeReply { req, allowed });
            }
            BaselineMsg::AclPush { id, op } => {
                if self.applied.insert(id) {
                    match op {
                        AclOp::Add { user, right, .. } => self.acl.add(user, right),
                        AclOp::Revoke { user, right, .. } => {
                            self.acl.revoke(user, right);
                            if self.revoke_seen_at.is_none() {
                                self.revoke_seen_at = Some(ctx.local_now());
                            }
                        }
                    }
                }
                ctx.send(from, BaselineMsg::AclPushAck { id });
            }
            _ => {}
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wanacl_core::types::{AppId, Right, UserId};
    use wanacl_sim::clock::ClockSpec;
    use wanacl_sim::time::SimTime;
    use wanacl_sim::world::World;

    fn acl_with(user: UserId) -> Acl {
        let mut acl = Acl::new();
        acl.add(user, Right::Use);
        acl
    }

    #[test]
    fn local_checks_cost_no_messages() {
        let mut world: World<BaselineMsg> = World::new(1);
        let host = world.add_node(
            "host",
            Box::new(FullReplHost::new(acl_with(UserId(1)))),
            ClockSpec::Perfect,
        );
        world.inject(SimTime::from_millis(1), host, BaselineMsg::Invoke { user: UserId(1), req: 1 });
        world.run_until(SimTime::from_secs(1));
        assert_eq!(world.node_as::<FullReplHost>(host).decisions(), (1, 0));
        // The only sent message is the reply to the (env) requester.
        assert_eq!(world.metrics().counter("net.sent"), 1);
    }

    #[test]
    fn update_propagates_to_all_hosts() {
        let mut world: World<BaselineMsg> = World::new(2);
        let h1 = world.add_node("h1", Box::new(FullReplHost::new(Acl::new())), ClockSpec::Perfect);
        let h2 = world.add_node("h2", Box::new(FullReplHost::new(Acl::new())), ClockSpec::Perfect);
        let mgr = world.add_node(
            "mgr",
            Box::new(FullReplManager::new(vec![h1, h2], Acl::new(), SimDuration::from_millis(200))),
            ClockSpec::Perfect,
        );
        world.inject(
            SimTime::from_millis(1),
            mgr,
            BaselineMsg::Admin {
                op: AclOp::Add { app: AppId(0), user: UserId(1), right: Right::Use },
            },
        );
        world.run_until(SimTime::from_secs(2));
        assert_eq!(world.node_as::<FullReplManager>(mgr).pending_pushes(), 0);
        for h in [h1, h2] {
            world.inject(
                SimTime::from_secs(2),
                h,
                BaselineMsg::Invoke { user: UserId(1), req: 9 },
            );
        }
        world.run_until(SimTime::from_secs(3));
        assert_eq!(world.node_as::<FullReplHost>(h1).decisions().0, 1);
        assert_eq!(world.node_as::<FullReplHost>(h2).decisions().0, 1);
    }

    #[test]
    fn revoke_records_convergence_time() {
        let mut world: World<BaselineMsg> = World::new(3);
        let h1 =
            world.add_node("h1", Box::new(FullReplHost::new(acl_with(UserId(1)))), ClockSpec::Perfect);
        let mgr = world.add_node(
            "mgr",
            Box::new(FullReplManager::new(vec![h1], acl_with(UserId(1)), SimDuration::from_millis(200))),
            ClockSpec::Perfect,
        );
        world.inject(
            SimTime::from_secs(1),
            mgr,
            BaselineMsg::Admin {
                op: AclOp::Revoke { app: AppId(0), user: UserId(1), right: Right::Use },
            },
        );
        world.run_until(SimTime::from_secs(2));
        let seen = world.node_as::<FullReplHost>(h1).revoke_seen_at().expect("must converge");
        assert!(seen.as_nanos() >= SimTime::from_secs(1).as_nanos());
    }
}
