//! Wire format shared by the three baseline strategies.

use wanacl_core::msg::{AclOp, OpId};
use wanacl_core::types::UserId;

/// A logical timestamp for last-writer-wins gossip: `(counter, origin)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Stamp {
    /// Lamport-style counter.
    pub counter: u64,
    /// Tie-breaking origin id.
    pub origin: u32,
}

/// One gossiped ACL entry: the user, the right's present/absent state,
/// and the stamp of the update that produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GossipEntry {
    /// The user.
    pub user: UserId,
    /// Whether the user currently holds the `use` right.
    pub has_use: bool,
    /// When that state was written.
    pub stamp: Stamp,
}

/// Messages of all three baseline strategies (variants document which
/// strategy uses them).
#[derive(Debug, Clone, PartialEq)]
pub enum BaselineMsg {
    /// user → host: access request (all strategies).
    Invoke {
        /// The requesting user.
        user: UserId,
        /// Request id, echoed back.
        req: u64,
    },
    /// host → user: decision (all strategies).
    InvokeReply {
        /// Echo of the request id.
        req: u64,
        /// Whether access was allowed.
        allowed: bool,
    },
    /// admin → manager: an ACL change (all strategies).
    Admin {
        /// The operation.
        op: AclOp,
    },
    /// manager → host: full-replication push of one operation.
    AclPush {
        /// Operation id for idempotence/acks.
        id: OpId,
        /// The operation.
        op: AclOp,
    },
    /// host → manager: full-replication ack.
    AclPushAck {
        /// The acknowledged operation.
        id: OpId,
    },
    /// host → manager: local-only strategy lookup ("does *your* local
    /// state grant this user?").
    LocateQuery {
        /// The user checked.
        user: UserId,
        /// Query id.
        req: u64,
    },
    /// manager → host: local-only reply.
    LocateReply {
        /// Echo of the query id.
        req: u64,
        /// Whether this manager's local state grants the right.
        has_right: bool,
    },
    /// manager ↔ manager: eventual-consistency anti-entropy exchange.
    Gossip {
        /// Entries with stamps; receiver keeps the newest per user.
        entries: Vec<GossipEntry>,
    },
    /// host → manager: eventual-consistency check (one manager, C = 1).
    CheckQuery {
        /// The user checked.
        user: UserId,
        /// Query id.
        req: u64,
    },
    /// manager → host: eventual-consistency reply.
    CheckReply {
        /// Echo of the query id.
        req: u64,
        /// Whether access is allowed per this replica.
        allowed: bool,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stamps_order_by_counter_then_origin() {
        let a = Stamp { counter: 1, origin: 5 };
        let b = Stamp { counter: 2, origin: 0 };
        let c = Stamp { counter: 2, origin: 1 };
        assert!(a < b);
        assert!(b < c);
    }

    #[test]
    fn messages_compare() {
        let m1 = BaselineMsg::Invoke { user: UserId(1), req: 7 };
        let m2 = BaselineMsg::Invoke { user: UserId(1), req: 7 };
        assert_eq!(m1, m2);
    }
}
