//! The eventual-consistency comparator (\[23\] in the paper: Samarati,
//! Ammann & Jajodia, *Maintaining replicated authorization in distributed
//! database systems*).
//!
//! Managers hold full replicas and reconcile by periodic last-writer-wins
//! anti-entropy gossip; hosts check against any single manager. Updates
//! survive partitions and converge *eventually* — but, as the paper's
//! related-work section stresses, "no guarantees are made on when the
//! information will be updated nor do the algorithms make it possible for
//! different applications to make different security versus availability
//! tradeoffs."

use std::any::Any;
use std::collections::BTreeMap;

use wanacl_core::msg::AclOp;
use wanacl_core::types::UserId;
use wanacl_sim::clock::LocalTime;
use wanacl_sim::node::{Context, Node, NodeId, TimerId};
use wanacl_sim::time::SimDuration;

use crate::msg::{BaselineMsg, GossipEntry, Stamp};

const TAG_GOSSIP: u64 = 1 << 56;
const TAG_TIMEOUT: u64 = 2 << 56;
const TAG_MASK: u64 = (1 << 56) - 1;

/// A gossiping ACL replica.
#[derive(Debug)]
pub struct EventualManager {
    peers: Vec<NodeId>,
    origin: u32,
    /// user → (has `use` right, stamp of last write).
    state: BTreeMap<UserId, (bool, Stamp)>,
    counter: u64,
    gossip_interval: SimDuration,
    /// When a revoke for the probe user first became visible here.
    revoke_seen_at: Option<LocalTime>,
}

impl EventualManager {
    /// Creates a replica.
    pub fn new(
        peers: Vec<NodeId>,
        origin: u32,
        initial_users: Vec<UserId>,
        gossip_interval: SimDuration,
    ) -> Self {
        let state = initial_users
            .into_iter()
            .map(|u| (u, (true, Stamp { counter: 0, origin: 0 })))
            .collect();
        EventualManager {
            peers,
            origin,
            state,
            counter: 0,
            gossip_interval,
            revoke_seen_at: None,
        }
    }

    /// Whether this replica currently grants `use` to `user`.
    pub fn grants(&self, user: UserId) -> bool {
        self.state.get(&user).map(|(g, _)| *g).unwrap_or(false)
    }

    /// When a revoke first became visible at this replica.
    pub fn revoke_seen_at(&self) -> Option<LocalTime> {
        self.revoke_seen_at
    }

    fn snapshot(&self) -> Vec<GossipEntry> {
        self.state
            .iter()
            .map(|(user, (has_use, stamp))| GossipEntry { user: *user, has_use: *has_use, stamp: *stamp })
            .collect()
    }

    fn merge(&mut self, entries: Vec<GossipEntry>, now: LocalTime) {
        for e in entries {
            self.counter = self.counter.max(e.stamp.counter);
            let newer = match self.state.get(&e.user) {
                Some((_, stamp)) => e.stamp > *stamp,
                None => true,
            };
            if newer {
                if !e.has_use && self.state.get(&e.user).map(|(g, _)| *g).unwrap_or(false)
                    && self.revoke_seen_at.is_none()
                {
                    self.revoke_seen_at = Some(now);
                }
                self.state.insert(e.user, (e.has_use, e.stamp));
            }
        }
    }
}

impl Node for EventualManager {
    type Msg = BaselineMsg;

    fn on_start(&mut self, ctx: &mut Context<'_, BaselineMsg>) {
        ctx.set_timer(self.gossip_interval, TAG_GOSSIP);
    }

    fn on_message(&mut self, ctx: &mut Context<'_, BaselineMsg>, from: NodeId, msg: BaselineMsg) {
        match msg {
            BaselineMsg::Admin { op } => {
                self.counter += 1;
                let stamp = Stamp { counter: self.counter, origin: self.origin };
                match op {
                    AclOp::Add { user, .. } => {
                        self.state.insert(user, (true, stamp));
                    }
                    AclOp::Revoke { user, .. } => {
                        self.state.insert(user, (false, stamp));
                        if self.revoke_seen_at.is_none() {
                            self.revoke_seen_at = Some(ctx.local_now());
                        }
                    }
                }
            }
            BaselineMsg::Gossip { entries } => {
                self.merge(entries, ctx.local_now());
            }
            BaselineMsg::CheckQuery { user, req } => {
                ctx.metric_incr("base.ec.check_replies");
                ctx.send(from, BaselineMsg::CheckReply { req, allowed: self.grants(user) });
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, BaselineMsg>, _tag: u64) {
        // Push anti-entropy: send the full state to one random peer per
        // round (classic rumor-mongering cadence, deterministic per seed).
        if !self.peers.is_empty() {
            let peer = *ctx.rng().choose(&self.peers);
            ctx.metric_incr("base.ec.gossip_msgs");
            let entries = self.snapshot();
            ctx.send(peer, BaselineMsg::Gossip { entries });
        }
        ctx.set_timer(self.gossip_interval, TAG_GOSSIP);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[derive(Debug)]
struct PendingCheck {
    requester: NodeId,
    user_req: u64,
    timer: TimerId,
}

/// A host checking against a single manager per request (round-robin),
/// with no cache expiry semantics — the comparator has no time bounds.
#[derive(Debug)]
pub struct EventualHost {
    managers: Vec<NodeId>,
    timeout: SimDuration,
    next: usize,
    next_req: u64,
    pending: BTreeMap<u64, PendingCheck>,
    allowed: u64,
    denied: u64,
    timeouts: u64,
}

impl EventualHost {
    /// Creates a host consulting the given replicas round-robin.
    pub fn new(managers: Vec<NodeId>, timeout: SimDuration) -> Self {
        EventualHost {
            managers,
            timeout,
            next: 0,
            next_req: 0,
            pending: BTreeMap::new(),
            allowed: 0,
            denied: 0,
            timeouts: 0,
        }
    }

    /// `(allowed, denied, timeouts)`.
    pub fn decisions(&self) -> (u64, u64, u64) {
        (self.allowed, self.denied, self.timeouts)
    }
}

impl Node for EventualHost {
    type Msg = BaselineMsg;

    fn on_message(&mut self, ctx: &mut Context<'_, BaselineMsg>, from: NodeId, msg: BaselineMsg) {
        match msg {
            BaselineMsg::Invoke { user, req } => {
                ctx.metric_incr("base.ec.checks");
                self.next_req += 1;
                let check_req = self.next_req;
                let mgr = self.managers[self.next % self.managers.len()];
                self.next += 1;
                ctx.metric_incr("base.ec.check_queries");
                ctx.send(mgr, BaselineMsg::CheckQuery { user, req: check_req });
                let timer = ctx.set_timer(self.timeout, TAG_TIMEOUT | check_req);
                self.pending.insert(check_req, PendingCheck { requester: from, user_req: req, timer });
            }
            BaselineMsg::CheckReply { req, allowed } => {
                let Some(p) = self.pending.remove(&req) else { return };
                ctx.cancel_timer(p.timer);
                if allowed {
                    self.allowed += 1;
                } else {
                    self.denied += 1;
                }
                ctx.send(p.requester, BaselineMsg::InvokeReply { req: p.user_req, allowed });
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, BaselineMsg>, tag: u64) {
        let req = tag & TAG_MASK;
        if let Some(p) = self.pending.remove(&req) {
            self.timeouts += 1;
            ctx.send(p.requester, BaselineMsg::InvokeReply { req: p.user_req, allowed: false });
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wanacl_core::types::AppId;
    use wanacl_sim::clock::ClockSpec;
    use wanacl_sim::net::partition::ScheduledPartitions;
    use wanacl_sim::net::WanNet;
    use wanacl_sim::time::SimTime;
    use wanacl_sim::world::World;

    fn build(world: &mut World<BaselineMsg>, m: usize) -> (Vec<NodeId>, NodeId) {
        let ids: Vec<NodeId> = (0..m).map(NodeId::from_index).collect();
        for i in 0..m {
            let peers = ids.iter().copied().filter(|p| *p != ids[i]).collect();
            let got = world.add_node(
                format!("m{i}"),
                Box::new(EventualManager::new(
                    peers,
                    i as u32,
                    vec![UserId(1)],
                    SimDuration::from_millis(200),
                )),
                ClockSpec::Perfect,
            );
            assert_eq!(got, ids[i]);
        }
        let host = world.add_node(
            "host",
            Box::new(EventualHost::new(ids.clone(), SimDuration::from_millis(500))),
            ClockSpec::Perfect,
        );
        (ids, host)
    }

    #[test]
    fn checks_need_one_manager_only() {
        let mut world: World<BaselineMsg> = World::new(1);
        let (_mgrs, host) = build(&mut world, 3);
        world.inject(SimTime::from_millis(1), host, BaselineMsg::Invoke { user: UserId(1), req: 1 });
        world.run_until(SimTime::from_secs(1));
        assert_eq!(world.node_as::<EventualHost>(host).decisions().0, 1);
        assert_eq!(world.metrics().counter("base.ec.check_queries"), 1);
    }

    #[test]
    fn revoke_converges_via_gossip() {
        let mut world: World<BaselineMsg> = World::new(2);
        let (mgrs, _host) = build(&mut world, 4);
        world.inject(
            SimTime::from_secs(1),
            mgrs[0],
            BaselineMsg::Admin {
                op: AclOp::Revoke { app: AppId(0), user: UserId(1), right: wanacl_core::types::Right::Use },
            },
        );
        world.run_until(SimTime::from_secs(20));
        for &m in &mgrs {
            assert!(
                !world.node_as::<EventualManager>(m).grants(UserId(1)),
                "replica {m} must converge"
            );
        }
    }

    #[test]
    fn stale_replica_grants_during_partition_without_any_bound() {
        // Manager 1 partitioned away right after the revoke at manager 0:
        // it keeps granting for the whole partition, however long — the
        // weakness the paper's Te bound removes.
        let cut = ScheduledPartitions::cut_between(
            vec![NodeId::from_index(0)],
            vec![NodeId::from_index(1)],
            SimTime::from_millis(500),
            SimTime::from_secs(10_000),
        );
        let mut world: World<BaselineMsg> = World::new(3);
        world.set_net(Box::new(
            WanNet::builder()
                .constant_delay(SimDuration::from_millis(20))
                .partitions(Box::new(cut))
                .build(),
        ));
        let (mgrs, host) = build(&mut world, 2);
        world.inject(
            SimTime::from_secs(1),
            mgrs[0],
            BaselineMsg::Admin {
                op: AclOp::Revoke { app: AppId(0), user: UserId(1), right: wanacl_core::types::Right::Use },
            },
        );
        // Hours later, a check that lands on the stale replica still
        // grants access.
        world.run_until(SimTime::from_secs(7_200));
        // Round-robin: first check goes to manager 0 (denied), second to
        // manager 1 (stale grant).
        world.inject(SimTime::from_secs(7_200), host, BaselineMsg::Invoke { user: UserId(1), req: 5 });
        world.inject(SimTime::from_secs(7_201), host, BaselineMsg::Invoke { user: UserId(1), req: 6 });
        world.run_until(SimTime::from_secs(7_210));
        let (allowed, denied, _t) = world.node_as::<EventualHost>(host).decisions();
        assert_eq!(denied, 1);
        assert_eq!(allowed, 1, "stale replica must still grant — no time bound");
    }

    #[test]
    fn lww_resolves_concurrent_updates_deterministically() {
        let mut world: World<BaselineMsg> = World::new(4);
        let (mgrs, _host) = build(&mut world, 2);
        // Concurrent: add at m0, revoke at m1 (same counter, origin
        // breaks the tie — m1 wins with origin 1 > 0).
        world.inject(
            SimTime::from_secs(1),
            mgrs[0],
            BaselineMsg::Admin {
                op: AclOp::Add { app: AppId(0), user: UserId(9), right: wanacl_core::types::Right::Use },
            },
        );
        world.inject(
            SimTime::from_secs(1),
            mgrs[1],
            BaselineMsg::Admin {
                op: AclOp::Revoke { app: AppId(0), user: UserId(9), right: wanacl_core::types::Right::Use },
            },
        );
        world.run_until(SimTime::from_secs(30));
        let g0 = world.node_as::<EventualManager>(mgrs[0]).grants(UserId(9));
        let g1 = world.node_as::<EventualManager>(mgrs[1]).grants(UserId(9));
        assert_eq!(g0, g1, "replicas must agree after convergence");
        assert!(!g0, "higher origin id wins the tie: revoke");
    }
}
