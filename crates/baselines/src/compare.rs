//! The E8 comparison harness: the same workload run under each
//! dissemination strategy of §3, plus the paper's own design, measuring
//! the costs the paper argues about qualitatively.

use wanacl_core::msg::AclOp;
use wanacl_core::prelude::{Policy, Scenario};
use wanacl_core::types::{Acl, AppId, Right, UserId};
use wanacl_sim::clock::ClockSpec;
use wanacl_sim::net::partition::GilbertElliott;
use wanacl_sim::net::WanNet;
use wanacl_sim::node::{Context, Node, NodeId};
use wanacl_sim::time::{SimDuration, SimTime};
use wanacl_sim::world::World;

use crate::eventual::{EventualHost, EventualManager};
use crate::full_replication::{FullReplHost, FullReplManager};
use crate::local_only::{LocalOnlyHost, LocalOnlyManager};
use crate::msg::BaselineMsg;

/// Which strategy to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// The paper's protocol (managers + cached leases + quorums).
    CoreProtocol,
    /// §3 option 1: replicate the ACL to every host.
    FullReplication,
    /// §3 option 3: updates stay at the issuing manager.
    LocalOnly,
    /// The \[23\] comparator: gossip replicas, eventual consistency.
    Eventual,
}

impl Strategy {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Strategy::CoreProtocol => "core (leases+quorum)",
            Strategy::FullReplication => "full replication",
            Strategy::LocalOnly => "local-only",
            Strategy::Eventual => "eventual gossip",
        }
    }

    /// All strategies, core first.
    pub fn all() -> [Strategy; 4] {
        [Strategy::CoreProtocol, Strategy::FullReplication, Strategy::LocalOnly, Strategy::Eventual]
    }
}

/// Workload shape shared by all strategies.
#[derive(Debug, Clone, Copy)]
pub struct ComparisonConfig {
    /// Managers `M`.
    pub managers: usize,
    /// Application hosts.
    pub hosts: usize,
    /// Users (all granted at bootstrap).
    pub users: usize,
    /// Mean think time between one user's requests.
    pub invoke_mean: SimDuration,
    /// Total simulated time.
    pub horizon: SimDuration,
    /// Congestion model: mean connected spell.
    pub mean_good: SimDuration,
    /// Congestion model: mean partitioned spell.
    pub mean_bad: SimDuration,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ComparisonConfig {
    fn default() -> Self {
        ComparisonConfig {
            managers: 4,
            hosts: 3,
            users: 5,
            invoke_mean: SimDuration::from_secs(5),
            horizon: SimDuration::from_secs(600),
            mean_good: SimDuration::from_secs(90),
            mean_bad: SimDuration::from_secs(10),
            seed: 1,
        }
    }
}

/// What one strategy cost under the workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StrategyReport {
    /// Which strategy.
    pub strategy: Strategy,
    /// All network messages sent.
    pub total_messages: u64,
    /// Access checks performed at hosts.
    pub checks: u64,
    /// Control messages (queries + replies + pushes) per check.
    pub control_per_check: f64,
    /// Messages spent disseminating the one revoke.
    pub update_messages: u64,
    /// Requests by the revoked user that were still *allowed* after the
    /// revoke was issued (staleness exposure).
    pub stale_allows: u64,
    /// Fraction of all requests that were allowed (availability proxy;
    /// every user is entitled until the revoke).
    pub allowed_fraction: f64,
}

/// Runs one strategy under the shared workload. A single revoke of user
/// 1 is issued at `horizon/2`; the congestion model runs throughout.
pub fn run_strategy(strategy: Strategy, cfg: &ComparisonConfig) -> StrategyReport {
    match strategy {
        Strategy::CoreProtocol => run_core(cfg),
        _ => run_baseline(strategy, cfg),
    }
}

fn congested_net(cfg: &ComparisonConfig) -> WanNet {
    WanNet::builder()
        .constant_delay(SimDuration::from_millis(30))
        .partitions(Box::new(GilbertElliott::new(cfg.mean_good, cfg.mean_bad)))
        .build()
}

fn run_core(cfg: &ComparisonConfig) -> StrategyReport {
    let policy = Policy::builder((cfg.managers / 2).max(1))
        .revocation_bound(SimDuration::from_secs(60))
        .query_timeout(SimDuration::from_millis(500))
        .max_attempts(2)
        .build();
    let mut d = Scenario::builder(cfg.seed)
        .managers(cfg.managers)
        .hosts(cfg.hosts)
        .users(cfg.users)
        .policy(policy)
        .all_users_granted()
        .workload(cfg.invoke_mean)
        .net(Box::new(congested_net(cfg)))
        .build();
    let revoke_at = SimTime::ZERO + cfg.horizon.mul_f64(0.5);
    d.run_until(revoke_at);
    let sent_before = revoked_user_allowed_core(&d);
    d.revoke(UserId(1), Right::Use);
    d.run_until(SimTime::ZERO + cfg.horizon);

    let m = d.world.metrics();
    let checks = m.counter("host.invokes");
    let control = m.counter("host.queries_sent")
        + m.counter("mgr.grants")
        + m.counter("mgr.denies");
    let update = m.counter("mgr.updates_sent")
        + m.counter("mgr.updates_resent")
        + m.counter("mgr.revoke_notices")
        + m.counter("mgr.revoke_notices_resent");
    let stats = d.aggregate_user_stats();
    StrategyReport {
        strategy: Strategy::CoreProtocol,
        total_messages: m.counter("net.sent"),
        checks,
        control_per_check: control as f64 / checks.max(1) as f64,
        update_messages: update,
        stale_allows: revoked_user_allowed_core(&d).saturating_sub(sent_before),
        allowed_fraction: stats.allowed as f64 / stats.sent.max(1) as f64,
    }
}

fn revoked_user_allowed_core(d: &wanacl_core::scenario::Deployment) -> u64 {
    d.user_agent(0).stats().allowed
}

/// A minimal workload driver for the baseline strategies.
#[derive(Debug)]
struct BaselineUser {
    user: UserId,
    hosts: Vec<NodeId>,
    mean: SimDuration,
    next_req: u64,
    sent: u64,
    allowed: u64,
    denied: u64,
}

impl Node for BaselineUser {
    type Msg = BaselineMsg;

    fn on_start(&mut self, ctx: &mut Context<'_, BaselineMsg>) {
        let wait = SimDuration::from_secs_f64(ctx.rng().exponential(self.mean.as_secs_f64()));
        ctx.set_timer(wait, 0);
    }

    fn on_message(&mut self, _ctx: &mut Context<'_, BaselineMsg>, _from: NodeId, msg: BaselineMsg) {
        if let BaselineMsg::InvokeReply { allowed, .. } = msg {
            if allowed {
                self.allowed += 1;
            } else {
                self.denied += 1;
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, BaselineMsg>, _tag: u64) {
        self.next_req += 1;
        self.sent += 1;
        let host = *ctx.rng().choose(&self.hosts);
        ctx.send(host, BaselineMsg::Invoke { user: self.user, req: self.next_req });
        let wait = SimDuration::from_secs_f64(ctx.rng().exponential(self.mean.as_secs_f64()));
        ctx.set_timer(wait, 0);
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

fn run_baseline(strategy: Strategy, cfg: &ComparisonConfig) -> StrategyReport {
    let mut world: World<BaselineMsg> = World::new(cfg.seed);
    world.set_net(Box::new(congested_net(cfg)));

    let granted: Vec<UserId> = (1..=cfg.users).map(|i| UserId(i as u64)).collect();
    let mut acl = Acl::new();
    for &u in &granted {
        acl.add(u, Right::Use);
    }

    // Managers first (dense ids), then hosts, then users.
    let manager_ids: Vec<NodeId> = (0..cfg.managers).map(NodeId::from_index).collect();
    let host_ids: Vec<NodeId> =
        (cfg.managers..cfg.managers + cfg.hosts).map(NodeId::from_index).collect();

    match strategy {
        Strategy::FullReplication => {
            for (i, &id) in manager_ids.iter().enumerate() {
                let node = FullReplManager::new(
                    host_ids.clone(),
                    acl.clone(),
                    SimDuration::from_millis(500),
                );
                let got = world.add_node(format!("m{i}"), Box::new(node), ClockSpec::Perfect);
                assert_eq!(got, id);
            }
            for (i, &id) in host_ids.iter().enumerate() {
                let got = world.add_node(
                    format!("h{i}"),
                    Box::new(FullReplHost::new(acl.clone())),
                    ClockSpec::Perfect,
                );
                assert_eq!(got, id);
            }
        }
        Strategy::LocalOnly => {
            for (i, &id) in manager_ids.iter().enumerate() {
                // Bootstrap rights live at manager 0 (they were "issued"
                // there).
                let local = if i == 0 { acl.clone() } else { Acl::new() };
                let got = world.add_node(
                    format!("m{i}"),
                    Box::new(LocalOnlyManager::new(local)),
                    ClockSpec::Perfect,
                );
                assert_eq!(got, id);
            }
            for (i, &id) in host_ids.iter().enumerate() {
                let got = world.add_node(
                    format!("h{i}"),
                    Box::new(LocalOnlyHost::new(manager_ids.clone(), SimDuration::from_millis(500))),
                    ClockSpec::Perfect,
                );
                assert_eq!(got, id);
            }
        }
        Strategy::Eventual => {
            for (i, &id) in manager_ids.iter().enumerate() {
                let peers = manager_ids.iter().copied().filter(|p| *p != id).collect();
                let got = world.add_node(
                    format!("m{i}"),
                    Box::new(EventualManager::new(
                        peers,
                        i as u32,
                        granted.clone(),
                        SimDuration::from_secs(2),
                    )),
                    ClockSpec::Perfect,
                );
                assert_eq!(got, id);
            }
            for (i, &id) in host_ids.iter().enumerate() {
                let got = world.add_node(
                    format!("h{i}"),
                    Box::new(EventualHost::new(manager_ids.clone(), SimDuration::from_millis(500))),
                    ClockSpec::Perfect,
                );
                assert_eq!(got, id);
            }
        }
        Strategy::CoreProtocol => unreachable!("handled by run_core"),
    }

    let mut user_nodes = Vec::new();
    for (i, &u) in granted.iter().enumerate() {
        let node = BaselineUser {
            user: u,
            hosts: host_ids.clone(),
            mean: cfg.invoke_mean,
            next_req: 0,
            sent: 0,
            allowed: 0,
            denied: 0,
        };
        user_nodes.push(world.add_node(format!("u{i}"), Box::new(node), ClockSpec::Perfect));
    }

    // Revoke user 1 at horizon/2, at manager 0.
    let revoke_at = SimTime::ZERO + cfg.horizon.mul_f64(0.5);
    world.run_until(revoke_at);
    let user1_allowed_before = world.node_as::<BaselineUser>(user_nodes[0]).allowed;
    let msgs_before_update = world.metrics().counter("net.sent");
    world.inject(
        revoke_at,
        manager_ids[0],
        BaselineMsg::Admin {
            op: AclOp::Revoke { app: AppId(0), user: UserId(1), right: Right::Use },
        },
    );
    world.run_until(SimTime::ZERO + cfg.horizon);
    let _ = msgs_before_update;

    let m = world.metrics();
    let (checks, control, update) = match strategy {
        Strategy::FullReplication => (
            m.counter("base.full.checks"),
            0,
            m.counter("base.full.push_msgs"),
        ),
        Strategy::LocalOnly => (
            m.counter("base.local.checks"),
            m.counter("base.local.locate_queries") + m.counter("base.local.locate_replies"),
            0,
        ),
        Strategy::Eventual => (
            m.counter("base.ec.checks"),
            m.counter("base.ec.check_queries") + m.counter("base.ec.check_replies"),
            m.counter("base.ec.gossip_msgs"),
        ),
        Strategy::CoreProtocol => unreachable!(),
    };

    let mut sent = 0u64;
    let mut allowed = 0u64;
    for &n in &user_nodes {
        let u = world.node_as::<BaselineUser>(n);
        sent += u.sent;
        allowed += u.allowed;
    }
    let user1 = world.node_as::<BaselineUser>(user_nodes[0]);

    StrategyReport {
        strategy,
        total_messages: m.counter("net.sent"),
        checks,
        control_per_check: control as f64 / checks.max(1) as f64,
        update_messages: update,
        stale_allows: user1.allowed.saturating_sub(user1_allowed_before),
        allowed_fraction: allowed as f64 / sent.max(1) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg(seed: u64) -> ComparisonConfig {
        ComparisonConfig {
            horizon: SimDuration::from_secs(300),
            seed,
            ..ComparisonConfig::default()
        }
    }

    #[test]
    fn full_replication_checks_are_free() {
        let r = run_strategy(Strategy::FullReplication, &small_cfg(1));
        assert_eq!(r.control_per_check, 0.0);
        assert!(r.update_messages >= 3, "one push per host at least: {r:?}");
        assert!(r.checks > 10);
    }

    #[test]
    fn local_only_checks_cost_order_m() {
        let r = run_strategy(Strategy::LocalOnly, &small_cfg(2));
        // M queries out; replies bounded by 2M (early-grant cuts some).
        assert!(r.control_per_check >= 4.0, "{r:?}");
        assert!(r.control_per_check <= 8.0, "{r:?}");
        assert_eq!(r.update_messages, 0);
    }

    #[test]
    fn core_protocol_amortizes_checks_with_cache() {
        let core = run_strategy(Strategy::CoreProtocol, &small_cfg(3));
        let local = run_strategy(Strategy::LocalOnly, &small_cfg(3));
        assert!(
            core.control_per_check < local.control_per_check,
            "caching must beat query-all-managers: {core:?} vs {local:?}"
        );
    }

    #[test]
    fn eventual_uses_one_manager_per_check() {
        let r = run_strategy(Strategy::Eventual, &small_cfg(4));
        assert!(r.control_per_check <= 2.0 + 1e-9, "{r:?}");
        assert!(r.update_messages > 0, "gossip runs continuously: {r:?}");
    }

    #[test]
    fn all_strategies_mostly_allow_entitled_users() {
        for (i, s) in Strategy::all().into_iter().enumerate() {
            let r = run_strategy(s, &small_cfg(10 + i as u64));
            assert!(
                r.allowed_fraction > 0.5,
                "{}: allowed fraction {}",
                s.name(),
                r.allowed_fraction
            );
        }
    }
}
