//! # wanacl-baselines — the dissemination strategies the paper compares
//!
//! §3 of the paper motivates its design by contrasting three placements
//! of access-control information:
//!
//! 1. **Full replication to every host** ([`full_replication`]) — free
//!    checks, `O(|Hosts|)` updates, unbounded staleness under partition.
//! 2. **Managers only, hosts query** — *the paper's design with caching*,
//!    implemented in `wanacl-core`.
//! 3. **Local-only at the issuing manager** ([`local_only`]) — free
//!    updates, `O(M)` per check.
//!
//! Plus the related-work comparator \[23\] (Samarati et al.): replicated
//! authorization with **eventual consistency** via gossip
//! ([`eventual`]), which survives partitions but offers no revocation
//! time bound and no per-application tradeoff.
//!
//! [`compare`] runs an identical workload under all four and reports the
//! costs (experiment E8 of DESIGN.md).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod compare;
pub mod eventual;
pub mod full_replication;
pub mod local_only;
pub mod msg;

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::compare::{run_strategy, ComparisonConfig, Strategy, StrategyReport};
    pub use crate::eventual::{EventualHost, EventualManager};
    pub use crate::full_replication::{FullReplHost, FullReplManager};
    pub use crate::local_only::{LocalOnlyHost, LocalOnlyManager};
    pub use crate::msg::BaselineMsg;
}
