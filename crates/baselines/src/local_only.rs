//! Baseline 3 (§3, third option): updates change **only the issuing
//! manager's local state**; a check must consult *all* managers to locate
//! the right.
//!
//! Updates are free, but every check costs `O(M)` messages and fails
//! whenever the one manager holding the record is unreachable.

use std::any::Any;
use std::collections::BTreeMap;

use wanacl_core::msg::AclOp;
use wanacl_core::types::{Acl, Right, UserId};
use wanacl_sim::node::{Context, Node, NodeId, TimerId};
use wanacl_sim::time::SimDuration;

use crate::msg::BaselineMsg;

const TAG_TIMEOUT: u64 = 1 << 56;
const TAG_MASK: u64 = (1 << 56) - 1;

/// A manager holding only the rights that were granted *at this manager*.
#[derive(Debug)]
pub struct LocalOnlyManager {
    acl: Acl,
}

impl LocalOnlyManager {
    /// Creates the manager with its locally-issued bootstrap rights.
    pub fn new(initial_acl: Acl) -> Self {
        LocalOnlyManager { acl: initial_acl }
    }

    /// Whether this manager's local state grants `use` to `user`.
    pub fn grants(&self, user: UserId) -> bool {
        self.acl.has(user, Right::Use)
    }
}

impl Node for LocalOnlyManager {
    type Msg = BaselineMsg;

    fn on_message(&mut self, ctx: &mut Context<'_, BaselineMsg>, from: NodeId, msg: BaselineMsg) {
        match msg {
            BaselineMsg::Admin { op } => match op {
                AclOp::Add { user, right, .. } => self.acl.add(user, right),
                AclOp::Revoke { user, right, .. } => self.acl.revoke(user, right),
            },
            BaselineMsg::LocateQuery { user, req } => {
                ctx.metric_incr("base.local.locate_replies");
                ctx.send(
                    from,
                    BaselineMsg::LocateReply { req, has_right: self.acl.has(user, Right::Use) },
                );
            }
            _ => {}
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[derive(Debug)]
struct PendingCheck {
    requester: NodeId,
    user_req: u64,
    replies: u64,
    granted: bool,
    timer: TimerId,
}

/// A host that must ask every manager on each check (no cache in this
/// baseline — the paper's own design adds the cache on top of option 2).
#[derive(Debug)]
pub struct LocalOnlyHost {
    managers: Vec<NodeId>,
    timeout: SimDuration,
    pending: BTreeMap<u64, PendingCheck>,
    next_req: u64,
    allowed: u64,
    denied: u64,
}

impl LocalOnlyHost {
    /// Creates a host that consults the given managers.
    pub fn new(managers: Vec<NodeId>, timeout: SimDuration) -> Self {
        LocalOnlyHost {
            managers,
            timeout,
            pending: BTreeMap::new(),
            next_req: 0,
            allowed: 0,
            denied: 0,
        }
    }

    /// `(allowed, denied)` decision counts.
    pub fn decisions(&self) -> (u64, u64) {
        (self.allowed, self.denied)
    }

    fn finish(&mut self, ctx: &mut Context<'_, BaselineMsg>, req: u64, allowed: bool) {
        let Some(p) = self.pending.remove(&req) else { return };
        ctx.cancel_timer(p.timer);
        if allowed {
            self.allowed += 1;
        } else {
            self.denied += 1;
        }
        ctx.send(p.requester, BaselineMsg::InvokeReply { req: p.user_req, allowed });
    }
}

impl Node for LocalOnlyHost {
    type Msg = BaselineMsg;

    fn on_message(&mut self, ctx: &mut Context<'_, BaselineMsg>, from: NodeId, msg: BaselineMsg) {
        match msg {
            BaselineMsg::Invoke { user, req } => {
                ctx.metric_incr("base.local.checks");
                self.next_req += 1;
                let check_req = self.next_req;
                for m in &self.managers {
                    ctx.metric_incr("base.local.locate_queries");
                    ctx.send(*m, BaselineMsg::LocateQuery { user, req: check_req });
                }
                let timer = ctx.set_timer(self.timeout, TAG_TIMEOUT | check_req);
                self.pending.insert(
                    check_req,
                    PendingCheck { requester: from, user_req: req, replies: 0, granted: false, timer },
                );
            }
            BaselineMsg::LocateReply { req, has_right } => {
                let total = self.managers.len() as u64;
                let Some(p) = self.pending.get_mut(&req) else { return };
                p.replies += 1;
                p.granted |= has_right;
                let done = p.granted || p.replies >= total;
                let granted = p.granted;
                if done {
                    // Either some manager located the right, or all
                    // managers answered and none did.
                    self.finish(ctx, req, granted);
                }
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, BaselineMsg>, tag: u64) {
        let req = tag & TAG_MASK;
        // Missing replies count as "right not located": fail closed.
        self.finish(ctx, req, false);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wanacl_core::types::AppId;
    use wanacl_sim::clock::ClockSpec;
    use wanacl_sim::time::SimTime;
    use wanacl_sim::world::World;

    fn setup(world: &mut World<BaselineMsg>, grant_at: usize) -> (Vec<NodeId>, NodeId) {
        let mut managers = Vec::new();
        for i in 0..3 {
            let mut acl = Acl::new();
            if i == grant_at {
                acl.add(UserId(1), Right::Use);
            }
            managers.push(world.add_node(
                format!("m{i}"),
                Box::new(LocalOnlyManager::new(acl)),
                ClockSpec::Perfect,
            ));
        }
        let host = world.add_node(
            "host",
            Box::new(LocalOnlyHost::new(managers.clone(), SimDuration::from_millis(500))),
            ClockSpec::Perfect,
        );
        (managers, host)
    }

    #[test]
    fn check_locates_right_at_one_manager() {
        let mut world: World<BaselineMsg> = World::new(1);
        let (_m, host) = setup(&mut world, 1);
        world.inject(SimTime::from_millis(1), host, BaselineMsg::Invoke { user: UserId(1), req: 1 });
        world.run_until(SimTime::from_secs(1));
        assert_eq!(world.node_as::<LocalOnlyHost>(host).decisions(), (1, 0));
        assert_eq!(world.metrics().counter("base.local.locate_queries"), 3);
    }

    #[test]
    fn check_denies_when_no_manager_grants() {
        let mut world: World<BaselineMsg> = World::new(2);
        let (_m, host) = setup(&mut world, 0);
        world.inject(SimTime::from_millis(1), host, BaselineMsg::Invoke { user: UserId(2), req: 1 });
        world.run_until(SimTime::from_secs(1));
        assert_eq!(world.node_as::<LocalOnlyHost>(host).decisions(), (0, 1));
    }

    #[test]
    fn revoke_at_owner_takes_immediate_effect() {
        let mut world: World<BaselineMsg> = World::new(3);
        let (managers, host) = setup(&mut world, 2);
        world.inject(
            SimTime::from_millis(1),
            managers[2],
            BaselineMsg::Admin {
                op: AclOp::Revoke { app: AppId(0), user: UserId(1), right: Right::Use },
            },
        );
        world.inject(SimTime::from_millis(200), host, BaselineMsg::Invoke { user: UserId(1), req: 2 });
        world.run_until(SimTime::from_secs(2));
        assert_eq!(world.node_as::<LocalOnlyHost>(host).decisions(), (0, 1));
    }

    #[test]
    fn unreachable_owner_means_denied() {
        // Crash the manager holding the right: the host can no longer
        // locate it — fail closed after the timeout.
        let mut world: World<BaselineMsg> = World::new(4);
        let (managers, host) = setup(&mut world, 1);
        world.schedule_crash(SimTime::from_millis(1), managers[1]);
        world.inject(SimTime::from_millis(10), host, BaselineMsg::Invoke { user: UserId(1), req: 3 });
        world.run_until(SimTime::from_secs(2));
        assert_eq!(world.node_as::<LocalOnlyHost>(host).decisions(), (0, 1));
    }
}
