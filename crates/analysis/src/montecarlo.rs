//! Monte Carlo estimators for the §4.1 model — an independent cross-check
//! of the closed-form binomial tails.

use wanacl_sim::rng::SimRng;

/// A Monte Carlo estimate with its standard error.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    /// The sample mean.
    pub value: f64,
    /// Standard error of the mean.
    pub std_error: f64,
    /// Number of trials.
    pub trials: u64,
}

impl Estimate {
    /// Whether `other` lies within `sigmas` standard errors.
    pub fn consistent_with(&self, other: f64, sigmas: f64) -> bool {
        (self.value - other).abs() <= sigmas * self.std_error.max(1e-9)
    }
}

impl std::fmt::Display for Estimate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.5} ± {:.5}", self.value, self.std_error)
    }
}

fn bernoulli_estimate(successes: u64, trials: u64) -> Estimate {
    let p = successes as f64 / trials as f64;
    Estimate { value: p, std_error: (p * (1.0 - p) / trials as f64).sqrt(), trials }
}

/// Estimates `PA(C)`: draw `M` manager accessibilities i.i.d. with
/// `P[accessible] = 1 − Pi` and count trials with at least `C` accessible.
///
/// # Panics
///
/// Panics if `trials` is zero or `c` outside `1..=m`.
pub fn estimate_pa(m: u64, c: u64, pi: f64, trials: u64, rng: &mut SimRng) -> Estimate {
    assert!(trials > 0, "need at least one trial");
    assert!((1..=m).contains(&c), "check quorum must be in 1..=M");
    let mut hits = 0u64;
    for _ in 0..trials {
        let accessible = (0..m).filter(|_| !rng.chance(pi)).count() as u64;
        if accessible >= c {
            hits += 1;
        }
    }
    bernoulli_estimate(hits, trials)
}

/// Estimates `PS(C)`: the revoking manager reaches at least `M − C` of
/// its `M − 1` peers.
///
/// # Panics
///
/// Panics if `trials` is zero or `c` outside `1..=m`.
pub fn estimate_ps(m: u64, c: u64, pi: f64, trials: u64, rng: &mut SimRng) -> Estimate {
    assert!(trials > 0, "need at least one trial");
    assert!((1..=m).contains(&c), "check quorum must be in 1..=M");
    let mut hits = 0u64;
    for _ in 0..trials {
        let reachable_peers = (0..m - 1).filter(|_| !rng.chance(pi)).count() as u64;
        if reachable_peers >= m - c {
            hits += 1;
        }
    }
    bernoulli_estimate(hits, trials)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{pa, ps};

    #[test]
    fn pa_estimate_matches_closed_form() {
        let mut rng = SimRng::seed_from(1);
        for &(m, c, pi) in &[(10u64, 5u64, 0.1), (10, 8, 0.2), (4, 2, 0.3)] {
            let est = estimate_pa(m, c, pi, 200_000, &mut rng);
            assert!(
                est.consistent_with(pa(m, c, pi), 4.0),
                "M={m} C={c} Pi={pi}: {est} vs {}",
                pa(m, c, pi)
            );
        }
    }

    #[test]
    fn ps_estimate_matches_closed_form() {
        let mut rng = SimRng::seed_from(2);
        for &(m, c, pi) in &[(10u64, 5u64, 0.1), (10, 3, 0.2), (6, 3, 0.25)] {
            let est = estimate_ps(m, c, pi, 200_000, &mut rng);
            assert!(
                est.consistent_with(ps(m, c, pi), 4.0),
                "M={m} C={c} Pi={pi}: {est} vs {}",
                ps(m, c, pi)
            );
        }
    }

    #[test]
    fn degenerate_probabilities_are_exact() {
        let mut rng = SimRng::seed_from(3);
        let est = estimate_pa(10, 5, 0.0, 1_000, &mut rng);
        assert_eq!(est.value, 1.0);
        assert_eq!(est.std_error, 0.0);
        let est = estimate_pa(10, 5, 1.0, 1_000, &mut rng);
        assert_eq!(est.value, 0.0);
    }

    #[test]
    fn estimates_are_deterministic_per_seed() {
        let a = estimate_pa(10, 5, 0.1, 10_000, &mut SimRng::seed_from(7));
        let b = estimate_pa(10, 5, 0.1, 10_000, &mut SimRng::seed_from(7));
        assert_eq!(a, b);
    }

    #[test]
    fn display_shows_error_bar() {
        let est = estimate_pa(10, 5, 0.1, 1_000, &mut SimRng::seed_from(9));
        assert!(est.to_string().contains('±'));
    }
}
