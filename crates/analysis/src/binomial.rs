//! Exact binomial and Poisson-binomial machinery underlying §4.1.

/// Binomial coefficient `C(n, k)` as `f64` (exact for the small `n` the
/// model uses; `n` up to ~50 stays well within `f64` integer precision).
///
/// # Examples
///
/// ```
/// use wanacl_analysis::binomial::choose;
///
/// assert_eq!(choose(10, 3), 120.0);
/// assert_eq!(choose(10, 0), 1.0);
/// assert_eq!(choose(3, 5), 0.0);
/// ```
pub fn choose(n: u64, k: u64) -> f64 {
    if k > n {
        return 0.0;
    }
    let k = k.min(n - k);
    let mut result = 1.0f64;
    for i in 0..k {
        result *= (n - i) as f64;
        result /= (i + 1) as f64;
    }
    result
}

/// Probability of exactly `k` successes among `n` i.i.d. trials with
/// success probability `p`.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 1]`.
pub fn pmf(n: u64, k: u64, p: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "probability must be in [0,1], got {p}");
    if k > n {
        return 0.0;
    }
    choose(n, k) * p.powi(k as i32) * (1.0 - p).powi((n - k) as i32)
}

/// Upper-tail probability `P[X >= k]` for `X ~ Binomial(n, p)`.
///
/// This is the exact shape of both `PA(C)` and `PS(C)` in §4.1.
pub fn tail_at_least(n: u64, k: u64, p: f64) -> f64 {
    (k..=n).map(|i| pmf(n, i, p)).sum()
}

/// Exact distribution of the number of successes among *independent but
/// heterogeneous* trials (Poisson binomial), via the standard O(n²) DP.
///
/// Used for the §4.1 heterogeneous extension where each manager has its
/// own accessibility probability. Returns `dist[k] = P[K = k]`.
///
/// # Panics
///
/// Panics if any probability is outside `[0, 1]`.
pub fn poisson_binomial(probs: &[f64]) -> Vec<f64> {
    for &p in probs {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0,1], got {p}");
    }
    let mut dist = vec![0.0; probs.len() + 1];
    dist[0] = 1.0;
    for (i, &p) in probs.iter().enumerate() {
        // Walk down so each trial is counted once.
        for k in (0..=i + 1).rev() {
            let stay = if k <= i { dist[k] * (1.0 - p) } else { 0.0 };
            let up = if k > 0 { dist[k - 1] * p } else { 0.0 };
            dist[k] = stay + up;
        }
    }
    dist
}

/// `P[K >= k]` for a Poisson-binomial `K`.
pub fn poisson_binomial_tail(probs: &[f64], k: usize) -> f64 {
    let dist = poisson_binomial(probs);
    dist.iter().skip(k).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    #[test]
    fn choose_small_values() {
        assert_eq!(choose(0, 0), 1.0);
        assert_eq!(choose(5, 2), 10.0);
        assert_eq!(choose(10, 10), 1.0);
        assert_eq!(choose(52, 5), 2_598_960.0);
    }

    #[test]
    fn pmf_sums_to_one() {
        for &(n, p) in &[(10u64, 0.1), (10, 0.5), (12, 0.2), (1, 0.9)] {
            let total: f64 = (0..=n).map(|k| pmf(n, k, p)).sum();
            assert!((total - 1.0).abs() < EPS, "n={n} p={p}: {total}");
        }
    }

    #[test]
    fn pmf_degenerate_probabilities() {
        assert_eq!(pmf(5, 5, 1.0), 1.0);
        assert_eq!(pmf(5, 0, 0.0), 1.0);
        assert_eq!(pmf(5, 3, 0.0), 0.0);
    }

    #[test]
    fn tail_bounds_and_monotonicity() {
        assert!((tail_at_least(10, 0, 0.3) - 1.0).abs() < EPS);
        let mut prev = 1.0;
        for k in 0..=10 {
            let t = tail_at_least(10, k, 0.3);
            assert!(t <= prev + EPS, "tail must be non-increasing in k");
            prev = t;
        }
    }

    #[test]
    fn tail_complements_pmf() {
        // P[X >= k] + P[X < k] == 1
        let n = 12;
        let p = 0.35;
        for k in 0..=n {
            let lower: f64 = (0..k).map(|i| pmf(n, i, p)).sum();
            assert!((tail_at_least(n, k, p) + lower - 1.0).abs() < 1e-10);
        }
    }

    #[test]
    fn poisson_binomial_matches_binomial_when_homogeneous() {
        let p = 0.3;
        let n = 8;
        let probs = vec![p; n];
        let dist = poisson_binomial(&probs);
        for (k, d) in dist.iter().enumerate() {
            assert!((d - pmf(n as u64, k as u64, p)).abs() < 1e-10, "k={k}");
        }
    }

    #[test]
    fn poisson_binomial_heterogeneous_known_case() {
        // Two trials: p1=0.5, p2=0.2.
        let dist = poisson_binomial(&[0.5, 0.2]);
        assert!((dist[0] - 0.4).abs() < EPS);
        assert!((dist[1] - 0.5).abs() < EPS);
        assert!((dist[2] - 0.1).abs() < EPS);
        assert!((poisson_binomial_tail(&[0.5, 0.2], 1) - 0.6).abs() < EPS);
    }

    #[test]
    fn poisson_binomial_empty_input() {
        let dist = poisson_binomial(&[]);
        assert_eq!(dist, vec![1.0]);
        assert!((poisson_binomial_tail(&[], 0) - 1.0).abs() < EPS);
    }
}
