//! Generators for the paper's Table 1 and Table 2, plus a plain-text
//! table renderer used by all the repro binaries.

use crate::model::{pa, ps};

/// One row of Table 1: `C`, then `(PA, PS)` per `Pi` column.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Row {
    /// The check quorum.
    pub c: u64,
    /// `(PA(C), PS(C))` for each requested `Pi`.
    pub cells: Vec<(f64, f64)>,
}

/// Regenerates Table 1: `M = 10`, `C = 1..=10`, one column pair per `Pi`.
///
/// The paper uses `Pi ∈ {0.1, 0.2}`.
pub fn table1(m: u64, pis: &[f64]) -> Vec<Table1Row> {
    (1..=m)
        .map(|c| Table1Row { c, cells: pis.iter().map(|&pi| (pa(m, c, pi), ps(m, c, pi))).collect() })
        .collect()
}

/// One row of Table 2: `(M, C)`, then `(PA, PS)` per `Pi` column.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2Row {
    /// Number of managers.
    pub m: u64,
    /// Check quorum.
    pub c: u64,
    /// `(PA, PS)` for each requested `Pi`.
    pub cells: Vec<(f64, f64)>,
}

/// Regenerates Table 2. The paper's upper half fixes `C = 2` while `M`
/// grows; the lower half scales `C = M/2`.
pub fn table2(pis: &[f64]) -> Vec<Table2Row> {
    let ms = [4u64, 6, 8, 10, 12];
    let mut rows = Vec::new();
    for &m in &ms {
        rows.push(make_row(m, 2, pis));
    }
    for &m in &ms {
        rows.push(make_row(m, m / 2, pis));
    }
    rows
}

fn make_row(m: u64, c: u64, pis: &[f64]) -> Table2Row {
    Table2Row { m, c, cells: pis.iter().map(|&pi| (pa(m, c, pi), ps(m, c, pi))).collect() }
}

/// A minimal plain-text table renderer (right-aligned columns).
///
/// # Examples
///
/// ```
/// use wanacl_analysis::tables::render_table;
///
/// let text = render_table(
///     &["C", "PA"],
///     &[vec!["1".to_string(), "1.00000".to_string()]],
/// );
/// assert!(text.contains("PA"));
/// ```
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "row width must match header width");
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let mut line = String::new();
    for (i, h) in headers.iter().enumerate() {
        line.push_str(&format!("{:>width$}  ", h, width = widths[i]));
    }
    out.push_str(line.trim_end());
    out.push('\n');
    let total: usize = widths.iter().sum::<usize>() + 2 * cols;
    out.push_str(&"-".repeat(total.saturating_sub(2)));
    out.push('\n');
    for row in rows {
        let mut line = String::new();
        for (i, cell) in row.iter().enumerate() {
            line.push_str(&format!("{:>width$}  ", cell, width = widths[i]));
        }
        out.push_str(line.trim_end());
        out.push('\n');
    }
    out
}

/// Formats a probability with the paper's five decimals.
pub fn prob(p: f64) -> String {
    format!("{p:.5}")
}

/// Renders Table 1 as the paper prints it.
pub fn render_table1(m: u64, pis: &[f64]) -> String {
    let mut headers: Vec<String> = vec!["C".to_string()];
    for pi in pis {
        headers.push(format!("PA(C) Pi={pi}"));
        headers.push(format!("PS(C) Pi={pi}"));
    }
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let rows: Vec<Vec<String>> = table1(m, pis)
        .into_iter()
        .map(|r| {
            let mut row = vec![r.c.to_string()];
            for (a, s) in r.cells {
                row.push(prob(a));
                row.push(prob(s));
            }
            row
        })
        .collect();
    render_table(&header_refs, &rows)
}

/// Renders Table 2 as the paper prints it.
pub fn render_table2(pis: &[f64]) -> String {
    let mut headers: Vec<String> = vec!["M".to_string(), "C".to_string()];
    for pi in pis {
        headers.push(format!("PA(C) Pi={pi}"));
        headers.push(format!("PS(C) Pi={pi}"));
    }
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let rows: Vec<Vec<String>> = table2(pis)
        .into_iter()
        .map(|r| {
            let mut row = vec![r.m.to_string(), r.c.to_string()];
            for (a, s) in r.cells {
                row.push(prob(a));
                row.push(prob(s));
            }
            row
        })
        .collect();
    render_table(&header_refs, &rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_shape() {
        let t = table1(10, &[0.1, 0.2]);
        assert_eq!(t.len(), 10);
        assert_eq!(t[0].c, 1);
        assert_eq!(t[9].c, 10);
        assert_eq!(t[0].cells.len(), 2);
    }

    #[test]
    fn table1_first_and_last_rows_match_paper() {
        let t = table1(10, &[0.1, 0.2]);
        // C=1, Pi=0.1.
        assert!((t[0].cells[0].0 - 1.00000).abs() < 5e-6);
        assert!((t[0].cells[0].1 - 0.38742).abs() < 5e-6);
        // C=10, Pi=0.2.
        assert!((t[9].cells[1].0 - 0.10737).abs() < 5e-6);
        assert!((t[9].cells[1].1 - 1.00000).abs() < 5e-6);
    }

    #[test]
    fn table2_shape_and_structure() {
        let t = table2(&[0.1, 0.2]);
        assert_eq!(t.len(), 10);
        // Upper half: C fixed at 2.
        for row in &t[..5] {
            assert_eq!(row.c, 2);
        }
        // Lower half: C = M/2.
        for row in &t[5..] {
            assert_eq!(row.c, row.m / 2);
        }
    }

    #[test]
    fn table2_demonstrates_papers_claim() {
        // "increasing M without increasing C … increases availability,
        // decreases security; when C is increased at the same rate as M,
        // both … improve."
        let t = table2(&[0.2]);
        let upper = &t[..5];
        for w in upper.windows(2) {
            assert!(w[1].cells[0].0 >= w[0].cells[0].0 - 1e-9, "PA must not fall");
            assert!(w[1].cells[0].1 <= w[0].cells[0].1 + 1e-9, "PS must not rise");
        }
        let lower = &t[5..];
        for w in lower.windows(2) {
            assert!(w[1].cells[0].0 >= w[0].cells[0].0 - 1e-9, "PA must improve");
            assert!(w[1].cells[0].1 >= w[0].cells[0].1 - 1e-9, "PS must improve");
        }
    }

    #[test]
    fn renderer_aligns_and_contains_all_cells() {
        let text = render_table(
            &["a", "bb"],
            &[
                vec!["1".into(), "2".into()],
                vec!["333".into(), "4".into()],
            ],
        );
        assert!(text.contains("333"));
        assert_eq!(text.lines().count(), 4);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn renderer_rejects_ragged_rows() {
        render_table(&["a"], &[vec!["1".into(), "2".into()]]);
    }

    #[test]
    fn rendered_tables_contain_known_values() {
        let t1 = render_table1(10, &[0.1, 0.2]);
        assert!(t1.contains("0.38742"));
        assert!(t1.contains("0.34868"));
        assert!(t1.contains("0.10737"));
        let t2 = render_table2(&[0.1, 0.2]);
        assert!(t2.contains("0.97200"));
        assert!(t2.contains("0.98835"));
    }

    #[test]
    fn prob_formats_five_decimals() {
        assert_eq!(prob(1.0), "1.00000");
        assert_eq!(prob(0.387424), "0.38742");
    }
}
