//! Retry-level availability and check-latency models.
//!
//! §4.1: "the delay is O(C) in the normal case where at least C managers
//! are accessible, but O(R) if the required number are not accessible.
//! Reducing R will naturally reduce this worst case delay, but at the
//! cost of reduced security." This module quantifies both statements for
//! the three query fan-outs, under the independence assumption that each
//! attempt sees a fresh connectivity draw (attempts spaced at least one
//! congestion epoch apart).

use crate::model::pa;
use wanacl_core::policy::QueryFanout;

/// Per-attempt success probability for one check attempt under the given
/// fan-out.
///
/// * `All` — succeed iff at least `C` of `M` managers are accessible:
///   the binomial `PA(C)`.
/// * `Subset` — a random `C`-subset is queried; all of it must be up:
///   `(1 − Pi)^C`.
/// * `Sequential` — one manager per attempt (`C = 1`): `1 − Pi`.
///
/// # Panics
///
/// Panics if `c` is outside `1..=m`, `pi` outside `[0, 1]`, or
/// `Sequential` is combined with `c > 1`.
pub fn attempt_success(m: u64, c: u64, pi: f64, fanout: QueryFanout) -> f64 {
    assert!((1..=m).contains(&c), "check quorum must be in 1..=M");
    assert!((0.0..=1.0).contains(&pi), "Pi must be in [0,1]");
    match fanout {
        QueryFanout::All => pa(m, c, pi),
        QueryFanout::Subset => (1.0 - pi).powi(c as i32),
        QueryFanout::Sequential => {
            assert_eq!(c, 1, "sequential fan-out needs C = 1");
            1.0 - pi
        }
    }
}

/// Availability after up to `r` attempts with independent connectivity
/// draws: `1 − (1 − p)^r` where `p` is the per-attempt success.
///
/// # Examples
///
/// ```
/// use wanacl_analysis::retry::pa_with_retries;
/// use wanacl_core::policy::QueryFanout;
///
/// // One attempt reduces to the base model.
/// let one = pa_with_retries(10, 5, 0.2, 1, QueryFanout::All);
/// let three = pa_with_retries(10, 5, 0.2, 3, QueryFanout::All);
/// assert!(three > one);
/// ```
pub fn pa_with_retries(m: u64, c: u64, pi: f64, r: u32, fanout: QueryFanout) -> f64 {
    assert!(r >= 1, "at least one attempt is required");
    let p = attempt_success(m, c, pi, fanout);
    1.0 - (1.0 - p).powi(r as i32)
}

/// Expected and worst-case check latency for a retrying host.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CheckLatency {
    /// Probability the check succeeds within `R` attempts.
    pub success_probability: f64,
    /// Expected latency *given success*, in seconds.
    pub expected_on_success: f64,
    /// The worst case (all `R` attempts time out): `R × timeout` — the
    /// paper's `O(R)`.
    pub worst_case: f64,
}

/// Computes the latency profile: attempt `k` succeeds with probability
/// `(1−p)^(k−1)·p`, costing `(k−1)·timeout + rtt` seconds.
///
/// # Panics
///
/// Panics unless `0 ≤ p ≤ 1`, `r ≥ 1`, and `rtt ≤ timeout`.
pub fn check_latency(p: f64, r: u32, timeout_s: f64, rtt_s: f64) -> CheckLatency {
    assert!((0.0..=1.0).contains(&p), "probability out of range");
    assert!(r >= 1, "at least one attempt is required");
    assert!(rtt_s <= timeout_s, "a successful attempt completes within its timeout");
    let mut success = 0.0;
    let mut weighted = 0.0;
    let mut miss = 1.0;
    for k in 1..=r {
        let p_here = miss * p;
        let latency = (k - 1) as f64 * timeout_s + rtt_s;
        success += p_here;
        weighted += p_here * latency;
        miss *= 1.0 - p;
    }
    CheckLatency {
        success_probability: success,
        expected_on_success: if success > 0.0 { weighted / success } else { f64::NAN },
        worst_case: r as f64 * timeout_s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wanacl_sim::rng::SimRng;

    const EPS: f64 = 1e-12;

    #[test]
    fn one_attempt_reduces_to_base_model() {
        for &(m, c, pi) in &[(10u64, 5u64, 0.1), (4, 2, 0.3)] {
            assert!(
                (pa_with_retries(m, c, pi, 1, QueryFanout::All) - pa(m, c, pi)).abs() < EPS
            );
        }
    }

    #[test]
    fn retries_monotonically_help() {
        let mut prev = 0.0;
        for r in 1..=8 {
            let v = pa_with_retries(10, 5, 0.3, r, QueryFanout::Subset);
            assert!(v >= prev - EPS);
            assert!(v <= 1.0 + EPS);
            prev = v;
        }
    }

    #[test]
    fn fanout_ordering_per_attempt() {
        // Querying everyone can only beat querying a blind subset.
        for &pi in &[0.05, 0.1, 0.3] {
            for c in 1..=10u64 {
                let all = attempt_success(10, c, pi, QueryFanout::All);
                let subset = attempt_success(10, c, pi, QueryFanout::Subset);
                assert!(all >= subset - EPS, "C={c} Pi={pi}: {all} < {subset}");
            }
        }
        assert!(
            (attempt_success(10, 1, 0.2, QueryFanout::Sequential) - 0.8).abs() < EPS
        );
    }

    #[test]
    fn subset_with_retries_approaches_all_fanout() {
        // The paper's O(C) strategy recovers availability through R.
        let base_all = pa(10, 3, 0.2);
        let subset_r10 = pa_with_retries(10, 3, 0.2, 10, QueryFanout::Subset);
        assert!(subset_r10 > base_all - 0.01, "{subset_r10} vs {base_all}");
    }

    #[test]
    fn latency_profile_matches_hand_computation() {
        // p = 0.5, r = 2, timeout 1 s, rtt 0.2 s.
        let l = check_latency(0.5, 2, 1.0, 0.2);
        // success: 0.5 + 0.25 = 0.75
        assert!((l.success_probability - 0.75).abs() < EPS);
        // E[L|success] = (0.5*0.2 + 0.25*1.2) / 0.75 = 0.4/0.75
        assert!((l.expected_on_success - 0.4 / 0.75).abs() < EPS);
        assert!((l.worst_case - 2.0).abs() < EPS);
    }

    #[test]
    fn latency_worst_case_is_o_r() {
        for r in 1..=10 {
            let l = check_latency(0.9, r, 0.5, 0.1);
            assert!((l.worst_case - r as f64 * 0.5).abs() < EPS);
        }
    }

    #[test]
    fn perfect_network_latency_is_one_rtt() {
        let l = check_latency(1.0, 5, 1.0, 0.08);
        assert!((l.success_probability - 1.0).abs() < EPS);
        assert!((l.expected_on_success - 0.08).abs() < EPS);
    }

    #[test]
    fn zero_success_probability_gives_nan_expectation() {
        let l = check_latency(0.0, 3, 1.0, 0.1);
        assert_eq!(l.success_probability, 0.0);
        assert!(l.expected_on_success.is_nan());
    }

    #[test]
    fn monte_carlo_validates_retry_model() {
        // Sample the independent-attempt process directly.
        let (m, c, pi, r) = (10u64, 3u64, 0.3, 4u32);
        let p_model = pa_with_retries(m, c, pi, r, QueryFanout::Subset);
        let mut rng = SimRng::seed_from(77);
        let trials = 100_000;
        let mut hits = 0u64;
        for _ in 0..trials {
            let ok = (0..r).any(|_| (0..c).all(|_| !rng.chance(pi)));
            if ok {
                hits += 1;
            }
        }
        let p_mc = hits as f64 / trials as f64;
        assert!((p_mc - p_model).abs() < 0.005, "mc {p_mc} vs model {p_model}");
    }
}
