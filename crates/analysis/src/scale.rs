//! Scale experiments (E10): the paper targets systems where "each
//! application may be replicated on a large number of hosts and may have
//! a large number of users" while "the number of managers … is
//! relatively small". These measurements show how host-side caching
//! keeps the small manager set off the critical path as hosts and users
//! grow, and how real (Zipf-skewed) user populations make the cache even
//! more effective.

use wanacl_core::prelude::*;
use wanacl_sim::clock::ClockSpec;
use wanacl_sim::node::NodeId;
use wanacl_sim::rng::Zipf;
use wanacl_sim::time::{SimDuration, SimTime};
use wanacl_sim::world::World;

/// One point of the host/user scaling sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalePoint {
    /// Application hosts.
    pub hosts: usize,
    /// Users.
    pub users: usize,
    /// Invokes served during the horizon.
    pub invokes: u64,
    /// Fraction answered from host caches.
    pub cache_hit_ratio: f64,
    /// Manager queries per invoke (the managers' share of the work).
    pub queries_per_invoke: f64,
    /// All network messages per invoke.
    pub messages_per_invoke: f64,
}

/// Runs a uniform workload over a growing deployment: `M = 5`, `C = 2`,
/// one request per user per ~30 s.
pub fn measure_scale(
    hosts: usize,
    users: usize,
    te: SimDuration,
    horizon: SimDuration,
    seed: u64,
) -> ScalePoint {
    let policy = Policy::builder(2)
        .revocation_bound(te)
        .query_timeout(SimDuration::from_millis(500))
        .max_attempts(2)
        .build();
    let mut d = Scenario::builder(seed)
        .managers(5)
        .hosts(hosts)
        .users(users)
        .policy(policy)
        .all_users_granted()
        .workload(SimDuration::from_secs(30))
        .build();
    d.run_for(horizon);
    let m = d.world.metrics();
    let invokes = m.counter("host.invokes");
    let hits = m.counter("host.cache_hit");
    let queries = m.counter("mgr.queries");
    ScalePoint {
        hosts,
        users,
        invokes,
        cache_hit_ratio: hits as f64 / invokes.max(1) as f64,
        queries_per_invoke: queries as f64 / invokes.max(1) as f64,
        messages_per_invoke: m.counter("net.sent") as f64 / invokes.max(1) as f64,
    }
}

/// Like [`measure_scale`], but with **session affinity**: each user is
/// pinned to one host instead of spraying requests across all of them,
/// so its lease lives on exactly one cache. This is the standard remedy
/// for cache dilution in replicated services.
pub fn measure_scale_affinity(
    hosts: usize,
    users: usize,
    te: SimDuration,
    horizon: SimDuration,
    seed: u64,
) -> ScalePoint {
    let policy = Policy::builder(2)
        .revocation_bound(te)
        .query_timeout(SimDuration::from_millis(500))
        .max_attempts(2)
        .build();
    let managers = 5usize;
    let mut acl = Acl::new();
    for i in 1..=users {
        acl.add(UserId(i as u64), Right::Use);
    }
    let mut world: World<ProtoMsg> = World::new(seed);
    let manager_ids: Vec<NodeId> = (0..managers).map(NodeId::from_index).collect();
    for (i, &id) in manager_ids.iter().enumerate() {
        let peers = manager_ids.iter().copied().filter(|p| *p != id).collect();
        let got = world.add_node(
            format!("m{i}"),
            Box::new(ManagerNode::new(ManagerConfig {
                peers,
                apps: vec![ManagerApp {
                    app: AppId(0),
                    policy: policy.clone(),
                    initial_acl: acl.clone(),
                }],
                ..ManagerConfig::default()
            })),
            ClockSpec::Perfect,
        );
        assert_eq!(got, id);
    }
    let mut host_ids = Vec::new();
    for i in 0..hosts {
        host_ids.push(world.add_node(
            format!("h{i}"),
            Box::new(HostNode::new(
                vec![AppHost {
                    app: AppId(0),
                    policy: policy.clone(),
                    directory: ManagerDirectory::Static(manager_ids.clone().into()),
                    application: Box::new(CountingApp::new()),
                }],
                None,
            )),
            ClockSpec::Perfect,
        ));
    }
    for i in 0..users {
        let pinned = host_ids[i % hosts];
        world.add_node(
            format!("u{}", i + 1),
            Box::new(UserAgent::new(UserAgentConfig {
                user: UserId((i + 1) as u64),
                app: AppId(0),
                hosts: vec![pinned].into(),
                workload: Some(WorkloadShape::Poisson { mean: SimDuration::from_secs(30) }),
                payload: "req".into(),
                secret: None,
                request_timeout: SimDuration::from_secs(10),
                max_requests: None,
            })),
            ClockSpec::Perfect,
        );
    }
    world.run_until(SimTime::ZERO + horizon);
    let m = world.metrics();
    let invokes = m.counter("host.invokes");
    ScalePoint {
        hosts,
        users,
        invokes,
        cache_hit_ratio: m.counter("host.cache_hit") as f64 / invokes.max(1) as f64,
        queries_per_invoke: m.counter("mgr.queries") as f64 / invokes.max(1) as f64,
        messages_per_invoke: m.counter("net.sent") as f64 / invokes.max(1) as f64,
    }
}

/// One point of the popularity-skew sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SkewPoint {
    /// Zipf exponent of the user-popularity distribution.
    pub exponent: f64,
    /// Invokes served.
    pub invokes: u64,
    /// Fraction answered from host caches.
    pub cache_hit_ratio: f64,
}

/// Runs a fixed aggregate request rate split across `users` according to
/// a Zipf(`exponent`) popularity distribution (exponent 0 = uniform) and
/// measures the cache hit ratio. The skew experiment assembles the world
/// by hand so each user gets its own arrival rate.
pub fn measure_skew(
    users: usize,
    exponent: f64,
    te: SimDuration,
    horizon: SimDuration,
    seed: u64,
) -> SkewPoint {
    assert!(users >= 1, "need at least one user");
    let policy = Policy::builder(2)
        .revocation_bound(te)
        .query_timeout(SimDuration::from_millis(500))
        .max_attempts(2)
        .build();
    let managers = 3usize;
    let hosts = 2usize;

    let mut acl = Acl::new();
    for i in 1..=users {
        acl.add(UserId(i as u64), Right::Use);
    }

    let mut world: World<ProtoMsg> = World::new(seed);
    let manager_ids: Vec<NodeId> = (0..managers).map(NodeId::from_index).collect();
    for (i, &id) in manager_ids.iter().enumerate() {
        let peers = manager_ids.iter().copied().filter(|p| *p != id).collect();
        let got = world.add_node(
            format!("m{i}"),
            Box::new(ManagerNode::new(ManagerConfig {
                peers,
                apps: vec![ManagerApp {
                    app: AppId(0),
                    policy: policy.clone(),
                    initial_acl: acl.clone(),
                }],
                ..ManagerConfig::default()
            })),
            ClockSpec::Perfect,
        );
        assert_eq!(got, id);
    }
    let mut host_ids = Vec::new();
    for i in 0..hosts {
        host_ids.push(world.add_node(
            format!("h{i}"),
            Box::new(HostNode::new(
                vec![AppHost {
                    app: AppId(0),
                    policy: policy.clone(),
                    directory: ManagerDirectory::Static(manager_ids.clone().into()),
                    application: Box::new(CountingApp::new()),
                }],
                None,
            )),
            ClockSpec::Perfect,
        ));
    }

    // Aggregate rate: one request per second across the population,
    // split by Zipf popularity.
    let zipf = Zipf::new(users, exponent);
    let aggregate_rate = 1.0; // requests per second
    for i in 0..users {
        let rate = aggregate_rate * zipf.mass(i);
        // A user slower than one request per two horizons contributes
        // nothing; clamp so the mean stays finite.
        let mean_secs = (1.0 / rate).min(horizon.as_secs_f64() * 2.0);
        world.add_node(
            format!("u{}", i + 1),
            Box::new(UserAgent::new(UserAgentConfig {
                user: UserId((i + 1) as u64),
                app: AppId(0),
                hosts: host_ids.clone().into(),
                workload: Some(WorkloadShape::Poisson {
                    mean: SimDuration::from_secs_f64(mean_secs),
                }),
                payload: "req".into(),
                secret: None,
                request_timeout: SimDuration::from_secs(10),
                max_requests: None,
            })),
            ClockSpec::Perfect,
        );
    }

    world.run_until(SimTime::ZERO + horizon);
    let invokes = world.metrics().counter("host.invokes");
    let hits = world.metrics().counter("host.cache_hit");
    SkewPoint {
        exponent,
        invokes,
        cache_hit_ratio: hits as f64 / invokes.max(1) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn managers_stay_off_the_critical_path_as_users_grow() {
        // Requests scatter over all hosts, so the per-(user, host)
        // inter-arrival is think-time × hosts; Te must cover that for
        // leases to stay warm (600 s ≫ 30 s × 4).
        let te = SimDuration::from_secs(600);
        let horizon = SimDuration::from_secs(1_200);
        let small = measure_scale(2, 20, te, horizon, 1);
        let large = measure_scale(4, 100, te, horizon, 1);
        assert!(large.invokes > small.invokes * 3, "{large:?} vs {small:?}");
        // The steady-state hit ratio stays high at both scales and the
        // managers' share of the work stays bounded.
        assert!(small.cache_hit_ratio > 0.7, "{small:?}");
        assert!(large.cache_hit_ratio > 0.7, "{large:?}");
        assert!(large.queries_per_invoke < 1.5, "{large:?}");
    }

    #[test]
    fn session_affinity_beats_scatter_at_scale() {
        let te = SimDuration::from_secs(120);
        let horizon = SimDuration::from_secs(1_200);
        let scatter = measure_scale(8, 100, te, horizon, 3);
        let affinity = measure_scale_affinity(8, 100, te, horizon, 3);
        assert!(
            affinity.cache_hit_ratio > scatter.cache_hit_ratio + 0.1,
            "affinity {affinity:?} vs scatter {scatter:?}"
        );
        assert!(
            affinity.queries_per_invoke < scatter.queries_per_invoke,
            "affinity must unload the managers: {affinity:?} vs {scatter:?}"
        );
    }

    #[test]
    fn skewed_popularity_improves_hit_ratio() {
        let te = SimDuration::from_secs(60);
        let horizon = SimDuration::from_secs(1_200);
        let uniform = measure_skew(100, 0.0, te, horizon, 2);
        let skewed = measure_skew(100, 1.2, te, horizon, 2);
        assert!(uniform.invokes > 500, "{uniform:?}");
        assert!(
            skewed.cache_hit_ratio > uniform.cache_hit_ratio + 0.05,
            "skew must help the cache: {skewed:?} vs {uniform:?}"
        );
    }
}
