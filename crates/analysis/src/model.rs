//! The §4.1 availability/security model.
//!
//! With i.i.d. pairwise inaccessibility `Pi`, `M` managers, check quorum
//! `C`, and `R = ∞` (access only on a full check quorum):
//!
//! * **availability** `PA(C) = P[at least C of the M managers are
//!   accessible to the querying host]`,
//! * **security** `PS(C) = P[the revoking manager reaches at least
//!   M − C of the other M − 1 managers]` (an update quorum counting
//!   itself).
//!
//! Both are binomial upper tails in the accessibility probability
//! `1 − Pi`.

use crate::binomial::tail_at_least;

/// Parameters of one model evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelPoint {
    /// Number of managers `M`.
    pub m: u64,
    /// Check quorum `C` (`1 ..= M`).
    pub c: u64,
    /// Pairwise inaccessibility probability `Pi`.
    pub pi: f64,
}

impl ModelPoint {
    /// Creates a point, validating the parameter ranges.
    ///
    /// # Panics
    ///
    /// Panics if `c` is outside `1..=m` or `pi` outside `[0, 1]`.
    pub fn new(m: u64, c: u64, pi: f64) -> Self {
        assert!(m >= 1, "need at least one manager");
        assert!((1..=m).contains(&c), "check quorum must be in 1..=M, got C={c} M={m}");
        assert!((0.0..=1.0).contains(&pi), "Pi must be in [0,1], got {pi}");
        ModelPoint { m, c, pi }
    }

    /// The availability probability `PA(C)`.
    pub fn availability(&self) -> f64 {
        pa(self.m, self.c, self.pi)
    }

    /// The security probability `PS(C)`.
    pub fn security(&self) -> f64 {
        ps(self.m, self.c, self.pi)
    }
}

/// `PA(C)`: probability that a host reaches a check quorum.
///
/// # Examples
///
/// ```
/// use wanacl_analysis::model::pa;
///
/// // Paper Table 1, M=10, Pi=0.1: PA(10) = 0.9^10 = 0.34868.
/// assert!((pa(10, 10, 0.1) - 0.34868).abs() < 5e-6);
/// ```
pub fn pa(m: u64, c: u64, pi: f64) -> f64 {
    tail_at_least(m, c, 1.0 - pi)
}

/// `PS(C)`: probability that a revoking manager reaches an update quorum
/// (`M − C + 1` including itself, i.e. `M − C` of its `M − 1` peers).
///
/// # Examples
///
/// ```
/// use wanacl_analysis::model::ps;
///
/// // Paper Table 1, M=10, Pi=0.1: PS(1) = 0.9^9 = 0.38742.
/// assert!((ps(10, 1, 0.1) - 0.38742).abs() < 5e-6);
/// ```
pub fn ps(m: u64, c: u64, pi: f64) -> f64 {
    tail_at_least(m - 1, m - c, 1.0 - pi)
}

/// Finds the `C` maximizing the minimum of availability and security —
/// the "relatively large range of values of C around M/2 where both …
/// are very close to 1" observation under Figure 5.
pub fn best_balanced_c(m: u64, pi: f64) -> u64 {
    (1..=m)
        .max_by(|&a, &b| {
            let fa = pa(m, a, pi).min(ps(m, a, pi));
            let fb = pa(m, b, pi).min(ps(m, b, pi));
            fa.partial_cmp(&fb).expect("probabilities are not NaN")
        })
        .expect("m >= 1")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Paper Table 1 values for Pi = 0.1 (columns PA, PS; rows C=1..10).
    pub const TABLE1_PI01: [(f64, f64); 10] = [
        (1.00000, 0.38742),
        (1.00000, 0.77484),
        (1.00000, 0.94703),
        (0.99999, 0.99167),
        (0.99985, 0.99911),
        (0.99837, 0.99994),
        (0.98720, 1.00000),
        (0.92981, 1.00000),
        (0.73610, 1.00000),
        (0.34868, 1.00000),
    ];

    /// Paper Table 1 values for Pi = 0.2.
    pub const TABLE1_PI02: [(f64, f64); 10] = [
        (1.00000, 0.13422),
        (1.00000, 0.43621),
        (0.99992, 0.73820),
        (0.99914, 0.91436),
        (0.99363, 0.98042),
        (0.96721, 0.99693),
        (0.87913, 0.99969),
        (0.67780, 0.99998),
        (0.37581, 1.00000),
        (0.10737, 1.00000),
    ];

    /// A printed paper value has 5 decimals; one Table 2 entry (M=6,
    /// C=2, Pi=0.1 → 0.999945 printed as 0.99994) appears truncated
    /// rather than rounded, so allow 6e-6.
    const PRINT_EPS: f64 = 6e-6;

    #[test]
    fn reproduces_paper_table1_pi_01() {
        for (i, &(want_pa, want_ps)) in TABLE1_PI01.iter().enumerate() {
            let c = (i + 1) as u64;
            assert!(
                (pa(10, c, 0.1) - want_pa).abs() < PRINT_EPS,
                "PA({c}) = {} want {want_pa}",
                pa(10, c, 0.1)
            );
            assert!(
                (ps(10, c, 0.1) - want_ps).abs() < PRINT_EPS,
                "PS({c}) = {} want {want_ps}",
                ps(10, c, 0.1)
            );
        }
    }

    #[test]
    fn reproduces_paper_table1_pi_02() {
        for (i, &(want_pa, want_ps)) in TABLE1_PI02.iter().enumerate() {
            let c = (i + 1) as u64;
            assert!((pa(10, c, 0.2) - want_pa).abs() < PRINT_EPS, "PA({c})");
            assert!((ps(10, c, 0.2) - want_ps).abs() < PRINT_EPS, "PS({c})");
        }
    }

    #[test]
    fn reproduces_paper_table2_upper() {
        // M varies, C=2 fixed, Pi=0.1: PA rises, PS falls.
        let rows: [(u64, f64, f64); 5] = [
            (4, 0.99630, 0.97200),
            (6, 0.99994, 0.91854),
            (8, 1.00000, 0.85031),
            (10, 1.00000, 0.77484),
            (12, 1.00000, 0.69736),
        ];
        for &(m, want_pa, want_ps) in &rows {
            assert!((pa(m, 2, 0.1) - want_pa).abs() < PRINT_EPS, "M={m} PA");
            assert!((ps(m, 2, 0.1) - want_ps).abs() < PRINT_EPS, "M={m} PS");
        }
    }

    #[test]
    fn reproduces_paper_table2_lower() {
        // C scales with M (C = M/2), Pi = 0.2: both improve.
        let rows: [(u64, u64, f64, f64); 5] = [
            (4, 2, 0.97280, 0.89600),
            (6, 3, 0.98304, 0.94208),
            (8, 4, 0.98959, 0.96666),
            (10, 5, 0.99363, 0.98042),
            (12, 6, 0.99610, 0.98835),
        ];
        for &(m, c, want_pa, want_ps) in &rows {
            assert!((pa(m, c, 0.2) - want_pa).abs() < PRINT_EPS, "M={m} C={c} PA");
            assert!((ps(m, c, 0.2) - want_ps).abs() < PRINT_EPS, "M={m} C={c} PS");
        }
    }

    #[test]
    fn pa_decreases_in_c_ps_increases() {
        for &pi in &[0.05, 0.1, 0.2, 0.4] {
            for c in 1..10u64 {
                assert!(pa(10, c, pi) >= pa(10, c + 1, pi) - 1e-12);
                assert!(ps(10, c, pi) <= ps(10, c + 1, pi) + 1e-12);
            }
        }
    }

    #[test]
    fn perfect_network_gives_perfect_everything() {
        for c in 1..=10 {
            assert_eq!(pa(10, c, 0.0), 1.0);
            assert_eq!(ps(10, c, 0.0), 1.0);
        }
    }

    #[test]
    fn fully_partitioned_network() {
        // Pi = 1: nothing is reachable. PA = 0 for any C; PS(C) = 0
        // unless the update quorum is just the issuer itself (C = M).
        for c in 1..=10 {
            assert_eq!(pa(10, c, 1.0), 0.0);
        }
        assert_eq!(ps(10, 10, 1.0), 1.0);
        for c in 1..10 {
            assert_eq!(ps(10, c, 1.0), 0.0);
        }
    }

    #[test]
    fn balanced_c_lands_near_middle() {
        let c = best_balanced_c(10, 0.1);
        assert!((4..=7).contains(&c), "got C={c}");
        let c2 = best_balanced_c(10, 0.2);
        assert!((4..=7).contains(&c2), "got C={c2}");
    }

    #[test]
    fn model_point_validates() {
        let p = ModelPoint::new(10, 5, 0.1);
        assert!((p.availability() - pa(10, 5, 0.1)).abs() < 1e-15);
        assert!((p.security() - ps(10, 5, 0.1)).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "check quorum")]
    fn model_point_rejects_bad_c() {
        ModelPoint::new(10, 11, 0.1);
    }
}
