//! E11: empirical PA/PS at planet scale — §4.1 measured, not derived.
//!
//! The analytic model ([`crate::model`]) gives `PA(C)`/`PS(C)` in closed
//! form under i.i.d. pairwise inaccessibility `Pi`. This module rebuilds
//! those numbers *empirically* by running a 10,000-host world through the
//! discrete-event simulator: every host really sends its check round to
//! all `M` managers over a regional WAN delay model, the `EpochIid`
//! partition oracle really drops pairs with probability `Pi` per epoch,
//! and availability is whatever fraction of rounds actually gathered a
//! quorum before the timeout.
//!
//! The trick that keeps a full Table 1 affordable is that one run
//! measures **every** quorum size at once: each check counts how many of
//! the `M` managers replied before the deadline (its *reach* `R`), and
//! each revocation counts how many of the `M-1` peer managers
//! acknowledged (its *ack count* `A`). Then for any `C`:
//!
//! ```text
//! PA(C) = P[R >= C]        PS(C) = P[A >= M - C]
//! ```
//!
//! so a single 10k-host campaign yields the whole empirical column of
//! Table 1 / Figure 5, and one world per `M` covers Table 2.
//!
//! Arrivals come from the [`wanacl_sim::workload`] generators: a Zipf
//! popularity law picks which user (and therefore which host, by
//! affinity) issues each check, and a diurnal [`LoadCurve`] with an
//! optional flash crowd shapes the aggregate rate. None of that changes
//! the expected PA/PS — reach is independent of *when* a check runs —
//! which is exactly why the comparison against the closed form is a
//! meaningful end-to-end validation of queue, net, and workload layers.

use std::collections::HashMap;
use std::sync::Arc;

use wanacl_sim::clock::ClockSpec;
use wanacl_sim::metrics::{HistogramSummary, Metrics};
use wanacl_sim::net::partition::EpochIid;
use wanacl_sim::net::WanNet;
use wanacl_sim::node::{Context, Node, NodeId};
use wanacl_sim::queue::Scheduler;
use wanacl_sim::rng::SimRng;
use wanacl_sim::time::{SimDuration, SimTime};
use wanacl_sim::workload::{arrivals, LoadCurve, RegionalTopology, ZipfPopularity};
use wanacl_sim::world::World;

use crate::model;

/// Messages of the probe protocol. `Do*` variants are environment
/// injections that trigger an operation; the rest travel over the WAN.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)] // `req`/`op` are the operation ids; nothing else to say
pub enum ProbeMsg {
    /// Environment → host: issue check round `req` now.
    DoCheck { req: u64 },
    /// Host → manager: one leg of a check round.
    Check { req: u64 },
    /// Manager → host: positive reply to a check leg.
    CheckReply { req: u64 },
    /// Environment → manager: issue revocation `op` now.
    DoRevoke { op: u64 },
    /// Revoking manager → peer manager: propagate the revocation.
    Revoke { op: u64 },
    /// Peer manager → revoking manager: revocation acknowledged.
    RevokeAck { op: u64 },
}

struct PendingCheck {
    replies: u32,
    started: wanacl_sim::clock::LocalTime,
    quorum_at: Option<wanacl_sim::clock::LocalTime>,
}

/// A host that measures check reach: on `DoCheck` it fans out to all
/// managers and, when the timeout fires, records how many replied.
struct HostProbe {
    managers: Arc<[NodeId]>,
    quorum: u32,
    timeout: SimDuration,
    pending: HashMap<u64, PendingCheck>,
    /// `reach[r]` = number of finished checks that reached exactly `r`
    /// of the `M` managers before the deadline.
    reach: Vec<u64>,
}

impl HostProbe {
    fn new(managers: Arc<[NodeId]>, quorum: u32, timeout: SimDuration) -> Self {
        let m = managers.len();
        Self { managers, quorum, timeout, pending: HashMap::new(), reach: vec![0; m + 1] }
    }
}

impl Node for HostProbe {
    type Msg = ProbeMsg;

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn on_message(&mut self, ctx: &mut Context<'_, ProbeMsg>, from: NodeId, msg: ProbeMsg) {
        match msg {
            ProbeMsg::DoCheck { req } => {
                let started = ctx.local_now();
                for &m in self.managers.iter() {
                    ctx.send(m, ProbeMsg::Check { req });
                }
                self.pending.insert(req, PendingCheck { replies: 0, started, quorum_at: None });
                ctx.set_timer(self.timeout, req);
                ctx.metric_incr("scale.check_sent");
            }
            ProbeMsg::CheckReply { req } => {
                let _ = from;
                let now = ctx.local_now();
                if let Some(p) = self.pending.get_mut(&req) {
                    p.replies += 1;
                    if p.replies == self.quorum {
                        p.quorum_at = Some(now);
                    }
                }
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, ProbeMsg>, tag: u64) {
        if let Some(p) = self.pending.remove(&tag) {
            let r = (p.replies as usize).min(self.reach.len() - 1);
            self.reach[r] += 1;
            ctx.metric_observe("scale.check_reach", r as f64);
            if let Some(q) = p.quorum_at {
                ctx.metric_incr("scale.check_ok");
                ctx.metric_observe(
                    "scale.check_quorum_latency_s",
                    q.since(p.started).as_secs_f64(),
                );
            } else {
                ctx.metric_incr("scale.check_unavail");
            }
        }
    }
}

/// A manager that serves check legs and measures revocation reach: on
/// `DoRevoke` it fans out to its peers and records how many acked.
struct ManagerProbe {
    peers: Vec<NodeId>,
    timeout: SimDuration,
    pending: HashMap<u64, u32>,
    /// `acks[a]` = number of finished revocations where exactly `a` of
    /// the `M-1` peer managers acknowledged before the deadline.
    acks: Vec<u64>,
}

impl ManagerProbe {
    fn new(peers: Vec<NodeId>, timeout: SimDuration) -> Self {
        let n = peers.len();
        Self { peers, timeout, pending: HashMap::new(), acks: vec![0; n + 1] }
    }
}

impl Node for ManagerProbe {
    type Msg = ProbeMsg;

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn on_message(&mut self, ctx: &mut Context<'_, ProbeMsg>, from: NodeId, msg: ProbeMsg) {
        match msg {
            ProbeMsg::Check { req } => {
                ctx.send(from, ProbeMsg::CheckReply { req });
                ctx.metric_incr("scale.mgr_served");
            }
            ProbeMsg::DoRevoke { op } => {
                for &p in &self.peers {
                    ctx.send(p, ProbeMsg::Revoke { op });
                }
                self.pending.insert(op, 0);
                ctx.set_timer(self.timeout, op);
                ctx.metric_incr("scale.revoke_sent");
            }
            ProbeMsg::Revoke { op } => {
                ctx.send(from, ProbeMsg::RevokeAck { op });
            }
            ProbeMsg::RevokeAck { op } => {
                if let Some(a) = self.pending.get_mut(&op) {
                    *a += 1;
                }
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, ProbeMsg>, tag: u64) {
        if let Some(a) = self.pending.remove(&tag) {
            let a = (a as usize).min(self.acks.len() - 1);
            self.acks[a] += 1;
            ctx.metric_observe("scale.revoke_acks", a as f64);
        }
    }
}

/// A flash-crowd burst layered on top of the diurnal curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlashSpec {
    /// When the burst begins (simulated time).
    pub start: SimTime,
    /// How long it lasts.
    pub duration: SimDuration,
    /// Rate multiplier while active (e.g. `3.0`).
    pub multiplier: f64,
}

/// Configuration for one empirical planet-scale measurement.
#[derive(Debug, Clone)]
pub struct ScaleConfig {
    /// Number of host nodes (the paper's "massively replicated" fleet).
    pub hosts: usize,
    /// Number of state managers `M`.
    pub managers: usize,
    /// Check quorum `C` used for the per-operation overhead metrics
    /// (reach/ack histograms cover every `C` regardless).
    pub check_quorum: usize,
    /// Pairwise inaccessibility `Pi` fed to the `EpochIid` oracle.
    pub pi: f64,
    /// Partition epoch: pair up/down states redraw this often.
    pub epoch: SimDuration,
    /// Simulated horizon over which checks are issued.
    pub horizon: SimDuration,
    /// Mean number of checks each host issues across the horizon.
    pub checks_per_host: f64,
    /// Diurnal amplitude in `[0, 1]` (peak-to-mean swing of the curve).
    pub diurnal_amplitude: f64,
    /// Optional flash crowd.
    pub flash: Option<FlashSpec>,
    /// User population for the Zipf popularity law.
    pub zipf_users: usize,
    /// Zipf exponent `s` (0 = uniform).
    pub zipf_s: f64,
    /// Number of revocation operations spread across the horizon.
    pub revoke_ops: u64,
    /// Per-operation deadline; must comfortably exceed the worst RTT.
    pub timeout: SimDuration,
    /// Relative jitter added to regional base latencies.
    pub jitter: f64,
    /// World seed.
    pub seed: u64,
    /// Event-queue implementation (calendar by default; the naive heap
    /// doubles as a cross-check that results are scheduler-independent).
    pub scheduler: Scheduler,
}

impl Default for ScaleConfig {
    fn default() -> Self {
        Self {
            hosts: 10_000,
            managers: 10,
            check_quorum: 3,
            pi: 0.1,
            epoch: SimDuration::from_secs(10),
            horizon: SimDuration::from_secs(600),
            checks_per_host: 5.0,
            diurnal_amplitude: 0.5,
            flash: None,
            zipf_users: 10_000,
            zipf_s: 1.1,
            revoke_ops: 2_000,
            timeout: SimDuration::from_secs(1),
            jitter: 0.1,
            seed: 1,
            scheduler: Scheduler::Calendar,
        }
    }
}

/// What one empirical run measured.
#[derive(Debug, Clone)]
pub struct EmpiricalOutcome {
    /// Manager count `M`.
    pub m: usize,
    /// Pairwise inaccessibility the oracle was configured with.
    pub pi: f64,
    /// The configured check quorum (for the overhead metrics).
    pub check_quorum: usize,
    /// Total check rounds finished.
    pub checks: u64,
    /// Total revocation operations finished.
    pub revokes: u64,
    /// `reach[r]` = checks that reached exactly `r` managers.
    pub reach: Vec<u64>,
    /// `acks[a]` = revocations acknowledged by exactly `a` peers.
    pub acks: Vec<u64>,
    /// Summary of the time-to-quorum histogram (seconds), if any check
    /// at the configured quorum succeeded.
    pub quorum_latency: Option<HistogramSummary>,
    /// Network messages sent per check round (includes revocations'
    /// share, so slightly above `M + E[R]`).
    pub msgs_per_check: f64,
    /// Full metrics bag, exportable via the obs sink formats.
    pub metrics: Metrics,
}

impl EmpiricalOutcome {
    /// Empirical `PA(C)`: fraction of checks that reached at least `C`
    /// managers before the deadline.
    pub fn pa(&self, c: usize) -> f64 {
        if self.checks == 0 {
            return 0.0;
        }
        let hits: u64 = self.reach[c.min(self.reach.len() - 1)..].iter().sum();
        hits as f64 / self.checks as f64
    }

    /// Empirical `PS(C)`: fraction of revocations acknowledged by at
    /// least `M - C` peers before the deadline (so that, together with
    /// the revoker, every `C`-quorum intersects an informed manager).
    pub fn ps(&self, c: usize) -> f64 {
        if self.revokes == 0 {
            return 0.0;
        }
        let need = self.m.saturating_sub(c);
        let hits: u64 = self.acks[need.min(self.acks.len() - 1)..].iter().sum();
        hits as f64 / self.revokes as f64
    }

    /// Analytic `PA(C)` for this run's `M` and `Pi`.
    pub fn pa_model(&self, c: usize) -> f64 {
        model::pa(self.m as u64, c as u64, self.pi)
    }

    /// Analytic `PS(C)` for this run's `M` and `Pi`.
    pub fn ps_model(&self, c: usize) -> f64 {
        model::ps(self.m as u64, c as u64, self.pi)
    }

    /// The measured curves in [`crate::figures::Fig5Series`] form, so
    /// the empirical run can reuse `sweet_range` and the renderer.
    pub fn fig5_series(&self) -> crate::figures::Fig5Series {
        crate::figures::Fig5Series {
            m: self.m as u64,
            pi: self.pi,
            availability: (1..=self.m).map(|c| self.pa(c)).collect(),
            security: (1..=self.m).map(|c| self.ps(c)).collect(),
        }
    }

    /// Largest absolute deviation from the closed form across all `C`.
    pub fn max_abs_error(&self) -> f64 {
        (1..=self.m)
            .flat_map(|c| {
                [(self.pa(c) - self.pa_model(c)).abs(), (self.ps(c) - self.ps_model(c)).abs()]
            })
            .fold(0.0, f64::max)
    }
}

/// Runs one empirical measurement world and collects its reach/ack
/// distributions.
///
/// Node layout: managers first (`NodeId` 0..M), then hosts — the planet
/// topology's round-robin region assignment therefore spreads managers
/// across regions, as a real deployment would.
pub fn run_empirical(cfg: &ScaleConfig) -> EmpiricalOutcome {
    assert!(cfg.managers >= 2, "need at least two managers");
    assert!(cfg.check_quorum >= 1 && cfg.check_quorum <= cfg.managers);
    let m = cfg.managers;

    let mut world: World<ProbeMsg> = World::with_scheduler(cfg.seed, cfg.scheduler);
    let net = WanNet::builder()
        .delay_model(Box::new(RegionalTopology::planet().jitter(cfg.jitter)))
        .partitions(Box::new(EpochIid::new(cfg.pi, cfg.epoch, cfg.seed ^ 0x5ca1e)))
        .build();
    world.set_net(Box::new(net));

    let manager_ids: Vec<NodeId> = (0..m).map(NodeId::from_index).collect();
    for (i, &id) in manager_ids.iter().enumerate() {
        let peers: Vec<NodeId> = manager_ids.iter().copied().filter(|&p| p != id).collect();
        let got = world.add_node(
            format!("mgr{i}"),
            Box::new(ManagerProbe::new(peers, cfg.timeout)),
            ClockSpec::Perfect,
        );
        assert_eq!(got, id);
    }
    let shared_managers: Arc<[NodeId]> = manager_ids.clone().into();
    let host_ids: Vec<NodeId> = (0..cfg.hosts)
        .map(|i| {
            world.add_node(
                format!("host{i}"),
                Box::new(HostProbe::new(
                    shared_managers.clone(),
                    cfg.check_quorum as u32,
                    cfg.timeout,
                )),
                ClockSpec::Perfect,
            )
        })
        .collect();

    // Shape the aggregate check arrivals with the workload generators.
    // One diurnal period spans the horizon, so the mean rate equals the
    // base rate and the expected check count is hosts * checks_per_host.
    let total_rate = cfg.hosts as f64 * cfg.checks_per_host / cfg.horizon.as_secs_f64();
    let mut curve = LoadCurve::constant(total_rate)
        .diurnal(cfg.diurnal_amplitude, cfg.horizon)
        .peak_offset(cfg.horizon.mul_f64(0.25));
    if let Some(f) = cfg.flash {
        curve = curve.flash_crowd(f.start, f.duration, f.multiplier);
    }
    let mut wl_rng = SimRng::seed_from(cfg.seed ^ 0x10ad);
    let pop = ZipfPopularity::new(cfg.zipf_users, cfg.zipf_s);
    let t0 = world.now();
    let end = t0 + cfg.horizon;
    for (req, at) in arrivals(&curve, t0, end, &mut wl_rng).into_iter().enumerate() {
        // Session affinity: a user's checks always land on the same host.
        let user = pop.sample_user(&mut wl_rng);
        let host = host_ids[user % cfg.hosts];
        world.inject(at, host, ProbeMsg::DoCheck { req: req as u64 });
    }

    // Spread revocations evenly, rotating the revoking manager so every
    // manager pair's epoch state contributes to the PS estimate.
    if cfg.revoke_ops > 0 {
        let gap = cfg.horizon.as_secs_f64() / cfg.revoke_ops as f64;
        for op in 0..cfg.revoke_ops {
            let at = t0 + SimDuration::from_secs_f64((op as f64 + 0.5) * gap);
            let revoker = manager_ids[(op as usize) % m];
            world.inject(at, revoker, ProbeMsg::DoRevoke { op });
        }
    }

    // Let the last timeout fire before reading the tallies.
    world.run_until(end + cfg.timeout + cfg.timeout);

    let mut reach = vec![0u64; m + 1];
    for &h in &host_ids {
        let p: &HostProbe = world.node_as(h);
        for (r, n) in p.reach.iter().enumerate() {
            reach[r] += n;
        }
    }
    let mut acks = vec![0u64; m];
    for &mg in &manager_ids {
        let p: &ManagerProbe = world.node_as(mg);
        for (a, n) in p.acks.iter().enumerate() {
            acks[a] += n;
        }
    }

    let checks: u64 = reach.iter().sum();
    let revokes: u64 = acks.iter().sum();
    let metrics = world.metrics().clone();
    let quorum_latency =
        metrics.histogram("scale.check_quorum_latency_s").and_then(|h| h.summary());
    let msgs_per_check = metrics.counter("net.sent") as f64 / checks.max(1) as f64;

    EmpiricalOutcome {
        m,
        pi: cfg.pi,
        check_quorum: cfg.check_quorum,
        checks,
        revokes,
        reach,
        acks,
        quorum_latency,
        msgs_per_check,
        metrics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> ScaleConfig {
        ScaleConfig {
            hosts: 200,
            managers: 5,
            check_quorum: 2,
            horizon: SimDuration::from_secs(120),
            checks_per_host: 4.0,
            zipf_users: 500,
            revoke_ops: 400,
            epoch: SimDuration::from_secs(5),
            seed: 7,
            ..ScaleConfig::default()
        }
    }

    #[test]
    fn empirical_tracks_model() {
        let out = run_empirical(&small_cfg());
        assert!(out.checks > 500, "expected a real sample, got {}", out.checks);
        assert_eq!(out.revokes, 400);
        // ~800 checks and 400 revocations: the estimate should sit within
        // a few points of the closed form at every quorum size.
        for c in 1..=out.m {
            assert!(
                (out.pa(c) - out.pa_model(c)).abs() < 0.06,
                "PA({c}) emp {} vs model {}",
                out.pa(c),
                out.pa_model(c)
            );
            assert!(
                (out.ps(c) - out.ps_model(c)).abs() < 0.08,
                "PS({c}) emp {} vs model {}",
                out.ps(c),
                out.ps_model(c)
            );
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = run_empirical(&small_cfg());
        let b = run_empirical(&small_cfg());
        assert_eq!(a.reach, b.reach);
        assert_eq!(a.acks, b.acks);
        assert_eq!(a.msgs_per_check, b.msgs_per_check);
    }

    #[test]
    fn scheduler_independent() {
        let cal = run_empirical(&small_cfg());
        let heap = run_empirical(&ScaleConfig { scheduler: Scheduler::NaiveHeap, ..small_cfg() });
        assert_eq!(cal.reach, heap.reach, "calendar queue must not change outcomes");
        assert_eq!(cal.acks, heap.acks);
    }

    #[test]
    fn monotone_in_quorum() {
        let out = run_empirical(&small_cfg());
        for c in 1..out.m {
            assert!(out.pa(c) >= out.pa(c + 1));
            assert!(out.ps(c) <= out.ps(c + 1));
        }
    }
}
