//! The §4.1 overhead model: "The performance overhead of the access
//! control algorithm is naturally O(C/Te), since the access rights have
//! to be checked every Te time units and checking them involves
//! communication with at least C managers."
//!
//! [`OverheadPoint::control_messages_per_second`] is that closed form;
//! `experiments::overhead_experiment` measures the same quantity on the
//! real protocol.

/// Parameters of the overhead model for one (host, user) pair that uses
/// the application continuously.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverheadPoint {
    /// Check quorum `C`.
    pub c: u64,
    /// Expiration time `Te` in seconds.
    pub te_secs: f64,
    /// Request rate of the user (invokes per second).
    pub invoke_rate: f64,
}

impl OverheadPoint {
    /// Creates a point.
    ///
    /// # Panics
    ///
    /// Panics unless all parameters are positive.
    pub fn new(c: u64, te_secs: f64, invoke_rate: f64) -> Self {
        assert!(c >= 1, "check quorum must be at least 1");
        assert!(te_secs > 0.0, "Te must be positive");
        assert!(invoke_rate > 0.0, "invoke rate must be positive");
        OverheadPoint { c, te_secs, invoke_rate }
    }

    /// Steady-state control messages per second for an actively used
    /// right: one check per `Te` window, each costing `2C` messages
    /// (query + reply per quorum member). This is the paper's `O(C/Te)`.
    pub fn control_messages_per_second(&self) -> f64 {
        // A continuously used right is re-checked once per expiry window;
        // checks cannot happen more often than invokes arrive.
        let checks_per_second = (1.0 / self.te_secs).min(self.invoke_rate);
        checks_per_second * 2.0 * self.c as f64
    }

    /// Expected fraction of invokes served from the cache.
    pub fn cache_hit_ratio(&self) -> f64 {
        let invokes_per_window = self.invoke_rate * self.te_secs;
        if invokes_per_window <= 1.0 {
            0.0
        } else {
            1.0 - 1.0 / invokes_per_window
        }
    }
}

/// Sweeps `Te` for a fixed `C` (and vice versa), producing `(x, messages
/// per second)` series for the overhead figure.
pub fn sweep_te(c: u64, te_values: &[f64], invoke_rate: f64) -> Vec<(f64, f64)> {
    te_values
        .iter()
        .map(|&te| (te, OverheadPoint::new(c, te, invoke_rate).control_messages_per_second()))
        .collect()
}

/// Sweeps `C` for a fixed `Te`.
pub fn sweep_c(c_values: &[u64], te_secs: f64, invoke_rate: f64) -> Vec<(u64, f64)> {
    c_values
        .iter()
        .map(|&c| (c, OverheadPoint::new(c, te_secs, invoke_rate).control_messages_per_second()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_is_linear_in_c() {
        let base = OverheadPoint::new(1, 10.0, 100.0).control_messages_per_second();
        for c in 2..=10 {
            let v = OverheadPoint::new(c, 10.0, 100.0).control_messages_per_second();
            assert!((v - base * c as f64).abs() < 1e-12);
        }
    }

    #[test]
    fn overhead_is_inverse_in_te() {
        let at_10 = OverheadPoint::new(3, 10.0, 100.0).control_messages_per_second();
        let at_20 = OverheadPoint::new(3, 20.0, 100.0).control_messages_per_second();
        assert!((at_10 / at_20 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn overhead_saturates_at_invoke_rate() {
        // With Te smaller than the inter-arrival time, every invoke
        // checks: the cap is the invoke rate.
        let p = OverheadPoint::new(2, 0.001, 5.0);
        assert!((p.control_messages_per_second() - 5.0 * 4.0).abs() < 1e-12);
    }

    #[test]
    fn cache_hit_ratio_behaviour() {
        // 100 invokes per window: 99% hits.
        let p = OverheadPoint::new(1, 10.0, 10.0);
        assert!((p.cache_hit_ratio() - 0.99).abs() < 1e-12);
        // Less than one invoke per window: every invoke is a miss.
        let p = OverheadPoint::new(1, 1.0, 0.5);
        assert_eq!(p.cache_hit_ratio(), 0.0);
    }

    #[test]
    fn sweeps_have_expected_shapes() {
        let te_series = sweep_te(2, &[1.0, 2.0, 4.0, 8.0], 100.0);
        for w in te_series.windows(2) {
            assert!(w[1].1 < w[0].1, "bigger Te, less overhead");
        }
        let c_series = sweep_c(&[1, 2, 4, 8], 10.0, 100.0);
        for w in c_series.windows(2) {
            assert!(w[1].1 > w[0].1, "bigger C, more overhead");
        }
    }

    #[test]
    #[should_panic(expected = "Te must be positive")]
    fn te_validated() {
        OverheadPoint::new(1, 0.0, 1.0);
    }
}
