//! Protocol-level experiments: the paper's analytic claims, measured on
//! the *real* protocol over a partitioned simulated WAN.
//!
//! The §4.1 model abstracts a check as "can the host reach C of M
//! managers right now?". These experiments run the actual
//! query/timeout/retry machinery of `wanacl-core` under the same i.i.d.
//! inaccessibility model ([`EpochIid`]) and count what really happened.

use wanacl_core::prelude::*;
use wanacl_sim::net::partition::{EpochIid, ScheduledPartitions};
use wanacl_sim::net::WanNet;
use wanacl_sim::node::NodeId;
use wanacl_sim::time::{SimDuration, SimTime};

/// An empirical probability from protocol runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProtocolEstimate {
    /// Fraction of successful trials.
    pub value: f64,
    /// Number of trials.
    pub trials: u64,
    /// Binomial standard error.
    pub std_error: f64,
}

impl ProtocolEstimate {
    fn from_counts(successes: u64, trials: u64) -> Self {
        let p = successes as f64 / trials as f64;
        ProtocolEstimate {
            value: p,
            trials,
            std_error: (p * (1.0 - p) / trials as f64).sqrt(),
        }
    }

    /// Whether `expected` lies within `sigmas` standard errors (floored
    /// at 0.02 absolute, since the protocol adds small non-model effects
    /// like timeout edges).
    pub fn consistent_with(&self, expected: f64, sigmas: f64) -> bool {
        (self.value - expected).abs() <= (sigmas * self.std_error).max(0.02)
    }
}

impl std::fmt::Display for ProtocolEstimate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.5} ± {:.5} (n={})", self.value, self.std_error, self.trials)
    }
}

const EPOCH: SimDuration = SimDuration::from_secs(10);

/// Measures empirical `PA(C)`: one cold access check per connectivity
/// epoch; success = the check quorum was assembled before the timeout.
///
/// Matches [`crate::model::pa`] because the host queries all `M`
/// managers and needs any `C` grants, and the `EpochIid` overlay holds
/// pairwise connectivity fixed for the duration of each check.
pub fn measure_availability(m: usize, c: usize, pi: f64, trials: u64, seed: u64) -> ProtocolEstimate {
    assert!(trials > 0, "need at least one trial");
    let policy = Policy::builder(c)
        .revocation_bound(SimDuration::from_secs(1)) // cold cache each trial
        .clock_rate_bound(1.0)
        .query_timeout(SimDuration::from_secs(2))
        .max_attempts(1)
        .build();
    // Node layout (Scenario order): managers 0..m, host m, user m+1,
    // admin m+2. Exempt the user<->host edge from the partition model.
    let host = NodeId::from_index(m);
    let user_node = NodeId::from_index(m + 1);
    let oracle = EpochIid::new(pi, EPOCH, seed ^ 0x9e37).exempt_pair(host, user_node);
    let net = WanNet::builder()
        .constant_delay(SimDuration::from_millis(20))
        .partitions(Box::new(oracle))
        .build();
    let mut d = Scenario::builder(seed)
        .managers(m)
        .hosts(1)
        .users(1)
        .policy(policy)
        .all_users_granted()
        .net(Box::new(net))
        .request_timeout(SimDuration::from_secs(8))
        .build();

    // One invoke per epoch, at the epoch's center.
    for i in 0..trials {
        let at = SimTime::ZERO + EPOCH.mul_f64(i as f64) + EPOCH.mul_f64(0.45);
        d.world.inject(
            at,
            d.users[0].1,
            ProtoMsg::Invoke {
                app: d.app,
                user: UserId(1),
                req: ReqId(0),
                payload: "trial".into(),
                signature: None,
            },
        );
    }
    d.run_until(SimTime::ZERO + EPOCH.mul_f64(trials as f64 + 2.0));
    let stats = d.user_agent(0).stats();
    assert_eq!(stats.sent, trials, "every trial must fire");
    ProtocolEstimate::from_counts(stats.allowed, trials)
}

/// Measures empirical `PS(C)`: one revoke per connectivity epoch, issued
/// at manager 0; success = the update quorum (`M − C + 1`) was assembled
/// within the same epoch ("timely").
pub fn measure_security(m: usize, c: usize, pi: f64, trials: u64, seed: u64) -> ProtocolEstimate {
    assert!(trials > 0, "need at least one trial");
    let policy = Policy::builder(c)
        .revocation_bound(SimDuration::from_secs(30))
        .query_timeout(SimDuration::from_secs(2))
        .max_attempts(1)
        .build();
    // Node layout: managers 0..m, host m, user m+1, admin m+2. Exempt
    // the admin<->manager0 edge so issuing never fails.
    let admin_node = NodeId::from_index(m + 2);
    let mgr0 = NodeId::from_index(0);
    let oracle = EpochIid::new(pi, EPOCH, seed ^ 0x51ed).exempt_pair(admin_node, mgr0);
    let net = WanNet::builder()
        .constant_delay(SimDuration::from_millis(20))
        .partitions(Box::new(oracle))
        .build();
    // Fast retransmission so within-epoch retries don't limit us.
    let tuning = ManagerConfig {
        retry_interval: SimDuration::from_millis(250),
        ..ManagerConfig::default()
    };
    // One revoke per epoch at its center (the user's right exists only
    // for the first; revoking an absent right disseminates identically,
    // which is all PS measures).
    let script: Vec<AdminAction> = (0..trials)
        .map(|i| AdminAction {
            delay: EPOCH.mul_f64(i as f64) + EPOCH.mul_f64(0.45),
            op: AclOp::Revoke { app: AppId(0), user: UserId(1), right: Right::Use },
        })
        .collect();
    let mut d = Scenario::builder(seed)
        .managers(m)
        .hosts(1)
        .users(1)
        .policy(policy)
        .all_users_granted()
        .net(Box::new(net))
        .manager_tuning(tuning)
        .admin_script(script)
        .build();
    d.run_until(SimTime::ZERO + EPOCH.mul_f64(trials as f64 + 2.0));

    let agent = d.admin_agent();
    assert_eq!(agent.op_count() as u64, trials);
    // Timely = stable within the issuing epoch (well under one epoch).
    let timely_bound = EPOCH.mul_f64(0.5);
    let timely = (0..agent.op_count())
        .filter(|&i| agent.stable_latency(i).map(|l| l <= timely_bound).unwrap_or(false))
        .count() as u64;
    ProtocolEstimate::from_counts(timely, trials)
}

/// Measures empirical availability with `R` retry attempts under subset
/// fan-out, with the per-attempt query timeout stretched past the
/// connectivity epoch so every attempt sees a fresh draw — the
/// independence regime of [`crate::retry::pa_with_retries`].
pub fn measure_availability_with_retries(
    m: usize,
    c: usize,
    pi: f64,
    r: u32,
    trials: u64,
    seed: u64,
) -> ProtocolEstimate {
    assert!(trials > 0, "need at least one trial");
    let policy = Policy::builder(c)
        .revocation_bound(SimDuration::from_secs(1))
        .clock_rate_bound(1.0)
        .query_timeout(EPOCH) // one attempt per connectivity epoch
        .max_attempts(r)
        .fanout(QueryFanout::Subset)
        .build();
    let host = NodeId::from_index(m);
    let user_node = NodeId::from_index(m + 1);
    let oracle = EpochIid::new(pi, EPOCH, seed ^ 0x7e77).exempt_pair(host, user_node);
    let net = WanNet::builder()
        .constant_delay(SimDuration::from_millis(20))
        .partitions(Box::new(oracle))
        .build();
    // Trials spaced past the worst case R epochs.
    let spacing = EPOCH.mul_f64(r as f64 + 2.0);
    let mut d = Scenario::builder(seed)
        .managers(m)
        .hosts(1)
        .users(1)
        .policy(policy)
        .all_users_granted()
        .net(Box::new(net))
        .request_timeout(spacing)
        .build();
    for i in 0..trials {
        let at = SimTime::ZERO + spacing.mul_f64(i as f64) + EPOCH.mul_f64(0.45);
        d.world.inject(
            at,
            d.users[0].1,
            ProtoMsg::Invoke {
                app: d.app,
                user: UserId(1),
                req: ReqId(0),
                payload: "trial".into(),
                signature: None,
            },
        );
    }
    d.run_until(SimTime::ZERO + spacing.mul_f64(trials as f64 + 2.0));
    let stats = d.user_agent(0).stats();
    assert_eq!(stats.sent, trials, "every trial must fire");
    ProtocolEstimate::from_counts(stats.allowed, trials)
}

/// Outcome of the §3.3 freeze-vs-quorum comparison (experiment E6).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FreezeComparison {
    /// Fraction of in-partition requests allowed under the plain quorum
    /// strategy.
    pub quorum_allowed: f64,
    /// Fraction of in-partition requests allowed under the freeze
    /// strategy.
    pub freeze_allowed: f64,
    /// Requests issued during the partition (per strategy).
    pub requests: u64,
}

/// Compares the quorum strategy against the freeze strategy during a
/// manager–manager partition: the freeze strategy trades availability
/// (no new grants anywhere) for tighter revocation behaviour.
pub fn freeze_vs_quorum(seed: u64) -> FreezeComparison {
    let run = |freeze: bool| -> (u64, u64) {
        let mut builder = Policy::builder(1)
            .revocation_bound(SimDuration::from_secs(60))
            .clock_rate_bound(0.5) // te = 30 s
            .query_timeout(SimDuration::from_millis(300))
            .max_attempts(1);
        if freeze {
            builder = builder.freeze(FreezePolicy {
                ti: SimDuration::from_secs(10),
                heartbeat_interval: SimDuration::from_secs(1),
            });
        }
        let policy = builder.build();
        // Managers 0,1; host 2; user 3; admin 4. Managers cut from each
        // other 20 s .. 120 s.
        let cut = ScheduledPartitions::cut_between(
            vec![NodeId::from_index(0)],
            vec![NodeId::from_index(1)],
            SimTime::from_secs(20),
            SimTime::from_secs(120),
        );
        let net = WanNet::builder()
            .constant_delay(SimDuration::from_millis(20))
            .partitions(Box::new(cut))
            .build();
        let mut d = Scenario::builder(seed)
            .managers(2)
            .hosts(1)
            .users(1)
            .policy(policy)
            .all_users_granted()
            .net(Box::new(net))
            .build();
        // Requests every 2 s throughout the partition window, starting
        // after the freeze detector (Ti·b = 5 s of silence) has tripped.
        // The cold-cache policy (te = 30 s) means early grants expire
        // mid-window too.
        let mut sent = 0u64;
        for t in (30..118).step_by(2) {
            d.world.inject(
                SimTime::from_secs(t),
                d.users[0].1,
                ProtoMsg::Invoke {
                    app: d.app,
                    user: UserId(1),
                    req: ReqId(0),
                    payload: "during-partition".into(),
                    signature: None,
                },
            );
            sent += 1;
        }
        d.run_until(SimTime::from_secs(125));
        (d.user_agent(0).stats().allowed, sent)
    };
    let (q_allowed, q_sent) = run(false);
    let (f_allowed, f_sent) = run(true);
    assert_eq!(q_sent, f_sent);
    FreezeComparison {
        quorum_allowed: q_allowed as f64 / q_sent as f64,
        freeze_allowed: f_allowed as f64 / f_sent as f64,
        requests: q_sent,
    }
}

/// Outcome of the E7 overhead measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverheadMeasurement {
    /// Control messages (queries + replies) per second, measured.
    pub measured_msgs_per_sec: f64,
    /// The `O(C/Te)` closed-form prediction.
    pub predicted_msgs_per_sec: f64,
    /// Measured cache hit ratio.
    pub cache_hit_ratio: f64,
}

/// Measures control-message overhead for one continuously active user as
/// a function of `C` and `Te` (subset fan-out, so cost per check is
/// exactly `2C`).
pub fn measure_overhead(c: usize, te: SimDuration, seed: u64) -> OverheadMeasurement {
    let m = 10usize;
    let invoke_period = SimDuration::from_millis(500);
    let policy = Policy::builder(c)
        .revocation_bound(te)
        .clock_rate_bound(1.0)
        .query_timeout(SimDuration::from_secs(2))
        .max_attempts(3)
        .fanout(QueryFanout::Subset)
        .build();
    let mut d = Scenario::builder(seed)
        .managers(m)
        .hosts(1)
        .users(1)
        .policy(policy)
        .all_users_granted()
        .build();
    let horizon = SimDuration::from_secs(600);
    let mut t = SimTime::from_secs(1);
    let mut invokes = 0u64;
    while t < SimTime::ZERO + horizon {
        d.world.inject(
            t,
            d.users[0].1,
            ProtoMsg::Invoke {
                app: d.app,
                user: UserId(1),
                req: ReqId(0),
                payload: "steady".into(),
                signature: None,
            },
        );
        invokes += 1;
        t += invoke_period;
    }
    d.run_until(SimTime::ZERO + horizon + SimDuration::from_secs(5));
    let queries = d.world.metrics().counter("host.queries_sent");
    let replies = d.world.metrics().counter("mgr.grants") + d.world.metrics().counter("mgr.denies");
    let measured = (queries + replies) as f64 / horizon.as_secs_f64();
    let rate = 1.0 / invoke_period.as_secs_f64();
    let predicted = crate::overhead::OverheadPoint::new(c as u64, te.as_secs_f64(), rate)
        .control_messages_per_second();
    let hits = d.host(0).stats().cache_hits;
    OverheadMeasurement {
        measured_msgs_per_sec: measured,
        predicted_msgs_per_sec: predicted,
        cache_hit_ratio: hits as f64 / invokes as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{pa, ps};

    #[test]
    fn empirical_availability_tracks_model() {
        for &(m, c, pi) in &[(5usize, 3usize, 0.1), (5, 5, 0.2)] {
            let est = measure_availability(m, c, pi, 300, 11);
            let want = pa(m as u64, c as u64, pi);
            assert!(
                est.consistent_with(want, 4.0),
                "M={m} C={c} Pi={pi}: {est} vs model {want:.5}"
            );
        }
    }

    #[test]
    fn empirical_security_tracks_model() {
        for &(m, c, pi) in &[(5usize, 3usize, 0.1), (5, 1, 0.2)] {
            let est = measure_security(m, c, pi, 300, 13);
            let want = ps(m as u64, c as u64, pi);
            assert!(
                est.consistent_with(want, 4.0),
                "M={m} C={c} Pi={pi}: {est} vs model {want:.5}"
            );
        }
    }

    #[test]
    fn empirical_retry_availability_tracks_retry_model() {
        use crate::retry::pa_with_retries;
        use wanacl_core::policy::QueryFanout;
        for &(m, c, pi, r) in &[(5usize, 2usize, 0.3, 3u32), (5, 1, 0.4, 2)] {
            let est = measure_availability_with_retries(m, c, pi, r, 250, 21);
            let want = pa_with_retries(m as u64, c as u64, pi, r, QueryFanout::Subset);
            assert!(
                est.consistent_with(want, 4.0),
                "M={m} C={c} Pi={pi} R={r}: {est} vs model {want:.5}"
            );
        }
    }

    #[test]
    fn freeze_strategy_reduces_partition_availability() {
        let cmp = freeze_vs_quorum(17);
        assert!(
            cmp.freeze_allowed < cmp.quorum_allowed,
            "freeze should cost availability: {cmp:?}"
        );
        assert!(cmp.quorum_allowed > 0.9, "quorum keeps serving: {cmp:?}");
        // Freeze still serves from live cache entries early in the
        // window, but must be substantially lower overall.
        assert!(cmp.freeze_allowed < 0.5, "freeze blocks new checks: {cmp:?}");
    }

    #[test]
    fn overhead_measurement_matches_big_o_model() {
        let m = measure_overhead(2, SimDuration::from_secs(10), 19);
        // 2C/Te = 0.4 msgs/s; allow protocol slack (timer alignment).
        assert!(
            (m.measured_msgs_per_sec - m.predicted_msgs_per_sec).abs()
                / m.predicted_msgs_per_sec
                < 0.35,
            "{m:?}"
        );
        assert!(m.cache_hit_ratio > 0.9, "{m:?}");
    }
}
