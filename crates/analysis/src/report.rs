//! Shared printing routines for the `repro_*` binaries: each function
//! regenerates one paper artifact (or prose claim) and writes it to
//! stdout in paper-vs-measured form.

use wanacl_baselines::prelude::{run_strategy, ComparisonConfig, Strategy};
use wanacl_sim::rng::SimRng;
use wanacl_sim::time::SimDuration;

use crate::experiments::{freeze_vs_quorum, measure_availability, measure_overhead, measure_security};
use crate::figures::{fig5, render_fig5};
use crate::hetero::HeteroModel;
use crate::model::{pa, ps};
use crate::montecarlo::{estimate_pa, estimate_ps};
use crate::overhead::OverheadPoint;
use crate::tables::{prob, render_table};

/// Table 1 with closed-form, Monte Carlo, and protocol-level columns.
pub fn table1_report(mc_trials: u64, protocol_trials: u64) -> String {
    let mut out = String::new();
    out.push_str("== Table 1: effects of C on availability and security (M = 10) ==\n");
    out.push_str("   (analytic = paper's closed form; mc = Monte Carlo; proto = real protocol runs)\n\n");
    for &pi in &[0.1, 0.2] {
        let mut rng = SimRng::seed_from(42);
        out.push_str(&format!("-- Pi = {pi} --\n"));
        let headers =
            ["C", "PA analytic", "PA mc", "PA proto", "PS analytic", "PS mc", "PS proto"];
        let mut rows = Vec::new();
        for c in 1..=10u64 {
            let pa_mc = estimate_pa(10, c, pi, mc_trials, &mut rng);
            let ps_mc = estimate_ps(10, c, pi, mc_trials, &mut rng);
            let pa_proto = measure_availability(10, c as usize, pi, protocol_trials, 100 + c);
            let ps_proto = measure_security(10, c as usize, pi, protocol_trials, 200 + c);
            rows.push(vec![
                c.to_string(),
                prob(pa(10, c, pi)),
                prob(pa_mc.value),
                prob(pa_proto.value),
                prob(ps(10, c, pi)),
                prob(ps_mc.value),
                prob(ps_proto.value),
            ]);
        }
        out.push_str(&render_table(&headers, &rows));
        out.push('\n');
    }
    out
}

/// Table 2 with closed-form and Monte Carlo columns.
pub fn table2_report(mc_trials: u64) -> String {
    let mut out = String::new();
    out.push_str("== Table 2: effects of M and C on availability and security ==\n\n");
    let headers = [
        "M", "C", "PA a(0.1)", "PS a(0.1)", "PA mc(0.1)", "PS mc(0.1)", "PA a(0.2)", "PS a(0.2)",
        "PA mc(0.2)", "PS mc(0.2)",
    ];
    let mut rng = SimRng::seed_from(7);
    let mut rows = Vec::new();
    let ms = [4u64, 6, 8, 10, 12];
    let specs: Vec<(u64, u64)> =
        ms.iter().map(|&m| (m, 2)).chain(ms.iter().map(|&m| (m, m / 2))).collect();
    for (m, c) in specs {
        let mut row = vec![m.to_string(), c.to_string()];
        for &pi in &[0.1, 0.2] {
            row.push(prob(pa(m, c, pi)));
            row.push(prob(ps(m, c, pi)));
        }
        for &pi in &[0.1, 0.2] {
            row.push(prob(estimate_pa(m, c, pi, mc_trials, &mut rng).value));
            row.push(prob(estimate_ps(m, c, pi, mc_trials, &mut rng).value));
        }
        // Reorder: analytic(0.1), analytic(0.2), mc(0.1), mc(0.2) →
        // match header order analytic(0.1), mc(0.1), analytic(0.2), mc(0.2).
        let reordered = vec![
            row[0].clone(),
            row[1].clone(),
            row[2].clone(),
            row[3].clone(),
            row[6].clone(),
            row[7].clone(),
            row[4].clone(),
            row[5].clone(),
            row[8].clone(),
            row[9].clone(),
        ];
        rows.push(reordered);
    }
    out.push_str(&render_table(&headers, &rows));
    out.push('\n');
    out.push_str("Upper half (C fixed at 2): growing M raises PA but lowers PS.\n");
    out.push_str("Lower half (C = M/2): growing M raises both.\n");
    out
}

/// Figure 5: curves, ASCII charts, sweet range, protocol-level points.
pub fn fig5_report(protocol_trials: u64) -> String {
    let mut out = String::new();
    out.push_str("== Figure 5: availability and security curves vs check quorum ==\n\n");
    for &pi in &[0.1, 0.2] {
        let series = fig5(10, pi);
        out.push_str(&render_fig5(&series, 16));
        if let Some((lo, hi)) = series.sweet_range(0.99) {
            out.push_str(&format!(
                "Range of C with both PA and PS >= 0.99: {lo}..={hi} (around M/2, as the paper observes)\n"
            ));
        } else {
            out.push_str("No C keeps both probabilities >= 0.99 at this Pi.\n");
        }
        out.push('\n');
        if protocol_trials > 0 {
            out.push_str("Protocol-level spot checks (empirical, real protocol):\n");
            let headers = ["C", "PA model", "PA protocol", "PS model", "PS protocol"];
            let mut rows = Vec::new();
            for &c in &[1usize, 3, 5, 7, 10] {
                let pa_p = measure_availability(10, c, pi, protocol_trials, 300 + c as u64);
                let ps_p = measure_security(10, c, pi, protocol_trials, 400 + c as u64);
                rows.push(vec![
                    c.to_string(),
                    prob(pa(10, c as u64, pi)),
                    prob(pa_p.value),
                    prob(ps(10, c as u64, pi)),
                    prob(ps_p.value),
                ]);
            }
            out.push_str(&render_table(&headers, &rows));
            out.push('\n');
        }
    }
    out
}

/// The §4.1 `O(C/Te)` overhead claim, model vs measured.
pub fn overhead_report() -> String {
    let mut out = String::new();
    out.push_str("== Overhead: control messages per second, O(C/Te) (§4.1) ==\n\n");
    let headers = ["C", "Te (s)", "model msg/s", "measured msg/s", "cache hit ratio"];
    let mut rows = Vec::new();
    for &(c, te) in &[(1usize, 5u64), (1, 10), (1, 20), (2, 10), (4, 10), (8, 10)] {
        let m = measure_overhead(c, SimDuration::from_secs(te), 1000 + c as u64 + te);
        let model = OverheadPoint::new(c as u64, te as f64, 2.0).control_messages_per_second();
        rows.push(vec![
            c.to_string(),
            te.to_string(),
            format!("{model:.3}"),
            format!("{:.3}", m.measured_msgs_per_sec),
            format!("{:.3}", m.cache_hit_ratio),
        ]);
    }
    out.push_str(&render_table(&headers, &rows));
    out.push_str("\nOverhead grows linearly in C and inversely in Te, as the paper states.\n");
    out
}

/// The §3.3 freeze-vs-quorum tradeoff.
pub fn freeze_report() -> String {
    let cmp = freeze_vs_quorum(99);
    let mut out = String::new();
    out.push_str("== Freeze strategy vs quorum strategy during a manager partition (§3.3) ==\n\n");
    out.push_str(&format!(
        "requests during partition window: {}\n\
         allowed under quorum strategy:    {:.1}%\n\
         allowed under freeze strategy:    {:.1}%\n\n",
        cmp.requests,
        cmp.quorum_allowed * 100.0,
        cmp.freeze_allowed * 100.0
    ));
    out.push_str(
        "The freeze strategy \"may force managers to expire all access rights and\n\
         therefore make the application completely inaccessible\" (§3.3) — the\n\
         quorum strategy keeps serving, trading revocation latency instead.\n",
    );
    out
}

/// The §4.1 heterogeneous extension worked example.
pub fn hetero_report() -> String {
    let mut out = String::new();
    out.push_str("== Heterogeneous inaccessibility (§4.1 extension) ==\n\n");
    // 6 managers; manager 0 is poorly connected to its peers.
    let m = 6;
    let c = 3;
    let mut mgr_pi = vec![vec![0.05; m]; m];
    mgr_pi[0][1..].fill(0.6);
    for row in mgr_pi.iter_mut().skip(1) {
        row[0] = 0.6;
    }
    // Two hosts: one well connected, one behind a congested link.
    let host_pi = vec![vec![0.05; m], vec![0.35; m]];
    let model = HeteroModel::new(host_pi, mgr_pi, c);

    let headers = ["entity", "probability"];
    let mut rows = vec![
        vec!["PA host0 (good links)".into(), prob(model.host_availability(0))],
        vec!["PA host1 (congested)".into(), prob(model.host_availability(1))],
        vec!["PS manager0 (isolated)".into(), prob(model.manager_security(0))],
        vec!["PS manager1 (normal)".into(), prob(model.manager_security(1))],
    ];
    rows.push(vec![
        "system PA (uniform traffic)".into(),
        prob(model.system_availability(&[1.0, 1.0])),
    ]);
    rows.push(vec![
        "system PS (uniform issuers)".into(),
        prob(model.system_security(&vec![1.0; m])),
    ]);
    let mut hot = vec![1.0; m];
    hot[0] = 10.0;
    rows.push(vec![
        "system PS (isolated mgr issues 10x)".into(),
        prob(model.system_security(&hot)),
    ]);
    out.push_str(&render_table(&headers, &rows));
    out.push_str(
        "\n\"…if there is one manager that is frequently inaccessible from the\n\
         others, the overall security of the system can be seriously reduced if\n\
         this manager frequently issues and revokes access rights.\" (§4.1)\n",
    );
    out
}

/// The §3 dissemination-strategy comparison (E8).
pub fn baselines_report(cfg: &ComparisonConfig) -> String {
    let mut out = String::new();
    out.push_str("== Dissemination strategies under an identical workload (§3 / E8) ==\n\n");
    let headers = [
        "strategy",
        "total msgs",
        "checks",
        "ctrl msg/check",
        "update msgs",
        "stale allows",
        "allowed frac",
    ];
    let mut rows = Vec::new();
    for s in Strategy::all() {
        let r = run_strategy(s, cfg);
        rows.push(vec![
            s.name().to_string(),
            r.total_messages.to_string(),
            r.checks.to_string(),
            format!("{:.2}", r.control_per_check),
            r.update_messages.to_string(),
            r.stale_allows.to_string(),
            format!("{:.3}", r.allowed_fraction),
        ]);
    }
    out.push_str(&render_table(&headers, &rows));
    out.push_str(
        "\nFull replication: free checks, expensive updates. Local-only: free\n\
         updates, O(M) checks. Eventual gossip: cheap but unbounded staleness.\n\
         The paper's design caches manager grants: check cost amortizes toward\n\
         zero while revocation stays time-bounded.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_report_is_well_formed() {
        let text = table2_report(2_000);
        assert!(text.contains("0.97200") || text.contains("0.9720"));
        assert!(text.lines().count() > 12);
    }

    #[test]
    fn overhead_report_mentions_linearity() {
        let text = overhead_report();
        assert!(text.contains("linearly in C"));
    }

    #[test]
    fn hetero_report_shows_isolated_manager_penalty() {
        let text = hetero_report();
        assert!(text.contains("PS manager0"));
    }

    #[test]
    fn fig5_report_without_protocol_runs_is_fast() {
        let text = fig5_report(0);
        assert!(text.contains("Figure 5"));
        assert!(text.contains("Range of C"));
    }
}
