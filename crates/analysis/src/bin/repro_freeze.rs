//! Regenerates the §3.3 freeze-vs-quorum comparison (experiment E6).

fn main() {
    print!("{}", wanacl_analysis::report::freeze_report());
}
