//! Regenerates the §4.1 O(C/Te) overhead claim, model vs measured.

fn main() {
    print!("{}", wanacl_analysis::report::overhead_report());
}
