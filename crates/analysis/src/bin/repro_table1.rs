//! Regenerates the paper's Table 1 (analytic, Monte Carlo, and
//! protocol-level). Usage: `repro_table1 [mc_trials] [protocol_trials]`.

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mc: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(100_000);
    let proto: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(200);
    print!("{}", wanacl_analysis::report::table1_report(mc, proto));
}
