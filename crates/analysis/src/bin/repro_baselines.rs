//! Regenerates the §3 dissemination-strategy comparison (experiment E8).

use wanacl_baselines::prelude::ComparisonConfig;

fn main() {
    let cfg = ComparisonConfig::default();
    print!("{}", wanacl_analysis::report::baselines_report(&cfg));
}
