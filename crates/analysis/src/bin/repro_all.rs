//! Regenerates every table, figure, and prose claim in one run.
//! Usage: `repro_all [mc_trials] [protocol_trials]`.

use wanacl_baselines::prelude::ComparisonConfig;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mc: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(100_000);
    let proto: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(200);
    println!("{}", wanacl_analysis::report::table1_report(mc, proto));
    println!("{}", wanacl_analysis::report::table2_report(mc));
    println!("{}", wanacl_analysis::report::fig5_report(proto));
    println!("{}", wanacl_analysis::report::overhead_report());
    println!("{}", wanacl_analysis::report::freeze_report());
    println!("{}", wanacl_analysis::report::hetero_report());
    println!("{}", wanacl_analysis::report::baselines_report(&ComparisonConfig::default()));

    // E10: scale (kept brief here; `repro_scale` runs the full sweeps).
    use wanacl_analysis::scale::{measure_scale, measure_scale_affinity};
    use wanacl_sim::time::SimDuration;
    let te = SimDuration::from_secs(600);
    let horizon = SimDuration::from_secs(1_200);
    println!("== Scale spot check (8 hosts, 200 users) ==\n");
    let scatter = measure_scale(8, 200, te, horizon, 1);
    let affinity = measure_scale_affinity(8, 200, te, horizon, 1);
    println!(
        "scatter:  hit ratio {:.3}, {:.3} mgr queries/invoke",
        scatter.cache_hit_ratio, scatter.queries_per_invoke
    );
    println!(
        "affinity: hit ratio {:.3}, {:.3} mgr queries/invoke",
        affinity.cache_hit_ratio, affinity.queries_per_invoke
    );
}
