//! Regenerates the §4.1 heterogeneous-inaccessibility worked example.

fn main() {
    print!("{}", wanacl_analysis::report::hetero_report());
}
