//! Regenerates the paper's Table 2. Usage: `repro_table2 [mc_trials]`.

fn main() {
    let mc: u64 =
        std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(100_000);
    print!("{}", wanacl_analysis::report::table2_report(mc));
}
