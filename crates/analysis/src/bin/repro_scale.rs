//! E10: host/user scaling and popularity skew — the "massively
//! replicated" deployments the paper targets — plus E11: the paper's
//! Table 1, Table 2, and Figure 5 regenerated *empirically* from
//! 10,000-host probe worlds and compared against the closed form.

use std::collections::BTreeMap;

use wanacl_analysis::empirical::{run_empirical, EmpiricalOutcome, ScaleConfig};
use wanacl_analysis::figures::fig5;
use wanacl_analysis::scale::{measure_scale, measure_scale_affinity, measure_skew};
use wanacl_sim::time::SimDuration;

/// One probe world per `(M, Pi)`; `checks_per_host` trades sample size
/// against runtime, and the deep Table 1 worlds get the larger sample.
fn probe(m: usize, pi: f64, checks_per_host: f64) -> EmpiricalOutcome {
    run_empirical(&ScaleConfig {
        managers: m,
        check_quorum: (m / 2).max(1),
        pi,
        checks_per_host,
        ..ScaleConfig::default()
    })
}

fn empirical_section() {
    let pis = [0.1, 0.2];
    println!("== Empirical Table 1 / Table 2 / Figure 5 (10,000-host probe worlds) ==\n");
    println!("Every host really fans each check out to all M managers across the");
    println!("regional WAN while EpochIid drops pairs with probability Pi per epoch;");
    println!("arrivals follow a Zipf(s=1.1) popularity law under a diurnal curve.");
    println!("A check's reach R (replies before the deadline) yields the whole");
    println!("column at once: PA(C) = P[R >= C], and revocation ack counts give");
    println!("PS(C) = P[acks >= M - C].\n");

    // One world per (M, Pi) covers every C; M=10 doubles as the Table 1
    // and Figure 5 run, so it gets the deep sample.
    let mut runs: BTreeMap<(usize, u64), EmpiricalOutcome> = BTreeMap::new();
    for &m in &[4usize, 6, 8, 10, 12] {
        for pi in pis {
            let depth = if m == 10 { 5.0 } else { 2.0 };
            runs.insert((m, (pi * 10.0) as u64), probe(m, pi, depth));
        }
    }
    let run = |m: usize, pi: f64| &runs[&(m, (pi * 10.0) as u64)];

    println!("Table 1 (M=10), empirical vs analytic:\n");
    println!("  C   PA emp  PA model  PS emp  PS model   [Pi=0.1]    \
              PA emp  PA model  PS emp  PS model   [Pi=0.2]");
    println!(" {}", "-".repeat(104));
    for c in 1..=10 {
        let (a, b) = (run(10, 0.1), run(10, 0.2));
        println!(
            " {c:2}   {:6.4}    {:6.4}  {:6.4}    {:6.4}               \
             {:6.4}    {:6.4}  {:6.4}    {:6.4}",
            a.pa(c),
            a.pa_model(c),
            a.ps(c),
            a.ps_model(c),
            b.pa(c),
            b.pa_model(c),
            b.ps(c),
            b.ps_model(c)
        );
    }
    for pi in pis {
        let o = run(10, pi);
        println!(
            "  Pi={pi}: {} checks, {} revocations, max |empirical - analytic| = {:.4}",
            o.checks,
            o.revokes,
            o.max_abs_error()
        );
    }

    println!("\nFigure 5 cross-check — sweet range where PA(C), PS(C) >= 0.9:");
    for pi in pis {
        let o = run(10, pi);
        println!(
            "  Pi={pi}: model {:?}  empirical {:?}",
            fig5(10, pi).sweet_range(0.9),
            o.fig5_series().sweet_range(0.9)
        );
    }

    println!("\nTable 2 (C=2 and C=M/2), empirical vs analytic:\n");
    println!("   M   C   PA emp  PA model  PS emp  PS model   [Pi=0.1]    \
              PA emp  PA model  PS emp  PS model   [Pi=0.2]");
    println!(" {}", "-".repeat(108));
    let ms = [4usize, 6, 8, 10, 12];
    let rows =
        ms.iter().map(|&m| (m, 2usize)).chain(ms.iter().map(|&m| (m, m / 2)));
    for (m, c) in rows {
        let (a, b) = (run(m, 0.1), run(m, 0.2));
        println!(
            " {m:3}  {c:2}   {:6.4}    {:6.4}  {:6.4}    {:6.4}               \
             {:6.4}    {:6.4}  {:6.4}    {:6.4}",
            a.pa(c),
            a.pa_model(c),
            a.ps(c),
            a.ps_model(c),
            b.pa(c),
            b.pa_model(c),
            b.ps(c),
            b.ps_model(c)
        );
    }

    let o = run(10, 0.1);
    println!("\nPer-operation check overhead (M=10, C=5, Pi=0.1, 10,000 hosts):");
    if let Some(s) = &o.quorum_latency {
        println!(
            "  time-to-quorum: mean {:.3}s  p50 {:.3}s  p99 {:.3}s  over {} quorate checks",
            s.mean, s.p50, s.p99, s.count
        );
    }
    let unavail = o.metrics.counter("scale.check_unavail");
    println!("  messages per check round: {:.2}", o.msgs_per_check);
    println!(
        "  unavailable rounds: {} ({:.2}%)",
        unavail,
        100.0 * unavail as f64 / o.checks.max(1) as f64
    );
    println!("\nThe measured curves trace the closed form (PS's deviation is the");
    println!("largest: one revoker's M-1 pair states are redrawn only once per");
    println!("epoch, so its effective sample is epochs x managers, not checks).");
    println!();
}

fn main() {
    let te = SimDuration::from_secs(600);
    let horizon = SimDuration::from_secs(1_200);
    println!("== Scaling hosts and users (M=5, C=2, Te=600s, 20 min simulated) ==\n");
    println!(" hosts  users  invokes  hit ratio  mgr queries/invoke  msgs/invoke");
    println!("---------------------------------------------------------------------");
    for (h, u) in [(2usize, 20usize), (4, 50), (8, 100), (8, 200), (16, 400)] {
        let p = measure_scale(h, u, te, horizon, 1);
        println!(
            " {:5}  {:5}  {:7}  {:9.3}  {:18.3}  {:11.3}",
            p.hosts, p.users, p.invokes, p.cache_hit_ratio, p.queries_per_invoke, p.messages_per_invoke
        );
    }
    println!("\nScattering each user across every replica dilutes the per-host caches");
    println!("as the fleet grows. Pinning users to a host (session affinity)");
    println!("restores the cache and keeps the small manager set off the critical");
    println!("path — the regime §2.1's \"massively replicated\" services need:\n");
    println!(" hosts  users  invokes  hit ratio  mgr queries/invoke  msgs/invoke");
    println!("---------------------------------------------------------------------");
    for (h, u) in [(8usize, 100usize), (8, 200), (16, 400)] {
        let p = measure_scale_affinity(h, u, te, horizon, 1);
        println!(
            " {:5}  {:5}  {:7}  {:9.3}  {:18.3}  {:11.3}",
            p.hosts, p.users, p.invokes, p.cache_hit_ratio, p.queries_per_invoke, p.messages_per_invoke
        );
    }
    println!();

    println!("== User-popularity skew (100 users, fixed aggregate rate, Te=60s) ==\n");
    println!(" zipf s  invokes  cache hit ratio");
    println!("----------------------------------");
    for s in [0.0, 0.6, 0.9, 1.2] {
        let p = measure_skew(100, s, SimDuration::from_secs(60), SimDuration::from_secs(1_200), 2);
        println!(" {:6.1}  {:7}  {:15.3}", p.exponent, p.invokes, p.cache_hit_ratio);
    }
    println!("\nSkewed (realistic) populations concentrate requests on few users,");
    println!("whose leases stay warm: caching gets *more* effective at scale.");
    println!();

    empirical_section();
}
