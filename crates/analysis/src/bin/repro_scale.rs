//! E10: host/user scaling and popularity skew — the "massively
//! replicated" deployments the paper targets.

use wanacl_analysis::scale::{measure_scale, measure_scale_affinity, measure_skew};
use wanacl_sim::time::SimDuration;

fn main() {
    let te = SimDuration::from_secs(600);
    let horizon = SimDuration::from_secs(1_200);
    println!("== Scaling hosts and users (M=5, C=2, Te=600s, 20 min simulated) ==\n");
    println!(" hosts  users  invokes  hit ratio  mgr queries/invoke  msgs/invoke");
    println!("---------------------------------------------------------------------");
    for (h, u) in [(2usize, 20usize), (4, 50), (8, 100), (8, 200), (16, 400)] {
        let p = measure_scale(h, u, te, horizon, 1);
        println!(
            " {:5}  {:5}  {:7}  {:9.3}  {:18.3}  {:11.3}",
            p.hosts, p.users, p.invokes, p.cache_hit_ratio, p.queries_per_invoke, p.messages_per_invoke
        );
    }
    println!("\nScattering each user across every replica dilutes the per-host caches");
    println!("as the fleet grows. Pinning users to a host (session affinity)");
    println!("restores the cache and keeps the small manager set off the critical");
    println!("path — the regime §2.1's \"massively replicated\" services need:\n");
    println!(" hosts  users  invokes  hit ratio  mgr queries/invoke  msgs/invoke");
    println!("---------------------------------------------------------------------");
    for (h, u) in [(8usize, 100usize), (8, 200), (16, 400)] {
        let p = measure_scale_affinity(h, u, te, horizon, 1);
        println!(
            " {:5}  {:5}  {:7}  {:9.3}  {:18.3}  {:11.3}",
            p.hosts, p.users, p.invokes, p.cache_hit_ratio, p.queries_per_invoke, p.messages_per_invoke
        );
    }
    println!();

    println!("== User-popularity skew (100 users, fixed aggregate rate, Te=60s) ==\n");
    println!(" zipf s  invokes  cache hit ratio");
    println!("----------------------------------");
    for s in [0.0, 0.6, 0.9, 1.2] {
        let p = measure_skew(100, s, SimDuration::from_secs(60), SimDuration::from_secs(1_200), 2);
        println!(" {:6.1}  {:7}  {:15.3}", p.exponent, p.invokes, p.cache_hit_ratio);
    }
    println!("\nSkewed (realistic) populations concentrate requests on few users,");
    println!("whose leases stay warm: caching gets *more* effective at scale.");
}
