//! Regenerates the paper's Figure 5. Usage: `repro_fig5 [protocol_trials]`.

fn main() {
    let proto: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(200);
    print!("{}", wanacl_analysis::report::fig5_report(proto));
}
