//! The §4.1 heterogeneous extension: per-pair inaccessibility
//! probabilities, exact per-host/per-manager quorum probabilities via the
//! Poisson-binomial distribution, and frequency-weighted system averages.
//!
//! "If the pairwise inaccessibility probabilities … can be estimated, it
//! is possible to calculate for each host the probability of reaching the
//! check quorum and for each manager the probability of reaching the
//! update quorum. The system availability and security can be estimated
//! by averaging these probabilities … the average can be weighted using
//! these frequencies."

use crate::binomial::poisson_binomial_tail;

/// A heterogeneous deployment model: `hosts × managers` and
/// `managers × managers` inaccessibility matrices.
#[derive(Debug, Clone)]
pub struct HeteroModel {
    /// `host_pi[h][m]` = P[host `h` cannot reach manager `m`].
    pub host_pi: Vec<Vec<f64>>,
    /// `mgr_pi[i][j]` = P[manager `i` cannot reach manager `j`]
    /// (diagonal ignored).
    pub mgr_pi: Vec<Vec<f64>>,
    /// Check quorum `C`.
    pub c: usize,
}

impl HeteroModel {
    /// Creates the model, validating shapes.
    ///
    /// # Panics
    ///
    /// Panics if matrices are ragged, probabilities are out of range, or
    /// `c` is outside `1..=M`.
    pub fn new(host_pi: Vec<Vec<f64>>, mgr_pi: Vec<Vec<f64>>, c: usize) -> Self {
        let m = mgr_pi.len();
        assert!(m >= 1, "need at least one manager");
        assert!((1..=m).contains(&c), "check quorum must be in 1..=M");
        for row in &host_pi {
            assert_eq!(row.len(), m, "host matrix must have M columns");
            for &p in row {
                assert!((0.0..=1.0).contains(&p), "Pi out of range");
            }
        }
        for row in &mgr_pi {
            assert_eq!(row.len(), m, "manager matrix must be square");
            for &p in row {
                assert!((0.0..=1.0).contains(&p), "Pi out of range");
            }
        }
        HeteroModel { host_pi, mgr_pi, c }
    }

    /// A homogeneous model (every pair has the same `pi`) for
    /// cross-checking against the binomial formulas.
    pub fn homogeneous(hosts: usize, managers: usize, pi: f64, c: usize) -> Self {
        HeteroModel::new(
            vec![vec![pi; managers]; hosts],
            vec![vec![pi; managers]; managers],
            c,
        )
    }

    /// Number of managers.
    pub fn managers(&self) -> usize {
        self.mgr_pi.len()
    }

    /// Exact `PA` for one host: probability that at least `C` of its
    /// manager links are up (Poisson binomial over the host's row).
    pub fn host_availability(&self, host: usize) -> f64 {
        let up: Vec<f64> = self.host_pi[host].iter().map(|pi| 1.0 - pi).collect();
        poisson_binomial_tail(&up, self.c)
    }

    /// Exact `PS` for one manager: probability that it reaches at least
    /// `M − C` of its `M − 1` peers.
    pub fn manager_security(&self, mgr: usize) -> f64 {
        let m = self.managers();
        let up: Vec<f64> = (0..m)
            .filter(|&j| j != mgr)
            .map(|j| 1.0 - self.mgr_pi[mgr][j])
            .collect();
        poisson_binomial_tail(&up, m - self.c)
    }

    /// System availability as a weighted average over hosts.
    ///
    /// # Panics
    ///
    /// Panics if `weights` does not match the host count or sums to zero.
    pub fn system_availability(&self, weights: &[f64]) -> f64 {
        weighted_average(
            (0..self.host_pi.len()).map(|h| self.host_availability(h)),
            weights,
        )
    }

    /// System security as a weighted average over managers, weighted by
    /// how often each manager issues operations.
    ///
    /// # Panics
    ///
    /// Panics if `weights` does not match the manager count or sums to
    /// zero.
    pub fn system_security(&self, weights: &[f64]) -> f64 {
        weighted_average((0..self.managers()).map(|m| self.manager_security(m)), weights)
    }
}

fn weighted_average(values: impl Iterator<Item = f64>, weights: &[f64]) -> f64 {
    let values: Vec<f64> = values.collect();
    assert_eq!(values.len(), weights.len(), "one weight per entity");
    let total: f64 = weights.iter().sum();
    assert!(total > 0.0, "weights must not sum to zero");
    values.iter().zip(weights).map(|(v, w)| v * w).sum::<f64>() / total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{pa, ps};

    #[test]
    fn homogeneous_matches_binomial_model() {
        let model = HeteroModel::homogeneous(3, 10, 0.1, 5);
        for h in 0..3 {
            assert!((model.host_availability(h) - pa(10, 5, 0.1)).abs() < 1e-10);
        }
        for m in 0..10 {
            assert!((model.manager_security(m) - ps(10, 5, 0.1)).abs() < 1e-10);
        }
    }

    #[test]
    fn well_connected_host_beats_poorly_connected_one() {
        let host_pi = vec![vec![0.01; 10], vec![0.4; 10]];
        let model = HeteroModel::new(host_pi, vec![vec![0.1; 10]; 10], 5);
        assert!(model.host_availability(0) > model.host_availability(1));
    }

    #[test]
    fn isolated_manager_drags_down_weighted_security() {
        // Manager 0 is nearly cut off from everyone.
        let m = 6;
        let mut mgr_pi = vec![vec![0.05; m]; m];
        mgr_pi[0][1..].fill(0.9);
        for row in mgr_pi.iter_mut().skip(1) {
            row[0] = 0.9;
        }
        let model = HeteroModel::new(vec![vec![0.05; m]; 1], mgr_pi, 3);
        let uniform = vec![1.0; m];
        // The paper: "if there is one manager that is frequently
        // inaccessible from the others, the overall security of the
        // system can be seriously reduced if this manager frequently
        // issues and revokes access rights."
        let mut hot_isolated = vec![1.0; m];
        hot_isolated[0] = 100.0;
        let s_uniform = model.system_security(&uniform);
        let s_hot = model.system_security(&hot_isolated);
        assert!(s_hot < s_uniform, "{s_hot} !< {s_uniform}");
        assert!(model.manager_security(0) < model.manager_security(1));
    }

    #[test]
    fn weighted_availability_follows_traffic() {
        let host_pi = vec![vec![0.0; 4], vec![0.5; 4]];
        let model = HeteroModel::new(host_pi, vec![vec![0.1; 4]; 4], 2);
        let toward_good = model.system_availability(&[10.0, 1.0]);
        let toward_bad = model.system_availability(&[1.0, 10.0]);
        assert!(toward_good > toward_bad);
    }

    #[test]
    #[should_panic(expected = "one weight per entity")]
    fn weight_shape_is_validated() {
        let model = HeteroModel::homogeneous(2, 4, 0.1, 2);
        model.system_availability(&[1.0]);
    }

    #[test]
    #[should_panic(expected = "square")]
    fn manager_matrix_must_be_square() {
        HeteroModel::new(vec![], vec![vec![0.1; 3], vec![0.1; 3]], 1);
    }
}
