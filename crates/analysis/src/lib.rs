//! # wanacl-analysis — the paper's evaluation, reproduced
//!
//! Implements the §4.1 availability/security model of *Access Control in
//! Wide-Area Networks* (Hiltunen & Schlichting, ICDCS '97) and the
//! harness that regenerates **every table and figure** of the paper at
//! three levels of fidelity:
//!
//! 1. **Closed form** ([`model`], [`binomial`]) — the exact binomial
//!    formulas; match the paper's printed digits (tested to 5e-6).
//! 2. **Monte Carlo** ([`montecarlo`]) — samples the same i.i.d.
//!    inaccessibility model as a cross-check of the formulas.
//! 3. **Protocol level** ([`experiments`]) — runs the *real* protocol
//!    (`wanacl-core`) over a partitioned simulated WAN and measures
//!    availability and security empirically.
//!
//! Also here: the heterogeneous §4.1 extension ([`hetero`]), the
//! `O(C/Te)` overhead model ([`overhead`]), and renderers for the
//! tables ([`tables`]) and Figure 5 ([`figures`]).
//!
//! Regenerator binaries (see the DESIGN.md experiment index): 
//! `repro_table1`, `repro_table2`, `repro_fig5`, `repro_overhead`,
//! `repro_freeze`, `repro_hetero`, `repro_baselines`, `repro_all`.
//!
//! ## Example
//!
//! ```
//! use wanacl_analysis::model::{pa, ps};
//!
//! // The paper's headline observation: around C = M/2 both are ~1.
//! assert!(pa(10, 5, 0.1) > 0.999);
//! assert!(ps(10, 5, 0.1) > 0.999);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod binomial;
pub mod empirical;
pub mod experiments;
pub mod figures;
pub mod hetero;
pub mod model;
pub mod montecarlo;
pub mod overhead;
pub mod tables;
pub mod report;
pub mod retry;
pub mod scale;
