//! Figure 5: availability and security curves as functions of the check
//! quorum `C`, with an ASCII renderer for terminal output.

use crate::model::{pa, ps};

/// The two series of Figure 5 sampled at every `C`.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig5Series {
    /// Number of managers `M`.
    pub m: u64,
    /// Pairwise inaccessibility `Pi`.
    pub pi: f64,
    /// `PA(C)` for `C = 1..=M`.
    pub availability: Vec<f64>,
    /// `PS(C)` for `C = 1..=M`.
    pub security: Vec<f64>,
}

/// Computes the Figure 5 curves.
///
/// # Examples
///
/// ```
/// use wanacl_analysis::figures::fig5;
///
/// let s = fig5(10, 0.1);
/// assert_eq!(s.availability.len(), 10);
/// // PA falls with C, PS rises.
/// assert!(s.availability[0] > s.availability[9]);
/// assert!(s.security[0] < s.security[9]);
/// ```
pub fn fig5(m: u64, pi: f64) -> Fig5Series {
    Fig5Series {
        m,
        pi,
        availability: (1..=m).map(|c| pa(m, c, pi)).collect(),
        security: (1..=m).map(|c| ps(m, c, pi)).collect(),
    }
}

impl Fig5Series {
    /// The widest contiguous range of `C` where both probabilities stay
    /// at or above `threshold` — the paper's "relatively large range of
    /// values of C around M/2 where both availability and security are
    /// very close to 1".
    pub fn sweet_range(&self, threshold: f64) -> Option<(u64, u64)> {
        let mut best: Option<(u64, u64)> = None;
        let mut start: Option<u64> = None;
        for c in 1..=self.m {
            let i = (c - 1) as usize;
            let good = self.availability[i] >= threshold && self.security[i] >= threshold;
            match (good, start) {
                (true, None) => start = Some(c),
                (false, Some(s)) => {
                    track_best(&mut best, s, c - 1);
                    start = None;
                }
                _ => {}
            }
        }
        if let Some(s) = start {
            track_best(&mut best, s, self.m);
        }
        best
    }
}

fn track_best(best: &mut Option<(u64, u64)>, lo: u64, hi: u64) {
    let width = hi - lo;
    match best {
        Some((blo, bhi)) if *bhi - *blo >= width => {}
        _ => *best = Some((lo, hi)),
    }
}

/// Renders the two curves as an ASCII chart (rows = probability bins,
/// columns = `C`), mirroring the shape of the paper's Figure 5.
///
/// `A` marks availability, `S` security, `*` both.
pub fn render_fig5(series: &Fig5Series, height: usize) -> String {
    assert!(height >= 2, "chart needs at least two rows");
    let m = series.m as usize;
    let mut grid = vec![vec![' '; m]; height];
    for (c, (&a, &s)) in series.availability.iter().zip(series.security.iter()).enumerate().take(m) {
        let a_row = level_to_row(a, height);
        let s_row = level_to_row(s, height);
        if a_row == s_row {
            grid[a_row][c] = '*';
        } else {
            grid[a_row][c] = 'A';
            grid[s_row][c] = 'S';
        }
    }
    let mut out = String::new();
    out.push_str(&format!("Figure 5: PA (A) and PS (S) vs C   [M={} Pi={}]\n", series.m, series.pi));
    for (i, row) in grid.iter().enumerate() {
        let level = 1.0 - i as f64 / (height - 1) as f64;
        out.push_str(&format!("{level:4.2} |"));
        for &ch in row {
            out.push(' ');
            out.push(ch);
        }
        out.push('\n');
    }
    out.push_str("      ");
    for c in 1..=m {
        out.push_str(&format!("{c:2}"));
    }
    out.push_str("   <- C\n");
    out
}

fn level_to_row(p: f64, height: usize) -> usize {
    let clamped = p.clamp(0.0, 1.0);
    ((1.0 - clamped) * (height - 1) as f64).round() as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curves_are_monotone() {
        let s = fig5(10, 0.2);
        for w in s.availability.windows(2) {
            assert!(w[1] <= w[0] + 1e-12);
        }
        for w in s.security.windows(2) {
            assert!(w[1] >= w[0] - 1e-12);
        }
    }

    #[test]
    fn sweet_range_exists_around_middle() {
        // The paper's observation: a large range of C where both are
        // close to 1 even at Pi = 0.2.
        let s = fig5(10, 0.1);
        let (lo, hi) = s.sweet_range(0.99).expect("range must exist at Pi=0.1");
        assert!(lo <= 5 && hi >= 5, "range {lo}..{hi} should straddle M/2");
        assert!(hi - lo >= 2, "paper claims a relatively large range");
    }

    #[test]
    fn sweet_range_absent_when_threshold_impossible() {
        let s = fig5(10, 0.5);
        assert_eq!(s.sweet_range(0.999999), None);
    }

    #[test]
    fn render_contains_both_series_markers() {
        let s = fig5(10, 0.2);
        let chart = render_fig5(&s, 12);
        assert!(chart.contains('A'));
        assert!(chart.contains('S'));
        assert!(chart.contains("<- C"));
        // 1 title + 12 rows + 1 axis.
        assert_eq!(chart.lines().count(), 14);
    }

    #[test]
    fn crossing_point_renders_star() {
        // At some C the curves cross; with coarse rows they collide.
        let s = fig5(10, 0.2);
        let chart = render_fig5(&s, 6);
        assert!(chart.contains('*'), "curves should collide somewhere:\n{chart}");
    }

    #[test]
    fn level_mapping_endpoints() {
        assert_eq!(level_to_row(1.0, 10), 0);
        assert_eq!(level_to_row(0.0, 10), 9);
    }
}
