//! Configuration-matrix liveness: the basic grant → invoke → revoke →
//! deny cycle must work across the whole policy surface — every quorum
//! size, every fan-out, with and without authentication, with and
//! without proactive refresh and a name service.

use wanacl::prelude::*;

fn cycle(mut d: Deployment) {
    d.run_for(SimDuration::from_secs(1));
    // Initially unauthorized.
    d.invoke_from(0);
    d.run_for(SimDuration::from_secs(4));
    assert_eq!(d.user_agent(0).stats().denied, 1, "pre-grant must deny");

    d.grant(UserId(1), Right::Use);
    d.run_for(SimDuration::from_secs(4));
    d.invoke_from(0);
    d.run_for(SimDuration::from_secs(4));
    assert_eq!(d.user_agent(0).stats().allowed, 1, "post-grant must allow");

    d.revoke(UserId(1), Right::Use);
    d.run_for(SimDuration::from_secs(4));
    d.invoke_from(0);
    d.run_for(SimDuration::from_secs(4));
    let s = d.user_agent(0).stats();
    assert_eq!(s.denied, 2, "post-revoke must deny: {s:?}");
    assert_eq!(s.unavailable, 0, "healthy network must never be unavailable: {s:?}");
}

fn policy(m: usize, c: usize, fanout: QueryFanout, refresh: bool) -> Policy {
    let mut b = Policy::builder(c)
        .revocation_bound(SimDuration::from_secs(20))
        .query_timeout(SimDuration::from_millis(400))
        .max_attempts(m as u32 + 1) // sequential rotation may need M tries
        .fanout(fanout);
    if refresh {
        b = b.refresh_margin(SimDuration::from_secs(2));
    }
    b.build()
}

#[test]
fn all_quorum_sizes_and_fanouts() {
    let mut seed = 100;
    for m in [1usize, 2, 3, 5] {
        for c in 1..=m {
            for fanout in [QueryFanout::All, QueryFanout::Subset, QueryFanout::Sequential] {
                if fanout == QueryFanout::Sequential && c != 1 {
                    continue;
                }
                seed += 1;
                let d = Scenario::builder(seed)
                    .managers(m)
                    .hosts(2)
                    .users(1)
                    .policy(policy(m, c, fanout, false))
                    .build();
                cycle(d);
            }
        }
    }
}

#[test]
fn authenticated_and_refreshing_variants() {
    for (auth, refresh, ns) in [
        (true, false, false),
        (false, true, false),
        (true, true, false),
        (false, false, true),
        (true, true, true),
    ] {
        let mut s = Scenario::builder(777 + auth as u64 + 2 * refresh as u64 + 4 * ns as u64)
            .managers(3)
            .hosts(2)
            .users(1)
            .policy(policy(3, 2, QueryFanout::All, refresh));
        if auth {
            s = s.authenticate();
        }
        if ns {
            s = s.with_name_service(SimDuration::from_secs(120));
        }
        cycle(s.build());
    }
}
