//! Sharded multi-tenant properties: shard routing, online rebalance
//! safety (I9), tenant isolation (I8), and the traffic-independence
//! guarantee — an unrelated tenant's ACL growing 10x must not change
//! per-check quorum traffic.

use wanacl::core::types::user_bucket;
use wanacl::prelude::*;
use wanacl::sim::time::{SimDuration, SimTime};
use wanacl::sim::trace::TraceEvent;

/// A 2-tenant, 2-shards-per-tenant world: 8 managers, 3 replicas.
fn sharded_world(seed: u64) -> Deployment {
    Scenario::builder(seed)
        .tenants(2)
        .shards_per_tenant(2)
        .users(4)
        .hosts(2)
        .all_users_granted()
        .with_replicated_directory(3, 2, SimDuration::from_secs(5))
        .policy(
            Policy::builder(2)
                .revocation_bound(SimDuration::from_secs(2))
                .query_timeout(SimDuration::from_millis(500))
                .max_attempts(3)
                .build(),
        )
        .workload(SimDuration::from_millis(400))
        .build()
}

#[test]
fn sharded_world_serves_all_tenants() {
    let mut d = sharded_world(7);
    assert_eq!(d.managers.len(), 8);
    d.run_for(SimDuration::from_secs(30));
    let stats = d.aggregate_user_stats();
    assert!(stats.allowed > 0, "sharded checks must succeed: {stats:?}");
    assert_eq!(stats.denied, 0, "granted users must never be denied: {stats:?}");
    // Every user agent individually made progress (both tenants served).
    for i in 0..4 {
        assert!(d.user_agent(i).stats().allowed > 0, "user {i} starved");
    }
}

#[test]
fn rebalance_moves_shard_without_losing_rights() {
    let mut d = sharded_world(11);
    // Move shard 0 (tenant 0, buckets 0..=127, managers {0,1}) onto the
    // managers of shard 1 ({2,3}) — ring-next, disjoint from the owners.
    let targets = d.shard_owners(ShardId(1));
    d.rebalance_shard_at(SimTime::ZERO + SimDuration::from_secs(10), ShardId(0), targets);
    d.run_for(SimDuration::from_secs(40));

    // Sources released, targets active.
    assert!(d.manager(0).shard_released(ShardId(0)), "source 0 must release");
    assert!(d.manager(1).shard_released(ShardId(0)), "source 1 must release");
    assert!(d.manager(2).shard_active(ShardId(0)), "target 2 must activate");
    assert!(d.manager(3).shard_active(ShardId(0)), "target 3 must activate");

    // Checks keep succeeding for every user after the move.
    let before = d.aggregate_user_stats();
    d.run_for(SimDuration::from_secs(10));
    let after = d.aggregate_user_stats();
    assert!(after.allowed > before.allowed, "checks must keep flowing post-rebalance");
    assert_eq!(after.denied, 0, "no user loses a granted right across the move: {after:?}");

    // Hosts installed the bumped map: shard 0's entry now points at the
    // new owners.
    let map = d.host(0).shard_map(AppId(0)).expect("host holds tenant 0's shard map");
    let entry = map.iter().find(|e| e.shard == ShardId(0)).expect("shard 0 mapped");
    assert_eq!(entry.managers, vec![d.managers[2], d.managers[3]]);
}

#[test]
fn rebalance_preserves_revocations_issued_before_the_move() {
    let mut d = sharded_world(13);
    // Find a user of tenant 0 living in shard 0 (bucket <= 127).
    let victim = d
        .users
        .iter()
        .map(|&(u, _)| u)
        .find(|u| (u.0 - 1) % 2 == 0 && user_bucket(*u) <= 127)
        .expect("some tenant-0 user hashes into shard 0");
    d.run_for(SimDuration::from_secs(5));
    d.admin_op(AclOp::Revoke { app: AppId(0), user: victim, right: Right::Use });
    // Rebalance AFTER the revoke: the tombstone must survive the handoff.
    let targets = d.shard_owners(ShardId(1));
    d.rebalance_shard_at(SimTime::ZERO + SimDuration::from_secs(10), ShardId(0), targets);
    d.run_for(SimDuration::from_secs(30));
    // The new owners must hold the revocation (I9: no revoke lost).
    for m in [2usize, 3] {
        assert!(
            !d.manager(m).acl_has(AppId(0), victim, Right::Use),
            "manager {m} resurrected a revoked right across the handoff"
        );
    }
}

/// Campaign shape shared by the sweep tests below: 2 tenants x 2
/// shards, 8 managers, replicated directory.
fn sweep_config(seed: u64) -> CampaignConfig {
    CampaignConfig {
        seed,
        tenants: 2,
        shards_per_tenant: 2,
        users: 4,
        ns_replicas: 3,
        horizon: SimDuration::from_secs(6),
        ..CampaignConfig::default()
    }
}

/// 100-seed sweep: every plan rebalances one shard and kills one of its
/// source managers mid-handoff. I9 (no grant/revoke lost or
/// double-applied across the move) must hold on every seed, the
/// sequential and parallel executors must agree bit-for-bit, and any
/// failure shrinks to a replayable counterexample before panicking.
#[test]
fn source_kill_mid_handoff_sweep_holds_i9_on_both_executors() {
    let work: Vec<(CampaignConfig, NemesisPlan)> = (0..100u64)
        .map(|seed| {
            let config = sweep_config(seed);
            let shard = (seed % 4) as u32;
            // Alternate which of the shard's two source managers dies.
            let victim = NodeId::from_index(2 * shard as usize + (seed as usize / 4) % 2);
            let kickoff = SimTime::ZERO + SimDuration::from_millis(2_400);
            let plan = NemesisPlan::builder(SimTime::ZERO + SimDuration::from_secs(6))
                .shard_rebalance(shard, kickoff)
                .crash(
                    victim,
                    kickoff + SimDuration::from_millis(40),
                    SimDuration::from_millis(1_500),
                )
                .build();
            (config, plan)
        })
        .collect();

    let sequential = run_plans_parallel(&work, 1);
    let parallel = run_plans_parallel(&work, 4);
    assert_eq!(sequential.len(), 100);

    let mut installs_total = 0;
    for (i, (seq, par)) in sequential.iter().zip(&parallel).enumerate() {
        assert_eq!(seq.violations, par.violations, "seed {i}: executors disagree on violations");
        assert_eq!(seq.audit_digest, par.audit_digest, "seed {i}: audit digests diverge");
        assert_eq!(seq.oracle_stats, par.oracle_stats, "seed {i}: oracle stats diverge");
        assert_eq!(seq.metrics, par.metrics, "seed {i}: metrics diverge");
        installs_total += seq.oracle_stats.shard_installs;
        if !seq.is_clean() {
            // Deliver a replayable counterexample, not just a red X.
            let (config, plan) = &work[i];
            let (small, small_report) = shrink_plan(config, plan);
            panic!(
                "seed {} broke invariants under a source kill mid-handoff; \
                 shrunk to {} fault(s), replay with run_with_plan(seed={}): {:#?}",
                config.seed,
                small.len(),
                config.seed,
                small_report.violations,
            );
        }
    }
    // The kill schedule must not have starved the scenario: handoffs
    // still complete somewhere in the sweep.
    assert!(installs_total > 0, "no shard install completed across 100 seeds");
    // Rollups are --jobs invariant too.
    assert_eq!(rollup_metrics(&sequential), rollup_metrics(&parallel));
}

/// The planted lost-handoff bug (target drops the tail op of a shard
/// transfer) must be caught, shrink to a smaller still-failing plan,
/// and replay bit-identically on both executors.
#[test]
fn planted_lost_handoff_shrinks_to_a_replayable_counterexample() {
    let mut caught = None;
    for seed in 0..20u64 {
        let config = CampaignConfig {
            inject_bug: Some(InjectedBug::LostHandoff { manager_index: 0 }),
            ..sweep_config(seed)
        };
        let report = run_campaign(&config);
        if !report.is_clean() {
            caught = Some((config, report));
            break;
        }
    }
    let (config, report) = caught.expect("no seed in 0..20 tripped the planted bug");
    assert!(
        report.violations.iter().any(|v| v.kind == InvariantKind::RebalanceSafety),
        "the planted bug must surface as an I9 rebalance-safety violation: {:?}",
        report.violations,
    );

    let (small, small_report) = shrink_plan(&config, &report.plan);
    assert!(small.len() <= report.plan.len(), "shrinking must never grow the plan");
    assert!(!small_report.is_clean(), "the shrunk plan must still reproduce the violation");

    // Replay the shrunk counterexample on both executors.
    let replay_seq = run_with_plan(&config, &small);
    let replay_par = run_plans_parallel(&[(config.clone(), small.clone())], 2);
    assert_eq!(replay_seq.violations, small_report.violations, "sequential replay diverged");
    assert_eq!(replay_par[0].violations, small_report.violations, "parallel replay diverged");
    assert_eq!(replay_seq.audit_digest, replay_par[0].audit_digest);
    assert!(replay_seq.violations.iter().any(|v| v.kind == InvariantKind::RebalanceSafety));
}

/// Growing an unrelated tenant's ACL 10x must not change per-check
/// quorum traffic at all: same message counts, same Query/QueryReply
/// payload bytes. This is the sharding payoff — quorum traffic per
/// operation is independent of total ACL size.
#[test]
fn unrelated_tenant_acl_growth_keeps_check_traffic_flat() {
    let build = |pad: usize| -> Deployment {
        // Workload users 1..=4 (tenants alternate); the pad users are
        // extra tenant-1 grants with no agents behind them.
        let mut rights: Vec<(UserId, Right)> = (1..=4u64).map(|u| (UserId(u), Right::Use)).collect();
        for i in 0..pad as u64 {
            rights.push((UserId(6 + 2 * i), Right::Use));
        }
        Scenario::builder(5)
            .tenants(2)
            .shards_per_tenant(2)
            .users(4)
            .hosts(2)
            .initial_rights(rights)
            .with_replicated_directory(3, 2, SimDuration::from_secs(5))
            .policy(
                Policy::builder(2)
                    .revocation_bound(SimDuration::from_secs(2))
                    .query_timeout(SimDuration::from_millis(500))
                    .max_attempts(3)
                    .build(),
            )
            .workload(SimDuration::from_millis(400))
            .build()
    };

    let mut small = build(4);
    let mut big = build(40); // the unrelated tenant's ACL grows 10x
    // Sanity: the padding really landed on tenant 1's managers only.
    assert!(big.manager(0).acl_has(AppId(1), UserId(6 + 2 * 39), Right::Use));
    assert!(!big.manager(0).acl_has(AppId(0), UserId(6 + 2 * 39), Right::Use));

    small.world.enable_trace();
    big.world.enable_trace();
    small.run_for(SimDuration::from_secs(20));
    big.run_for(SimDuration::from_secs(20));

    // Identical workload, identical traffic: message COUNTS are flat.
    for key in ["host.invokes", "host.queries_sent", "host.allowed", "net.sent", "net.delivered"] {
        assert_eq!(
            small.world.metrics().counter(key),
            big.world.metrics().counter(key),
            "{key} must not grow with an unrelated tenant's ACL",
        );
    }

    // And the check-path PAYLOAD BYTES are flat too: Query/QueryReply
    // carry no ACL state, so their rendered size cannot depend on how
    // big any tenant's ACL is.
    let check_traffic = |d: &Deployment| -> (u64, u64, u64, u64) {
        let (mut queries, mut query_bytes, mut replies, mut reply_bytes) = (0u64, 0u64, 0u64, 0u64);
        for entry in d.world.trace().entries() {
            if let TraceEvent::Sent { desc, .. } = &entry.event {
                if desc.starts_with("Query {") {
                    queries += 1;
                    query_bytes += desc.len() as u64;
                } else if desc.starts_with("QueryReply {") {
                    replies += 1;
                    reply_bytes += desc.len() as u64;
                }
            }
        }
        (queries, query_bytes, replies, reply_bytes)
    };
    let small_traffic = check_traffic(&small);
    let big_traffic = check_traffic(&big);
    assert!(small_traffic.0 > 0, "the workload must actually issue quorum checks");
    assert_eq!(
        small_traffic, big_traffic,
        "per-check quorum message count and payload bytes must be independent of the \
         unrelated tenant's ACL size",
    );
}
