//! Cross-crate end-to-end scenarios: big deployments, crash plans,
//! congestion, authentication, and accounting consistency.

use wanacl::prelude::*;
use wanacl::sim::net::partition::GilbertElliott;
use wanacl::sim::net::WanNet;

fn congested_net() -> WanNet {
    WanNet::builder()
        .exponential_delay(SimDuration::from_millis(15), SimDuration::from_millis(25))
        .loss(0.02)
        .partitions(Box::new(GilbertElliott::new(
            SimDuration::from_secs(120),
            SimDuration::from_secs(8),
        )))
        .build()
}

/// A substantial deployment survives an hour of simulated chaos with
/// consistent accounting.
#[test]
fn large_deployment_accounting_is_consistent() {
    let policy = Policy::builder(3)
        .revocation_bound(SimDuration::from_secs(60))
        .clock_rate_bound(0.95)
        .query_timeout(SimDuration::from_millis(400))
        .max_attempts(3)
        .build();
    let mut d = Scenario::builder(2024)
        .managers(5)
        .hosts(4)
        .users(20)
        .policy(policy)
        .all_users_granted()
        .workload(SimDuration::from_secs(3))
        .host_clock(ClockSpec::RandomRate { min_rate: 0.95 })
        .manager_clock(ClockSpec::RandomRate { min_rate: 0.95 })
        .net(Box::new(congested_net()))
        .request_timeout(SimDuration::from_secs(8))
        .build();

    // Crash/recover two hosts and one manager during the run.
    let host0 = d.hosts[0];
    let mgr4 = d.managers[4];
    d.world.schedule_crash(SimTime::from_secs(600), host0);
    d.world.schedule_recover(SimTime::from_secs(700), host0);
    d.world.schedule_crash(SimTime::from_secs(1_200), mgr4);
    d.world.schedule_recover(SimTime::from_secs(1_500), mgr4);

    d.run_until(SimTime::from_secs(3_600));

    let stats = d.aggregate_user_stats();
    assert!(stats.sent > 10_000, "workload must have run: {stats:?}");
    // Every request resolves exactly once.
    let outstanding: u64 = (0..20).map(|i| d.user_agent(i).outstanding() as u64).sum();
    assert_eq!(
        stats.replied() + stats.timeouts + outstanding,
        stats.sent,
        "request accounting must balance: {stats:?}"
    );
    // Entitled users under congestion: high but not necessarily perfect
    // availability.
    // Two host crashes, 2% loss, and congestion bursts all cost
    // requests; entitled users should still land well above 85%.
    let availability = stats.allowed as f64 / stats.sent as f64;
    assert!(availability > 0.85, "availability {availability}");
    // Host decisions match user outcomes (no lost replies beyond drops).
    let host_allowed: u64 = (0..4).map(|i| d.host(i).stats().allowed).sum();
    assert!(host_allowed >= stats.allowed);
    // The recovered manager is serving again.
    assert!(!d.manager(4).is_recovering());
}

/// Authenticated end-to-end flow with manager-right enforcement and a
/// quorum-spanning grant/revoke cycle for every user.
#[test]
fn authenticated_grant_revoke_cycle() {
    let policy = Policy::builder(2)
        .revocation_bound(SimDuration::from_secs(30))
        .query_timeout(SimDuration::from_millis(300))
        .max_attempts(2)
        .build();
    let mut d = Scenario::builder(7)
        .managers(3)
        .hosts(2)
        .users(4)
        .policy(policy)
        .authenticate()
        .build();
    d.run_for(SimDuration::from_secs(1));

    // Nobody is granted yet.
    for i in 0..4 {
        d.invoke_from(i);
    }
    d.run_for(SimDuration::from_secs(3));
    assert_eq!(d.aggregate_user_stats().denied, 4);

    // Grant all, verify, revoke half, verify.
    for i in 1..=4u64 {
        d.grant(UserId(i), Right::Use);
    }
    d.run_for(SimDuration::from_secs(3));
    for i in 0..4 {
        d.invoke_from(i);
    }
    d.run_for(SimDuration::from_secs(3));
    assert_eq!(d.aggregate_user_stats().allowed, 4);

    d.revoke(UserId(1), Right::Use);
    d.revoke(UserId(2), Right::Use);
    d.run_for(SimDuration::from_secs(3));
    for i in 0..4 {
        d.invoke_from(i);
    }
    d.run_for(SimDuration::from_secs(3));
    let s = d.aggregate_user_stats();
    assert_eq!(s.allowed, 6, "{s:?}");
    assert_eq!(s.denied, 6, "{s:?}");
}

/// The same seed reproduces the same run even with crashes, drift, and
/// congestion (determinism at system scale).
#[test]
fn chaos_runs_are_deterministic() {
    let run = || {
        let policy = Policy::builder(2)
            .revocation_bound(SimDuration::from_secs(45))
            .clock_rate_bound(0.9)
            .query_timeout(SimDuration::from_millis(350))
            .max_attempts(2)
            .build();
        let mut d = Scenario::builder(555)
            .managers(4)
            .hosts(3)
            .users(8)
            .policy(policy)
            .all_users_granted()
            .workload(SimDuration::from_secs(4))
            .host_clock(ClockSpec::RandomRate { min_rate: 0.9 })
            .net(Box::new(congested_net()))
            .build();
        let h = d.hosts[1];
        d.world.schedule_crash(SimTime::from_secs(100), h);
        d.world.schedule_recover(SimTime::from_secs(160), h);
        d.run_until(SimTime::from_secs(900));
        let s = d.aggregate_user_stats();
        (
            s.sent,
            s.allowed,
            s.timeouts,
            d.world.metrics().counter("net.sent"),
            d.world.metrics().counter("net.drop.partitioned"),
        )
    };
    assert_eq!(run(), run());
}

/// The freeze strategy and the name service work together end to end.
#[test]
fn freeze_with_name_service() {
    let policy = Policy::builder(1)
        .revocation_bound(SimDuration::from_secs(40))
        .clock_rate_bound(0.5)
        .query_timeout(SimDuration::from_millis(300))
        .max_attempts(2)
        .freeze(FreezePolicy {
            ti: SimDuration::from_secs(8),
            heartbeat_interval: SimDuration::from_secs(1),
        })
        .build();
    let mut d = Scenario::builder(31)
        .managers(2)
        .hosts(1)
        .users(1)
        .policy(policy)
        .all_users_granted()
        .with_name_service(SimDuration::from_secs(120))
        .build();
    d.run_for(SimDuration::from_secs(2));
    d.invoke_from(0);
    d.run_for(SimDuration::from_secs(2));
    assert_eq!(d.user_agent(0).stats().allowed, 1);
    assert!(!d.manager(0).is_frozen(d.app));

    // Crash manager 1: its silence freezes manager 0 after Ti.
    let m1 = d.managers[1];
    let now = d.world.now();
    d.world.schedule_crash(now + SimDuration::from_secs(1), m1);
    d.run_for(SimDuration::from_secs(15));
    assert!(d.manager(0).is_frozen(d.app), "survivor must freeze");

    // Recovery thaws the system (sync + heartbeats).
    let now = d.world.now();
    d.world.schedule_recover(now + SimDuration::from_secs(1), m1);
    d.run_for(SimDuration::from_secs(10));
    assert!(!d.manager(0).is_frozen(d.app));
    assert!(!d.manager(1).is_recovering());
}
