//! Invariant I1, randomized: **bounded revocation**. Across random
//! partition geometries, clock rates, timings, and seeds, once a revoke
//! reaches its update quorum at real time `t`, no access is granted
//! after `t + Te` (plus in-flight-delivery slack).
//!
//! This is the paper's central guarantee (§3.2–§3.3), checked on the
//! real protocol rather than the model.

use proptest::prelude::*;

use wanacl::prelude::*;
use wanacl::sim::net::partition::ScheduledPartitions;
use wanacl::sim::net::WanNet;

const TE_SECS: u64 = 12;
const HORIZON_SECS: u64 = 60;

#[derive(Debug, Clone)]
struct Geometry {
    seed: u64,
    /// How many of the 3 managers the host loses contact with, and when.
    cut_managers: usize,
    cut_at_secs: u64,
    revoke_at_secs: u64,
    /// Host clock rate in [b, 1] with b = 0.8.
    host_rate_milli: u64,
}

fn geometry() -> impl Strategy<Value = Geometry> {
    (
        any::<u64>(),
        0usize..=3,
        4u64..30,
        5u64..25,
        800u64..=1000,
    )
        .prop_map(|(seed, cut_managers, cut_at_secs, revoke_at_secs, host_rate_milli)| Geometry {
            seed,
            cut_managers,
            cut_at_secs,
            revoke_at_secs,
            host_rate_milli,
        })
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        ..ProptestConfig::default()
    })]

    #[test]
    fn no_access_after_te_past_quorum(geo in geometry()) {
        let b = 0.8;
        let policy = Policy::builder(2)
            .revocation_bound(SimDuration::from_secs(TE_SECS))
            .clock_rate_bound(b)
            .query_timeout(SimDuration::from_millis(250))
            .max_attempts(2)
            .cache_sweep_interval(SimDuration::from_secs(3))
            .build();

        // Node layout: managers 0..3, host 3, user 4, admin 5. Managers
        // stay mutually connected (the update quorum is reachable), the
        // host loses `cut_managers` of them at `cut_at`.
        let mut schedule = ScheduledPartitions::new();
        if geo.cut_managers > 0 {
            let side: Vec<NodeId> = (0..geo.cut_managers).map(NodeId::from_index).collect();
            schedule.add(wanacl::sim::net::partition::Cut::new(
                side,
                vec![NodeId::from_index(3)],
                SimTime::from_secs(geo.cut_at_secs),
                SimTime::from_secs(10_000),
            ));
        }
        let net = WanNet::builder()
            .uniform_delay(SimDuration::from_millis(10), SimDuration::from_millis(60))
            .partitions(Box::new(schedule))
            .build();

        let rate = geo.host_rate_milli as f64 / 1000.0;
        let mut d = Scenario::builder(geo.seed)
            .managers(3)
            .hosts(1)
            .users(1)
            .policy(policy)
            .all_users_granted()
            .host_clock(ClockSpec::Fixed { rate, offset: SimDuration::ZERO })
            .net(Box::new(net))
            .request_timeout(SimDuration::from_secs(5))
            .build();
        d.world.enable_trace();

        // Revoke at the scripted time; invoke twice a second throughout,
        // stepping so each allowed reply can be timestamped.
        let revoke_at = SimTime::from_secs(geo.revoke_at_secs);
        let user_node = d.users[0].1;
        let mut allowed_so_far = 0u64;
        let mut last_allowed_at: Option<SimTime> = None;
        let mut revoked = false;
        let step = SimDuration::from_millis(500);
        let mut t = SimTime::from_millis(400);
        while t < SimTime::from_secs(HORIZON_SECS) {
            if !revoked && t >= revoke_at {
                d.revoke(UserId(1), Right::Use);
                revoked = true;
            }
            d.world.inject(t, user_node, ProtoMsg::Invoke {
                app: d.app,
                user: UserId(1),
                req: ReqId(0),
                payload: "tick".into(),
                signature: None,
            });
            t += step;
            d.run_until(t);
            let now_allowed = d.user_agent(0).stats().allowed;
            if now_allowed > allowed_so_far {
                allowed_so_far = now_allowed;
                last_allowed_at = Some(d.world.now());
            }
        }
        d.run_until(SimTime::from_secs(HORIZON_SECS + 10));

        // The revoke must have stabilized (managers stay connected).
        let agent = d.admin_agent();
        prop_assert_eq!(agent.op_count(), 1);
        let sent_at = agent.sent_at(0).expect("revoke sent");
        let latency = agent.stable_latency(0).expect("revoke must reach its update quorum");
        // Admin clock is perfect: local time == real time.
        let stable_at = SimTime::from_nanos(sent_at.plus(latency).as_nanos());

        // THE invariant: nothing allowed after stable + Te + slack.
        // Slack covers the reply leg (max one-way delay) plus the
        // half-step quantization of our observation loop.
        let bound = stable_at
            + SimDuration::from_secs(TE_SECS)
            + SimDuration::from_millis(600);
        if let Some(last) = last_allowed_at {
            prop_assert!(
                last <= bound,
                "access allowed at {last} after bound {bound} (revoke stable {stable_at})"
            );
        }

        // Independent check: the offline auditor re-derives the same
        // invariant from the recorded trace alone.
        let audit = wanacl::core::audit::AuditLog::from_trace(d.world.trace());
        prop_assert!(audit.revoke_count() >= 1, "audit must see the stable revoke");
        if let Err(v) = audit.verify_bounded_revocation(
            SimDuration::from_secs(TE_SECS),
            SimDuration::from_millis(200), // reply leg in flight
        ) {
            prop_assert!(false, "auditor found a violation: {v}");
        }
    }
}
