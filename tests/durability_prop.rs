//! Durability as a property: a manager's ack is a promise. Once an
//! update was observed `Stable`, a crash — even a correlated
//! crash-restart of *every* manager at once, with torn-tail and
//! failed-fsync disk faults layered on — must not lose it: local
//! snapshot + WAL replay has to reproduce the state before the manager
//! serves again, and the bounded-revocation invariant must keep holding
//! across the restart.
//!
//! The planted drop-the-WAL bug proves the oracle bites: a manager
//! whose storage "reads back empty" is reported as a durability
//! violation with a replayable `(seed, plan, event index)` coordinate.

use proptest::prelude::*;

use wanacl::core::campaign::{
    campaign_targets, run_campaign, run_campaigns_parallel, run_plans_parallel, run_with_plan,
    CampaignConfig, InjectedBug,
};
use wanacl::prelude::*;
use wanacl::sim::nemesis::NemesisPlan;
use wanacl::sim::rng::SimRng;
use wanacl::sim::time::SimTime;

fn disk_config(seed: u64, intensity: f64) -> CampaignConfig {
    CampaignConfig {
        seed,
        horizon: SimDuration::from_secs(6),
        intensity,
        disk_faults: true,
        ..CampaignConfig::default()
    }
}

/// A scripted worst case for `seed`: every manager's disk degrades with
/// seed-derived probabilities, and the whole manager set crash-restarts
/// together mid-run.
fn full_restart_plan(config: &CampaignConfig) -> NemesisPlan {
    let targets = campaign_targets(config);
    let mut rng = SimRng::seed_from(config.seed ^ 0x6475_7261); // "dura"
    let mut b = NemesisPlan::builder(SimTime::ZERO + config.horizon);
    for &m in &targets.managers {
        b = b.disk_fault(m, rng.uniform(0.05, 0.35), rng.uniform(0.3, 1.0));
    }
    let at = SimTime::ZERO + SimDuration::from_secs_f64(rng.uniform(2.0, 4.0));
    let down = SimDuration::from_secs_f64(rng.uniform(0.2, 0.8));
    b.cluster_restart(targets.managers.clone(), at, down).build()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 30, ..ProptestConfig::default() })]

    /// Random-seed campaigns whose fault mix includes disk faults and
    /// correlated cluster restarts never violate any invariant —
    /// durability (I5) included.
    #[test]
    fn random_disk_fault_campaigns_never_violate_invariants(
        seed in any::<u64>(),
        intensity in 0.5f64..2.0,
    ) {
        let report = run_campaign(&disk_config(seed, intensity));
        prop_assert!(report.is_clean(), "counterexample:\n{}", report.render());
    }
}

/// Fixed-seed sweep: 100 consecutive seeds, randomized storage-aware
/// fault plans, zero violations. The set never changes between runs, so
/// CI failures bisect cleanly.
#[test]
fn hundred_seed_disk_fault_sweep_is_clean() {
    let configs: Vec<CampaignConfig> = (0..100u64).map(|seed| disk_config(seed, 1.5)).collect();
    let reports = run_campaigns_parallel(&configs, 0);
    let mut durable_evidence = 0u64;
    let mut recoveries = 0u64;
    for report in &reports {
        assert!(report.is_clean(), "seed {}:\n{}", report.seed, report.render());
        durable_evidence += report.wal_appends;
        recoveries += report.recovered_from_disk;
    }
    assert!(durable_evidence > 100, "sweep made too few ops durable: {durable_evidence}");
    assert!(recoveries > 0, "no seed exercised disk recovery");
}

/// The acceptance scenario at scale: for 100 fixed seeds, *all* managers
/// crash-restart at once under seed-derived torn-write / failed-fsync
/// disk faults, and every previously-stable grant and revoke survives
/// (the oracle's durability and bounded-revocation invariants both stay
/// green; every manager recovers from its own disk, not a peer).
#[test]
fn full_cluster_restart_preserves_stable_state_across_100_seeds() {
    let work: Vec<(CampaignConfig, NemesisPlan)> = (0..100u64)
        .map(|seed| {
            let config = disk_config(seed, 0.0);
            let plan = full_restart_plan(&config);
            (config, plan)
        })
        .collect();
    let reports = run_plans_parallel(&work, 0);
    for ((config, _), report) in work.iter().zip(&reports) {
        let seed = config.seed;
        assert!(report.is_clean(), "seed {seed}:\n{}", report.render());
        assert_eq!(
            report.recovered_from_disk, config.managers as u64,
            "seed {seed}: every manager must recover from local storage\n{}",
            report.render()
        );
    }
}

/// The harness has teeth: a manager whose stable storage drops the WAL
/// on recovery is caught by the durability invariant, and the
/// counterexample replays — same seed, same plan, same event index.
#[test]
fn planted_drop_wal_bug_is_caught_with_replayable_counterexample() {
    let mut caught = None;
    for seed in 0..20u64 {
        let config = CampaignConfig {
            inject_bug: Some(InjectedBug::DropWal { manager_index: 0 }),
            ..disk_config(seed, 0.0)
        };
        let plan = full_restart_plan(&config);
        let report = run_with_plan(&config, &plan);
        if !report.is_clean() {
            caught = Some((config, plan, report));
            break;
        }
    }
    let (config, plan, report) = caught.expect("no seed in 0..20 tripped the drop-WAL bug");
    let violation = report
        .violations
        .iter()
        .find(|v| v.kind == InvariantKind::Durability)
        .expect("drop-WAL must be a durability violation");
    assert!(violation.event_index > 0);

    // Replay: the (seed, plan, event index) coordinate is deterministic.
    let replay = run_with_plan(&config, &plan);
    assert_eq!(replay.violations, report.violations, "counterexample must replay exactly");
}

/// The drop-WAL detector also fires on the parallel executor, with the
/// exact violations the sequential path reports for every seed.
#[test]
fn planted_drop_wal_bug_is_caught_under_parallel_executor() {
    let work: Vec<(CampaignConfig, NemesisPlan)> = (0..20u64)
        .map(|seed| {
            let config = CampaignConfig {
                inject_bug: Some(InjectedBug::DropWal { manager_index: 0 }),
                ..disk_config(seed, 0.0)
            };
            let plan = full_restart_plan(&config);
            (config, plan)
        })
        .collect();
    let reports = run_plans_parallel(&work, 0);
    let dirty: Vec<&_> = reports.iter().filter(|r| !r.is_clean()).collect();
    assert!(!dirty.is_empty(), "no seed in 0..20 tripped the drop-WAL bug in parallel");
    assert!(
        dirty.iter().any(|r| r.violations.iter().any(|v| v.kind == InvariantKind::Durability)),
        "drop-WAL must surface as a durability violation"
    );
    for ((config, plan), report) in work.iter().zip(&reports) {
        let sequential = run_with_plan(config, plan);
        assert_eq!(
            report.violations, sequential.violations,
            "seed {}: parallel and sequential verdicts must match",
            config.seed
        );
    }
}
