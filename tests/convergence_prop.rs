//! Randomized manager-convergence property: under arbitrary interleaved
//! `Add`/`Revoke` storms issued at arbitrary managers, with random
//! manager–manager partitions that eventually heal, every manager ends
//! with the same ACL (Lamport last-writer-wins + persistent
//! retransmission).

use proptest::prelude::*;

use wanacl::prelude::*;
use wanacl::sim::net::partition::{Cut, ScheduledPartitions};
use wanacl::sim::net::WanNet;

#[derive(Debug, Clone)]
struct OpEvent {
    at_ms: u64,
    manager: usize,
    user: u64,
    right_use: bool,
    is_add: bool,
}

#[derive(Debug, Clone)]
struct Storm {
    seed: u64,
    managers: usize,
    ops: Vec<OpEvent>,
    /// Partition of one manager away from the rest, healing before the
    /// horizon.
    cut_manager: usize,
    cut_window: (u64, u64),
}

fn storm() -> impl Strategy<Value = Storm> {
    (2usize..=5, any::<u64>()).prop_flat_map(|(managers, seed)| {
        let ops = prop::collection::vec(
            (0u64..30_000, 0..managers, 1u64..4, any::<bool>(), any::<bool>()).prop_map(
                |(at_ms, manager, user, right_use, is_add)| OpEvent {
                    at_ms,
                    manager,
                    user,
                    right_use,
                    is_add,
                },
            ),
            1..25,
        );
        (Just(managers), Just(seed), ops, 0..managers, (1_000u64..20_000, 1_000u64..15_000))
            .prop_map(|(managers, seed, ops, cut_manager, (start, len))| Storm {
                seed,
                managers,
                ops,
                cut_manager,
                cut_window: (start, start + len),
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 20, ..ProptestConfig::default() })]

    #[test]
    fn managers_converge_after_op_storm(storm in storm()) {
        let m = storm.managers;
        let side: Vec<NodeId> = vec![NodeId::from_index(storm.cut_manager)];
        let rest: Vec<NodeId> = (0..m)
            .filter(|&i| i != storm.cut_manager)
            .map(NodeId::from_index)
            .collect();
        let mut schedule = ScheduledPartitions::new();
        if !rest.is_empty() {
            schedule.add(Cut::new(
                side,
                rest,
                SimTime::from_millis(storm.cut_window.0),
                SimTime::from_millis(storm.cut_window.1),
            ));
        }
        let net = WanNet::builder()
            .uniform_delay(SimDuration::from_millis(5), SimDuration::from_millis(50))
            .partitions(Box::new(schedule))
            .build();
        let tuning = ManagerConfig {
            retry_interval: SimDuration::from_millis(300),
            ..ManagerConfig::default()
        };
        let mut d = Scenario::builder(storm.seed)
            .managers(m)
            .hosts(1)
            .users(3)
            .policy(Policy::builder(1).build())
            .manager_tuning(tuning)
            .net(Box::new(net))
            .build();

        for (i, op) in storm.ops.iter().enumerate() {
            let right = if op.right_use { Right::Use } else { Right::Manage };
            let acl_op = if op.is_add {
                AclOp::Add { app: d.app, user: UserId(op.user), right }
            } else {
                AclOp::Revoke { app: d.app, user: UserId(op.user), right }
            };
            d.world.inject(
                SimTime::from_millis(op.at_ms),
                d.managers[op.manager],
                ProtoMsg::Admin {
                    op: acl_op,
                    req: ReqId(i as u64),
                    issuer: UserId(0),
                    signature: None,
                },
            );
        }

        // Run well past the heal plus several retransmission rounds.
        d.run_until(SimTime::from_secs(120));

        for user in 1..4u64 {
            for right in [Right::Use, Right::Manage] {
                let answers: Vec<bool> = (0..m)
                    .map(|i| d.manager(i).acl_has(d.app, UserId(user), right))
                    .collect();
                prop_assert!(
                    answers.iter().all(|&a| a == answers[0]),
                    "user {user} {right}: managers diverged {answers:?} (storm {storm:?})"
                );
            }
        }
    }
}
