//! The replicated directory as a property: hosts learn the manager set
//! through signed, versioned records read from a quorum of directory
//! replicas, so no single stale, partitioned, or outright malicious
//! replica may ever make a host act on a manager set no legitimate
//! writer published (I7), or ride a superseded record materially past
//! its TTL once the newer version reached a write quorum (I6).
//!
//! The planted trust-unsigned bug proves the oracle bites: a host that
//! skips signature verification swallows a malicious replica's forged
//! record and is reported as a directory-integrity violation with a
//! replayable — and shrinkable — `(seed, plan, event index)`
//! coordinate.

use proptest::prelude::*;

use wanacl::core::campaign::{
    campaign_targets, rollup_metrics, run_campaign, run_campaigns_parallel, run_plans_parallel,
    run_with_plan, shrink_plan, CampaignConfig, InjectedBug,
};
use wanacl::prelude::*;
use wanacl::sim::nemesis::NemesisPlan;
use wanacl::sim::rng::SimRng;
use wanacl::sim::time::SimTime;

fn directory_config(seed: u64, intensity: f64) -> CampaignConfig {
    CampaignConfig {
        seed,
        horizon: SimDuration::from_secs(6),
        intensity,
        ns_replicas: 3,
        ns_faults: true,
        ..CampaignConfig::default()
    }
}

/// A scripted worst case for `seed`: replica 0 stops anti-entropy for
/// the whole run, replica 1 forges records inside a seed-derived
/// window, and a split-brain cut isolates replica 0 from its peers over
/// that same window — all while the campaign republishes version 2 into
/// replica 0 mid-run.
fn directory_churn_plan(config: &CampaignConfig) -> NemesisPlan {
    let targets = campaign_targets(config);
    let r = &targets.ns_replicas;
    assert_eq!(r.len(), 3, "plan is written for three replicas");
    let mut rng = SimRng::seed_from(config.seed ^ 0x6e73_6469); // "nsdi"
    let start = SimTime::ZERO + SimDuration::from_secs_f64(rng.uniform(1.0, 2.5));
    let end = start + SimDuration::from_secs_f64(rng.uniform(1.0, 3.0));
    NemesisPlan::builder(SimTime::ZERO + config.horizon)
        .stale_replica(r[0])
        .malicious_replica(r[1], start, end)
        .directory_split(vec![r[0]], vec![r[1], r[2]], start, end)
        .build()
}

/// A small deployment with a 3-replica directory (read quorum 2) and a
/// 2-second record TTL, for direct churn probes outside the campaign
/// harness.
fn directory_deployment(seed: u64) -> Deployment {
    Scenario::builder(seed)
        .managers(2)
        .hosts(1)
        .users(1)
        .policy(Policy::builder(1).build())
        .all_users_granted()
        .with_replicated_directory(3, 2, SimDuration::from_secs(2))
        .build()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 30, ..ProptestConfig::default() })]

    /// Random-seed campaigns whose fault mix includes stale replicas,
    /// directory split-brain, malicious replicas, and replica
    /// crash-restarts never violate any invariant — directory freshness
    /// (I6) and integrity (I7) included.
    #[test]
    fn random_directory_fault_campaigns_never_violate_invariants(
        seed in any::<u64>(),
        intensity in 0.5f64..2.0,
    ) {
        let report = run_campaign(&directory_config(seed, intensity));
        prop_assert!(report.is_clean(), "counterexample:\n{}", report.render());
    }
}

/// After the first quorum read installs the record, the host keeps
/// re-querying on TTL expiry: replica lookup counts keep growing long
/// after the directory has gone quiet.
#[test]
fn hosts_requery_the_directory_on_ttl_expiry() {
    let mut d = directory_deployment(11);
    d.run_for(SimDuration::from_secs(1));
    assert_eq!(d.host(0).directory_version(AppId(0)), 1, "first quorum read must install v1");
    let early: u64 = (0..3).map(|i| d.ns_replica(i).lookups()).sum();
    assert!(early >= 2, "the first read round queries a quorum, saw {early}");

    // Nothing changes in the directory; only TTL expiry drives reads.
    d.run_for(SimDuration::from_secs(6));
    let late: u64 = (0..3).map(|i| d.ns_replica(i).lookups()).sum();
    assert!(
        late >= early + 4,
        "TTL expiry (2 s records over 6 s) must trigger re-queries: {early} -> {late}"
    );
    // The workload still flows on the refreshed record.
    d.invoke_from(0);
    d.run_for(SimDuration::from_secs(2));
    assert_eq!(d.user_agent(0).stats().allowed, 1);
}

/// Replacing the manager set mid-flight: a v2 record published to one
/// replica spreads by anti-entropy, every replica converges, and the
/// host both installs v2 and keeps serving the workload across the
/// switch.
#[test]
fn manager_set_replacement_mid_flight_converges_and_keeps_serving() {
    let mut d = directory_deployment(12);
    d.run_for(SimDuration::from_secs(1));
    d.invoke_from(0);
    d.run_for(SimDuration::from_secs(1));
    assert_eq!(d.user_agent(0).stats().allowed, 1, "pre-churn request must pass");
    assert_eq!(d.host(0).manager_view(AppId(0)).len(), 2);

    // Shrink the manager set to manager 0 only, as version 2, published
    // to a single replica.
    let new_set = vec![d.managers[0]];
    d.republish_managers(1, 2, new_set.clone());
    d.run_for(SimDuration::from_secs(4));

    for i in 0..3 {
        assert_eq!(d.ns_replica(i).version_of(AppId(0)), 2, "replica {i} must converge to v2");
        assert_eq!(d.ns_replica(i).managers(AppId(0)), &new_set[..]);
    }
    assert_eq!(d.host(0).directory_version(AppId(0)), 2, "host must install v2 on refresh");
    assert_eq!(d.host(0).manager_view(AppId(0)), &new_set[..]);

    d.invoke_from(0);
    d.run_for(SimDuration::from_secs(2));
    assert_eq!(d.user_agent(0).stats().allowed, 2, "post-churn request must pass");
}

/// Fixed-seed sweep: 100 consecutive seeds, randomized directory-aware
/// fault plans (stale replicas, split-brain, malicious replicas,
/// replica crashes layered over the classic net faults), zero
/// violations. The set never changes between runs, so CI failures
/// bisect cleanly.
#[test]
fn hundred_seed_directory_fault_sweep_is_clean() {
    let configs: Vec<CampaignConfig> =
        (0..100u64).map(|seed| directory_config(seed, 1.5)).collect();
    let reports = run_campaigns_parallel(&configs, 0);
    let (mut installs, mut publishes) = (0u64, 0u64);
    for report in &reports {
        assert!(report.is_clean(), "seed {}:\n{}", report.seed, report.render());
        installs += report.oracle_stats.ns_installs;
        publishes += report.oracle_stats.ns_publishes;
    }
    assert!(installs > 100, "sweep completed too few quorum reads: {installs}");
    assert!(publishes > 100, "sweep published too few records: {publishes}");
    let rollup = rollup_metrics(&reports);
    assert!(rollup.counter("ns.lookups") > 0, "replicas must have served lookups");
    assert!(rollup.counter("ns.read_rounds") > 0, "hosts must have run read rounds");
}

/// The acceptance scenario at scale: for 100 fixed seeds the scripted
/// stale + malicious + split-brain plan runs against a mid-run
/// manager-set republish, and every host either installs what a
/// legitimate writer signed or degrades gracefully — never a forged or
/// materially-stale record.
#[test]
fn scripted_stale_malicious_split_churn_is_clean_across_100_seeds() {
    let work: Vec<(CampaignConfig, NemesisPlan)> = (0..100u64)
        .map(|seed| {
            let config = directory_config(seed, 0.0);
            let plan = directory_churn_plan(&config);
            (config, plan)
        })
        .collect();
    let reports = run_plans_parallel(&work, 0);
    let mut installs = 0u64;
    for ((config, _), report) in work.iter().zip(&reports) {
        assert!(report.is_clean(), "seed {}:\n{}", config.seed, report.render());
        installs += report.oracle_stats.ns_installs;
    }
    assert!(installs > 100, "churn sweep completed too few quorum reads: {installs}");
}

/// The harness has teeth: a host that trusts unsigned directory records
/// swallows a malicious replica's forgery, the integrity invariant
/// fires, the counterexample replays exactly, and the shrinker reduces
/// the plan while keeping it failing.
#[test]
fn planted_trust_unsigned_bug_is_caught_replayable_and_shrinkable() {
    let mut caught = None;
    for seed in 0..20u64 {
        let config = CampaignConfig {
            inject_bug: Some(InjectedBug::NsTrustUnsigned { host_index: 0 }),
            ..directory_config(seed, 1.0)
        };
        let plan = wanacl::core::campaign::sample_plan(&config);
        let report = run_with_plan(&config, &plan);
        if !report.is_clean() {
            caught = Some((config, plan, report));
            break;
        }
    }
    let (config, plan, report) = caught.expect("no seed in 0..20 tripped the trust-unsigned bug");
    let violation = report
        .violations
        .iter()
        .find(|v| v.kind == InvariantKind::DirectoryIntegrity)
        .expect("trusting unsigned records must surface as a directory-integrity violation");
    assert!(violation.event_index > 0);

    // Replay: the (seed, plan, event index) coordinate is deterministic.
    let replay = run_with_plan(&config, &plan);
    assert_eq!(replay.violations, report.violations, "counterexample must replay exactly");

    // Shrink: fewer (or equal) faults, still failing, still the same kind.
    let (small_plan, small_report) = shrink_plan(&config, &plan);
    assert!(small_plan.len() <= plan.len());
    assert!(!small_report.is_clean(), "shrunk plan must still fail");
    assert!(
        small_report.violations.iter().any(|v| v.kind == InvariantKind::DirectoryIntegrity),
        "shrunk counterexample must keep the integrity violation"
    );
}

/// The trust-unsigned detector also fires on the parallel executor,
/// with the exact violations the sequential path reports for every
/// seed.
#[test]
fn planted_trust_unsigned_bug_is_caught_under_parallel_executor() {
    let work: Vec<(CampaignConfig, NemesisPlan)> = (0..20u64)
        .map(|seed| {
            let config = CampaignConfig {
                inject_bug: Some(InjectedBug::NsTrustUnsigned { host_index: 0 }),
                ..directory_config(seed, 1.0)
            };
            let plan = wanacl::core::campaign::sample_plan(&config);
            (config, plan)
        })
        .collect();
    let reports = run_plans_parallel(&work, 0);
    let dirty: Vec<&_> = reports.iter().filter(|r| !r.is_clean()).collect();
    assert!(!dirty.is_empty(), "no seed in 0..20 tripped the trust-unsigned bug in parallel");
    assert!(
        dirty
            .iter()
            .any(|r| r.violations.iter().any(|v| v.kind == InvariantKind::DirectoryIntegrity)),
        "trusting unsigned records must surface as a directory-integrity violation"
    );
    for ((config, plan), report) in work.iter().zip(&reports) {
        let sequential = run_with_plan(config, plan);
        assert_eq!(
            report.violations, sequential.violations,
            "seed {}: parallel and sequential verdicts must match",
            config.seed
        );
    }
}
