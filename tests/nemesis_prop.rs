//! Nemesis campaigns as a property: for *any* randomly sampled
//! adversarial schedule — message loss, duplication, delay spikes,
//! symmetric/asymmetric/flapping partitions, crash–recovery storms,
//! name-service outages, drifting clocks — the protocol never allows a
//! request for a right whose revocation stabilized more than `Te`
//! earlier, and every other oracle invariant (quorum intersection,
//! cache expiry, freeze safety) holds too.
//!
//! The companion tests prove the harness has teeth: a deliberately
//! planted bug (one host's cache stops expiring) *is* caught, and the
//! greedy shrinker returns a no-larger plan that still fails.

use proptest::prelude::*;

use wanacl::core::campaign::{
    run_campaign, run_campaigns_parallel, run_with_plan, shrink_plan, CampaignConfig, InjectedBug,
};
use wanacl::prelude::*;

fn config(seed: u64, use_name_service: bool, intensity: f64) -> CampaignConfig {
    CampaignConfig {
        seed,
        horizon: SimDuration::from_secs(6),
        use_name_service,
        intensity,
        ..CampaignConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 40, ..ProptestConfig::default() })]

    /// Acceptance: random-seed campaigns over the unmodified protocol
    /// never violate an invariant. Together with the fixed sweep below,
    /// well over 100 distinct seeds run per suite execution.
    #[test]
    fn random_campaigns_never_violate_invariants(
        seed in any::<u64>(),
        use_name_service in any::<bool>(),
        intensity in 0.5f64..2.0,
    ) {
        let report = run_campaign(&config(seed, use_name_service, intensity));
        prop_assert!(report.is_clean(), "counterexample:\n{}", report.render());
    }
}

/// Fixed-seed sweep: 100 consecutive seeds, no violations. Unlike the
/// proptest above this set never changes between runs, so CI failures
/// bisect cleanly. Runs on the parallel executor (one worker per core);
/// every seed's report is bit-identical to a sequential run.
#[test]
fn hundred_seed_sweep_is_clean() {
    let configs: Vec<CampaignConfig> =
        (0..100u64).map(|seed| config(seed, seed % 3 == 0, 1.0)).collect();
    let reports = run_campaigns_parallel(&configs, 0);
    let mut evidence = 0u64;
    for (config, report) in configs.iter().zip(&reports) {
        assert!(report.is_clean(), "seed {}:\n{}", config.seed, report.render());
        evidence += report.oracle_stats.allows;
    }
    assert!(evidence > 1_000, "sweep checked too few allows: {evidence}");
}

/// The parallel executor is an optimization, not a semantics change:
/// over seeds 0..32 it must produce byte-identical reports — same
/// violations, same oracle and user stats, same audit digests — as the
/// sequential path, at every job count.
#[test]
fn parallel_sweep_is_bit_identical_to_sequential() {
    let configs: Vec<CampaignConfig> =
        (0..32u64).map(|seed| config(seed, seed % 3 == 0, 1.0)).collect();
    let sequential: Vec<_> = configs.iter().map(run_campaign).collect();
    for jobs in [2, 4, 0] {
        let parallel = run_campaigns_parallel(&configs, jobs);
        assert_eq!(parallel.len(), sequential.len());
        for (seq, par) in sequential.iter().zip(&parallel) {
            assert_eq!(par.seed, seq.seed);
            assert_eq!(par.plan, seq.plan, "seed {}: plans diverged (jobs={jobs})", seq.seed);
            assert_eq!(
                par.violations, seq.violations,
                "seed {}: violations diverged (jobs={jobs})",
                seq.seed
            );
            assert_eq!(par.oracle_stats, seq.oracle_stats, "seed {} (jobs={jobs})", seq.seed);
            assert_eq!(par.user_stats, seq.user_stats, "seed {} (jobs={jobs})", seq.seed);
            assert_eq!(
                par.audit_digest, seq.audit_digest,
                "seed {}: audit trace diverged (jobs={jobs})",
                seq.seed
            );
        }
    }
}

/// The planted cache-expiry bug still fires when campaigns run on the
/// parallel executor, and on the same seeds as sequentially.
#[test]
fn injected_bug_is_caught_under_parallel_executor() {
    let configs: Vec<CampaignConfig> = (0..30u64)
        .map(|seed| CampaignConfig {
            inject_bug: Some(InjectedBug::IgnoreCacheExpiry { host_index: 0 }),
            ..config(seed, false, 1.0)
        })
        .collect();
    let reports = run_campaigns_parallel(&configs, 0);
    let parallel_dirty: Vec<u64> =
        reports.iter().filter(|r| !r.is_clean()).map(|r| r.seed).collect();
    assert!(!parallel_dirty.is_empty(), "no seed in 0..30 exposed the planted bug in parallel");
    let sequential_dirty: Vec<u64> = configs
        .iter()
        .map(run_campaign)
        .filter(|r| !r.is_clean())
        .map(|r| r.seed)
        .collect();
    assert_eq!(parallel_dirty, sequential_dirty, "detector seeds must match sequential");
}

/// The oracle must catch the planted ignore-expiry bug, and the shrunk
/// plan must still reproduce it without growing.
#[test]
fn injected_bug_is_caught_with_shrunk_counterexample() {
    let mut caught = None;
    for seed in 0..30u64 {
        let cfg = CampaignConfig {
            inject_bug: Some(InjectedBug::IgnoreCacheExpiry { host_index: 0 }),
            ..config(seed, false, 1.0)
        };
        let report = run_campaign(&cfg);
        if !report.is_clean() {
            caught = Some((cfg, report));
            break;
        }
    }
    let (cfg, report) = caught.expect("no seed in 0..30 exposed the planted bug");
    let (small, small_report) = shrink_plan(&cfg, &report.plan);
    assert!(!small_report.is_clean(), "shrunk plan must still fail");
    assert!(small.len() <= report.plan.len(), "shrinker must never grow the plan");
    // The shrunk counterexample replays: same plan, same verdict.
    let replay = run_with_plan(&cfg, &small);
    assert_eq!(replay.violations, small_report.violations, "replay must be exact");
}
