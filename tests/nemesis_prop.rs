//! Nemesis campaigns as a property: for *any* randomly sampled
//! adversarial schedule — message loss, duplication, delay spikes,
//! symmetric/asymmetric/flapping partitions, crash–recovery storms,
//! name-service outages, drifting clocks — the protocol never allows a
//! request for a right whose revocation stabilized more than `Te`
//! earlier, and every other oracle invariant (quorum intersection,
//! cache expiry, freeze safety) holds too.
//!
//! The companion tests prove the harness has teeth: a deliberately
//! planted bug (one host's cache stops expiring) *is* caught, and the
//! greedy shrinker returns a no-larger plan that still fails.

use proptest::prelude::*;

use wanacl::core::campaign::{
    run_campaign, run_with_plan, shrink_plan, CampaignConfig, InjectedBug,
};
use wanacl::prelude::*;

fn config(seed: u64, use_name_service: bool, intensity: f64) -> CampaignConfig {
    CampaignConfig {
        seed,
        horizon: SimDuration::from_secs(6),
        use_name_service,
        intensity,
        ..CampaignConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 40, ..ProptestConfig::default() })]

    /// Acceptance: random-seed campaigns over the unmodified protocol
    /// never violate an invariant. Together with the fixed sweep below,
    /// well over 100 distinct seeds run per suite execution.
    #[test]
    fn random_campaigns_never_violate_invariants(
        seed in any::<u64>(),
        use_name_service in any::<bool>(),
        intensity in 0.5f64..2.0,
    ) {
        let report = run_campaign(&config(seed, use_name_service, intensity));
        prop_assert!(report.is_clean(), "counterexample:\n{}", report.render());
    }
}

/// Fixed-seed sweep: 100 consecutive seeds, no violations. Unlike the
/// proptest above this set never changes between runs, so CI failures
/// bisect cleanly.
#[test]
fn hundred_seed_sweep_is_clean() {
    let mut evidence = 0u64;
    for seed in 0..100u64 {
        let report = run_campaign(&config(seed, seed % 3 == 0, 1.0));
        assert!(report.is_clean(), "seed {seed}:\n{}", report.render());
        evidence += report.oracle_stats.allows;
    }
    assert!(evidence > 1_000, "sweep checked too few allows: {evidence}");
}

/// The oracle must catch the planted ignore-expiry bug, and the shrunk
/// plan must still reproduce it without growing.
#[test]
fn injected_bug_is_caught_with_shrunk_counterexample() {
    let mut caught = None;
    for seed in 0..30u64 {
        let cfg = CampaignConfig {
            inject_bug: Some(InjectedBug::IgnoreCacheExpiry { host_index: 0 }),
            ..config(seed, false, 1.0)
        };
        let report = run_campaign(&cfg);
        if !report.is_clean() {
            caught = Some((cfg, report));
            break;
        }
    }
    let (cfg, report) = caught.expect("no seed in 0..30 exposed the planted bug");
    let (small, small_report) = shrink_plan(&cfg, &report.plan);
    assert!(!small_report.is_clean(), "shrunk plan must still fail");
    assert!(small.len() <= report.plan.len(), "shrinker must never grow the plan");
    // The shrunk counterexample replays: same plan, same verdict.
    let replay = run_with_plan(&cfg, &small);
    assert_eq!(replay.violations, small_report.violations, "replay must be exact");
}
