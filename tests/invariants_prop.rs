//! Property-based tests for the core invariants (I2, I3, I4 of
//! DESIGN.md) and the substrate primitives.

use proptest::prelude::*;

use wanacl::analysis::model::{pa, ps};
use wanacl::auth::hmac::{hmac_sha256, verify};
use wanacl::auth::rsa::{self, KeyPair};
use wanacl::auth::sha256::{Digest, Sha256};
use wanacl::core::cache::{AclCache, CacheDecision};
use wanacl::core::policy::Policy;
use wanacl::core::types::UserId;
use wanacl::sim::clock::{DriftClock, LocalTime};
use wanacl::sim::rng::SimRng;
use wanacl::sim::time::SimDuration;

proptest! {
    /// I2: any check quorum intersects any update quorum — verified on
    /// concrete random subsets, not just by counting.
    #[test]
    fn check_and_update_quorums_intersect(
        m in 1usize..15,
        c_seed in 0usize..15,
        pick_seed in any::<u64>(),
    ) {
        let c = 1 + c_seed % m;
        let policy = Policy::builder(c).build();
        let uq = policy.update_quorum(m);
        prop_assert_eq!(c + uq, m + 1);

        // Draw a random C-subset and a random uq-subset of 0..m.
        let mut rng = SimRng::seed_from(pick_seed);
        let mut all: Vec<usize> = (0..m).collect();
        rng.shuffle(&mut all);
        let check: Vec<usize> = all[..c].to_vec();
        rng.shuffle(&mut all);
        let update: Vec<usize> = all[..uq].to_vec();
        prop_assert!(
            check.iter().any(|x| update.contains(x)),
            "subsets {:?} and {:?} of {} managers must intersect",
            check, update, m
        );
    }

    /// I4: for any admissible clock rate and any Te, a lease budget of
    /// te = b*Te measured on the local clock elapses within Te real time.
    #[test]
    fn lease_budget_respects_real_bound(
        b_millis in 1u64..=1000,
        rate_extra in 0.0f64..1.0,
        te_ms in 1u64..10_000_000,
    ) {
        let b = b_millis as f64 / 1000.0;
        let rate = b + (1.0 - b) * rate_extra; // in [b, 1]
        let clock = DriftClock::new(rate.clamp(1e-3, 1.0), SimDuration::ZERO);
        let te_real = SimDuration::from_millis(te_ms);
        let budget = te_real.mul_f64(b);
        let real_needed = clock.real_duration_for(budget);
        // Allow one nanosecond of rounding per conversion.
        prop_assert!(
            real_needed.as_nanos() <= te_real.as_nanos() + 2,
            "rate {rate}, b {b}: {real_needed} > {te_real}"
        );
    }

    /// Model sanity on arbitrary parameters: probabilities in range and
    /// the tradeoff monotone in C.
    #[test]
    fn model_probabilities_behave(m in 1u64..20, pi in 0.0f64..=1.0) {
        let mut prev_pa = f64::INFINITY;
        let mut prev_ps = -1.0;
        for c in 1..=m {
            let a = pa(m, c, pi);
            let s = ps(m, c, pi);
            prop_assert!((0.0..=1.0 + 1e-12).contains(&a));
            prop_assert!((0.0..=1.0 + 1e-12).contains(&s));
            prop_assert!(a <= prev_pa + 1e-12, "PA must fall with C");
            prop_assert!(s >= prev_ps - 1e-12, "PS must rise with C");
            prev_pa = a;
            prev_ps = s;
        }
    }

    /// I3 (cache soundness, data-structure level): a lookup never
    /// reports Fresh at or past the stored limit, whatever operation
    /// sequence produced the state.
    #[test]
    fn cache_never_serves_expired_entries(
        ops in prop::collection::vec((0u8..4, 0u64..8, 0u64..1000), 1..200),
    ) {
        let mut cache = AclCache::new();
        let mut clock = 0u64;
        for (op, user, arg) in ops {
            let user = UserId(user);
            clock += arg / 4; // time moves forward
            let now = LocalTime::from_nanos(clock);
            match op {
                0 => cache.insert(user, LocalTime::from_nanos(clock + arg)),
                1 => { cache.remove(user); }
                2 => { cache.sweep(now); }
                _ => {
                    if let CacheDecision::Fresh(limit) = cache.lookup(user, now) {
                        prop_assert!(now < limit, "fresh entry must be unexpired");
                    }
                }
            }
        }
    }

    /// Incremental SHA-256 equals one-shot hashing under arbitrary
    /// chunk boundaries.
    #[test]
    fn sha256_chunking_is_invisible(
        data in prop::collection::vec(any::<u8>(), 0..2048),
        cuts in prop::collection::vec(0usize..2048, 0..8),
    ) {
        let mut boundaries: Vec<usize> =
            cuts.into_iter().map(|c| c % (data.len() + 1)).collect();
        boundaries.sort_unstable();
        boundaries.dedup();
        let mut h = Sha256::new();
        let mut prev = 0;
        for &b in &boundaries {
            h.update(&data[prev..b]);
            prev = b;
        }
        h.update(&data[prev..]);
        prop_assert_eq!(h.finish(), Digest::of(&data));
    }

    /// HMAC verifies its own tags and rejects tampered messages.
    #[test]
    fn hmac_roundtrip_and_tamper(
        key in prop::collection::vec(any::<u8>(), 0..100),
        msg in prop::collection::vec(any::<u8>(), 1..200),
        flip in 0usize..200,
    ) {
        let tag = hmac_sha256(&key, &msg);
        prop_assert!(verify(&key, &msg, &tag));
        let mut tampered = msg.clone();
        let idx = flip % tampered.len();
        tampered[idx] ^= 0x01;
        prop_assert!(!verify(&key, &tampered, &tag));
    }

    /// RSA signatures verify for the signer and fail for other messages.
    #[test]
    fn rsa_signatures_bind_messages(seed in any::<u64>(), msg in ".{1,64}", other in ".{1,64}") {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let kp = KeyPair::generate(&mut rng);
        let sig = kp.sign(msg.as_bytes());
        prop_assert!(rsa::verify(&kp.public, msg.as_bytes(), &sig));
        if msg != other {
            // Hash-then-sign over a 64-bit group: distinct messages can
            // collide only with ~2^-64 probability.
            prop_assert!(!rsa::verify(&kp.public, other.as_bytes(), &sig));
        }
    }

    /// Seeded RNG streams are reproducible and label-forked streams
    /// stay independent of fork order.
    #[test]
    fn rng_fork_stability(seed in any::<u64>()) {
        let mut a = SimRng::seed_from(seed);
        let mut b = SimRng::seed_from(seed);
        let mut fa = a.fork("x");
        let mut fb = b.fork("x");
        for _ in 0..16 {
            prop_assert_eq!(fa.next_u64(), fb.next_u64());
        }
    }
}
