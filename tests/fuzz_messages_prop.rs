//! Adversarial-input fuzzing: arbitrary protocol messages from arbitrary
//! senders thrown at a live deployment must never panic the nodes, never
//! admit an unauthorized user, and never corrupt convergence.

use proptest::prelude::*;

use wanacl::prelude::*;
use wanacl::sim::time::{SimDuration, SimTime};

/// A compact recipe for one hostile message.
#[derive(Debug, Clone)]
struct Hostile {
    at_ms: u64,
    /// Which node receives it (index into the deployment's node space).
    target: usize,
    /// Which message to forge.
    kind: u8,
    a: u64,
    b: u64,
}

fn hostile() -> impl Strategy<Value = Hostile> {
    (0u64..20_000, 0usize..8, 0u8..12, any::<u64>(), any::<u64>())
        .prop_map(|(at_ms, target, kind, a, b)| Hostile { at_ms, target, kind, a, b })
}

fn forge(h: &Hostile) -> ProtoMsg {
    let app = AppId((h.a % 3) as u32);
    let user = UserId(h.b % 5);
    let req = ReqId(h.a ^ h.b);
    match h.kind {
        0 => ProtoMsg::Invoke {
            app,
            user,
            req,
            payload: "fuzz".into(),
            signature: None,
        },
        1 => ProtoMsg::InvokeReply { req, outcome: InvokeOutcome::Denied },
        2 => ProtoMsg::Query { app, user, req },
        3 => ProtoMsg::QueryReply {
            req,
            app,
            user,
            verdict: QueryVerdict::Grant { te: SimDuration::from_secs(h.a % 1_000 + 1) },
            mac: None,
        },
        4 => ProtoMsg::QueryReply { req, app, user, verdict: QueryVerdict::Deny, mac: None },
        5 => ProtoMsg::RevokeNotice { app, user, mac: None },
        6 => ProtoMsg::Admin {
            op: AclOp::Add { app, user, right: Right::Use },
            req,
            issuer: user,
            signature: None,
        },
        7 => ProtoMsg::AdminReply { req, status: AdminStatus::Stable },
        8 => ProtoMsg::Update {
            id: OpId { origin: NodeId::from_index((h.a % 4) as usize), seq: h.b },
            op: AclOp::Revoke { app, user, right: Right::Manage },
        },
        9 => ProtoMsg::UpdateAck {
            id: OpId { origin: NodeId::from_index((h.b % 4) as usize), seq: h.a },
        },
        10 => ProtoMsg::SyncRequest { stamps: vec![(NodeId::from_index((h.a % 4) as usize), h.b)], slots: vec![] },
        _ => ProtoMsg::NsReply {
            app,
            managers: vec![NodeId::from_index((h.a % 8) as usize)],
            ttl: SimDuration::from_secs(h.b % 100 + 1),
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// An authenticated deployment under a hostile message flood: the
    /// legitimate user keeps working, the unauthorized user never gets
    /// in, nothing panics.
    #[test]
    fn hostile_floods_cannot_break_an_authenticated_deployment(
        flood in prop::collection::vec(hostile(), 1..80),
        seed in any::<u64>(),
    ) {
        let policy = Policy::builder(2)
            .revocation_bound(SimDuration::from_secs(30))
            .query_timeout(SimDuration::from_millis(300))
            .max_attempts(2)
            .build();
        // Layout: managers 0..3, host 3, users 4,5, admin 6.
        let mut d = Scenario::builder(seed)
            .managers(3)
            .hosts(1)
            .users(2)
            .policy(policy)
            .initial_rights(vec![(UserId(1), Right::Use)]) // user 2 unauthorized
            .authenticate()
            .build();

        for h in &flood {
            // Target protocol nodes only (managers 0..3 and the host 3).
            // Environment injections into *agents* are operator triggers
            // by convention, not network traffic an adversary controls.
            let target = NodeId::from_index(h.target % 4);
            d.world.inject(SimTime::from_millis(h.at_ms), target, forge(h));
        }
        // Legitimate traffic interleaved with the flood.
        for t in [2u64, 8, 14, 19] {
            for user_idx in 0..2 {
                let (user, node) = d.users[user_idx];
                d.world.inject(
                    SimTime::from_secs(t),
                    node,
                    ProtoMsg::Invoke {
                        app: d.app,
                        user,
                        req: ReqId(0),
                        payload: "legit".into(),
                        signature: None, // the agent signs it itself
                    },
                );
            }
        }
        d.run_until(SimTime::from_secs(40));

        // The unauthorized user never got in.
        prop_assert_eq!(d.user_agent(1).stats().allowed, 0);
        // The legitimate user was never blocked by the flood (all four
        // requests answered affirmatively).
        prop_assert_eq!(d.user_agent(0).stats().allowed, 4);
        // Managers still agree about every probed user and right — the
        // flood included forged Update/UpdateAck/SyncResponse traffic,
        // which must be rejected at the peer filter.
        for user in 0..5u64 {
            for right in [Right::Use, Right::Manage] {
                let answers: Vec<bool> = (0..3)
                    .map(|i| d.manager(i).acl_has(d.app, UserId(user), right))
                    .collect();
                prop_assert!(
                    answers.iter().all(|&x| x == answers[0]),
                    "user {user} {right}: {answers:?}"
                );
            }
        }
        // And no forged update may have touched the ACL at all: user 1
        // keeps `use`, nobody gained `manage` beyond the admin.
        prop_assert!(d.manager(0).acl_has(d.app, UserId(1), Right::Use));
        for user in 0..5u64 {
            prop_assert!(!d.manager(0).acl_has(d.app, UserId(user), Right::Manage));
        }
    }
}
