//! Workspace umbrella crate; see the `wanacl` facade crate.
pub use wanacl::*;
