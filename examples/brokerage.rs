//! The paper's security-first case: "if the application allows users to
//! purchase expensive merchandise or undertake significant financial
//! transactions, it may be more important to be able to check that the
//! user is still authorized to use the service than to grant access"
//! (§2.3).
//!
//! Policy: authenticated requests, C = M (every manager must vouch),
//! tight revocation bound, fail closed. A compromised trader is revoked
//! while the trading host is partitioned from the managers; the cached
//! lease bounds the exposure window to Te.
//!
//! Run with: `cargo run --example brokerage`

use wanacl::prelude::*;
use wanacl::sim::net::partition::ScheduledPartitions;
use wanacl::sim::net::WanNet;

fn main() {
    let te = SimDuration::from_secs(15);
    let policy = Policy::builder(3) // C = M = 3
        .revocation_bound(te)
        .clock_rate_bound(0.95)
        .query_timeout(SimDuration::from_millis(300))
        .max_attempts(2)
        .exhaustion(ExhaustionBehavior::FailClosed)
        .build();

    // Node layout: managers 0,1,2; host 3; traders 4,5; admin 6.
    // The trading host is cut from all managers between 20 s and 120 s.
    let cut = ScheduledPartitions::cut_between(
        vec![NodeId::from_index(0), NodeId::from_index(1), NodeId::from_index(2)],
        vec![NodeId::from_index(3)],
        SimTime::from_secs(20),
        SimTime::from_secs(120),
    );
    let net = WanNet::builder()
        .constant_delay(SimDuration::from_millis(25))
        .partitions(Box::new(cut))
        .build();

    let mut d = Scenario::builder(13)
        .managers(3)
        .hosts(1)
        .users(2)
        .policy(policy)
        .all_users_granted()
        .authenticate()
        .net(Box::new(net))
        .build();

    println!("brokerage: C=M=3, Te=15s, authenticated, fail-closed");
    println!("host partitioned from managers 20s-120s\n");

    // Trader 1 trades at t=18s: lease cached just before the partition.
    let trader = d.users[0].1;
    d.world.inject(
        SimTime::from_secs(18),
        trader,
        ProtoMsg::Invoke {
            app: d.app,
            user: UserId(1),
            req: ReqId(0),
            payload: "BUY 100 ACME".into(),
            signature: None, // the agent signs it itself
        },
    );
    d.run_until(SimTime::from_secs(19));
    println!("t=18s  trade:                {:?}", outcome(&d));

    // t=25s: trader 1's credentials are found compromised — revoke. The
    // partition blocks the RevokeNotice to the host.
    d.run_until(SimTime::from_secs(25));
    d.revoke(UserId(1), Right::Use);
    d.run_until(SimTime::from_secs(27));
    println!("t=25s  credentials revoked (stable ops: {})", d.admin_agent().stable_count());

    // t=30s: the attacker trades on the cached lease — inside the Te
    // exposure window this *can* succeed; that is the quantified risk.
    d.world.inject(SimTime::from_secs(30), trader, trade("DRAIN ACCOUNT #1"));
    d.run_until(SimTime::from_secs(32));
    println!("t=30s  attacker (lease live): {:?}", outcome(&d));

    // t=36s: the lease anchored at 18 s has expired (te = 0.95*15s, on a
    // clock no slower than 0.95): the host can no longer verify, and the
    // policy fails closed. The attacker is locked out *despite the
    // partition still standing* — the paper's bounded-revocation claim.
    d.world.inject(SimTime::from_secs(36), trader, trade("DRAIN ACCOUNT #2"));
    d.run_until(SimTime::from_secs(40));
    println!("t=36s  attacker (lease dead): {:?}", outcome(&d));

    // t=125s: partition healed; the revoke is enforced by every manager.
    d.world.inject(SimTime::from_secs(125), trader, trade("DRAIN ACCOUNT #3"));
    d.run_until(SimTime::from_secs(130));
    println!("t=125s attacker (healed):     {:?}", outcome(&d));

    let stats = d.user_agent(0).stats();
    println!(
        "\nexposure: exactly {} post-revoke trade(s) inside the Te={}s window;",
        stats.allowed - 1,
        te.as_secs_f64() as u64
    );
    println!("everything after lease expiry was blocked, partition or not.");
    assert_eq!(stats.allowed, 2); // the legitimate trade + one in-window
    assert_eq!(stats.unavailable, 1); // blocked during partition
    assert_eq!(stats.denied, 1); // denied after heal
}

fn trade(order: &str) -> ProtoMsg {
    ProtoMsg::Invoke {
        app: AppId(0),
        user: UserId(1),
        req: ReqId(0),
        payload: order.into(),
        signature: None,
    }
}

fn outcome(d: &Deployment) -> &InvokeOutcome {
    d.user_agent(0).last_outcome().expect("replied")
}
