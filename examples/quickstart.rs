//! Quickstart: a minimal deployment — 3 managers, 2 hosts, 2 users —
//! showing the whole lifecycle: grant at bootstrap, cached access,
//! dynamic revoke, denial.
//!
//! Run with: `cargo run --example quickstart`

use wanacl::prelude::*;

fn main() {
    // Check quorum C = 2 of M = 3; revoked rights die within Te = 30 s.
    let policy = Policy::builder(2)
        .revocation_bound(SimDuration::from_secs(30))
        .clock_rate_bound(0.99)
        .query_timeout(SimDuration::from_millis(300))
        .max_attempts(3)
        .build();

    let mut d = Scenario::builder(1)
        .managers(3)
        .hosts(1)
        .users(2)
        .policy(policy)
        .all_users_granted()
        .build();

    println!("deployment: 3 managers, 1 host, 2 users, C=2, Te=30s");
    d.run_for(SimDuration::from_secs(1));

    // First access: cache miss -> quorum check -> allowed + cached.
    d.invoke_from(0);
    d.run_for(SimDuration::from_secs(2));
    println!(
        "user 1 first access:  {:?} (cache misses so far: {})",
        d.user_agent(0).last_outcome().expect("replied"),
        d.host(0).stats().cache_misses,
    );

    // Second access: served from the lease without touching managers.
    d.invoke_from(0);
    d.run_for(SimDuration::from_secs(2));
    let hits: u64 = d.host(0).stats().cache_hits;
    println!("user 1 second access: {:?} (cache hits: {hits})", d.user_agent(0).last_outcome().expect("replied"));

    // Revoke user 2 and watch the system converge.
    println!("revoking user 2 ...");
    d.revoke(UserId(2), Right::Use);
    d.run_for(SimDuration::from_secs(3));
    println!(
        "revoke stable at update quorum: {} op(s) stable",
        d.admin_agent().stable_count()
    );

    d.invoke_from(1);
    d.run_for(SimDuration::from_secs(2));
    println!("user 2 after revoke:  {:?}", d.user_agent(1).last_outcome().expect("replied"));

    let total = d.aggregate_user_stats();
    println!(
        "\ntotals: sent={} allowed={} denied={} unavailable={}",
        total.sent, total.allowed, total.denied, total.unavailable
    );
    println!("network messages: {}", d.world.metrics().counter("net.sent"));
    assert_eq!(total.allowed, 2);
    assert_eq!(total.denied, 1);
}
