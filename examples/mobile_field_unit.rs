//! The paper's footnote 1: "similar problems exist in mobile computing
//! systems, so our solutions could be applied in this context as well."
//!
//! A field unit (application host + colocated operator) drops in and out
//! of coverage. Cached leases bridge the coverage gaps; lease expiry
//! still bounds how long a revoked credential can be used.
//!
//! Run with: `cargo run --example mobile_field_unit`

use wanacl::prelude::*;
use wanacl::sim::net::partition::DutyCycle;
use wanacl::sim::net::WanNet;

fn main() {
    // Node layout: managers 0,1; field host 2; operator 3; admin 4.
    let host = NodeId::from_index(2);
    let operator = NodeId::from_index(3);

    // The field unit averages 40 s attached, 20 s detached — one third
    // of the time out of coverage. The operator rides in the vehicle, so
    // the operator<->host link is wired and exempt; only the uplink to
    // the HQ managers suffers the coverage gaps.
    let coverage = DutyCycle::new(
        vec![host],
        SimDuration::from_secs(40),
        SimDuration::from_secs(20),
    )
    .exempt_pair(host, operator);
    println!(
        "field unit out of coverage {:.0}% of the time",
        coverage.steady_state_detached() * 100.0
    );
    let net = WanNet::builder()
        .exponential_delay(SimDuration::from_millis(40), SimDuration::from_millis(60))
        .partitions(Box::new(coverage))
        .build();

    // Long leases (Te = 90 s) ride out typical coverage gaps.
    let policy = Policy::builder(1)
        .revocation_bound(SimDuration::from_secs(90))
        .clock_rate_bound(0.98)
        .query_timeout(SimDuration::from_millis(500))
        .max_attempts(3)
        .build();

    let mut d = Scenario::builder(5)
        .managers(2)
        .hosts(1)
        .users(1)
        .policy(policy)
        .all_users_granted()
        .net(Box::new(net))
        .request_timeout(SimDuration::from_secs(6))
        .build();
    assert_eq!(d.hosts[0], host);
    assert_eq!(d.users[0].1, operator);

    // The operator works steadily for 10 simulated minutes.
    let mut t = SimTime::from_secs(2);
    let mut sent = 0u64;
    while t < SimTime::from_secs(600) {
        d.world.inject(
            t,
            operator,
            ProtoMsg::Invoke {
                app: d.app,
                user: UserId(1),
                req: ReqId(0),
                payload: "telemetry".into(),
                signature: None,
            },
        );
        sent += 1;
        t += SimDuration::from_secs(5);
    }
    d.run_until(SimTime::from_secs(620));

    let stats = d.user_agent(0).stats();
    let host_stats = d.host(0).stats();
    println!("\nten minutes in the field:");
    println!("  requests:        {sent}");
    println!("  served:          {} ({:.1}%)", stats.allowed, 100.0 * stats.allowed as f64 / sent as f64);
    println!("  lost to gaps:    {} (timeout) + {} (quorum)", stats.timeouts, stats.unavailable);
    println!("  cache hits:      {} of {} checks", host_stats.cache_hits, host_stats.invokes);
    println!("\nmost requests ride the cached lease; only the ones that needed a");
    println!("fresh check during a coverage gap are lost — and a revoked credential");
    println!("would still die within Te = 90 s, coverage or not.");
    assert!(stats.allowed as f64 / sent as f64 > 0.9);
    assert!(host_stats.cache_hits > host_stats.cache_misses);
}
