//! The paper's availability-first case: "to ensure user satisfaction,
//! availability can be more important than security for services such as
//! on-line magazines and newspapers" (§2.3).
//!
//! Policy: C = 1, fail-open after R attempts (Figure 4). A reader keeps
//! getting pages even while the host is cut off from every manager; the
//! cost is that a cancelled subscription can also slip through during
//! the partition.
//!
//! Run with: `cargo run --example online_magazine`

use wanacl::prelude::*;
use wanacl::sim::net::partition::ScheduledPartitions;
use wanacl::sim::net::WanNet;

fn main() {
    // Short leases (Te = 10 s) keep revocation snappy; Figure 4's
    // fail-open rule keeps readers happy when no manager is reachable.
    let policy = Policy::builder(1)
        .revocation_bound(SimDuration::from_secs(10))
        .query_timeout(SimDuration::from_millis(200))
        .max_attempts(2)
        .exhaustion(ExhaustionBehavior::FailOpen) // Figure 4
        .build();

    // Node layout: managers 0,1; host 2; readers 3,4; admin 5.
    // The host loses contact with both managers between 10 s and 50 s.
    let cut = ScheduledPartitions::cut_between(
        vec![NodeId::from_index(0), NodeId::from_index(1)],
        vec![NodeId::from_index(2)],
        SimTime::from_secs(10),
        SimTime::from_secs(50),
    );
    let net = WanNet::builder()
        .uniform_delay(SimDuration::from_millis(20), SimDuration::from_millis(80))
        .partitions(Box::new(cut))
        .build();

    let mut d = Scenario::builder(7)
        .managers(2)
        .hosts(1)
        .users(2)
        .policy(policy)
        .all_users_granted()
        .net(Box::new(net))
        .application(|i| Box::new(StockQuoteApp::new(1000 + i as u64)))
        .build();

    println!("online magazine: C=1, fail-open, host partitioned 10s-50s\n");

    // A reader browses every 5 seconds throughout.
    let reader = d.users[0].1;
    for t in (2..60).step_by(5) {
        d.world.inject(
            SimTime::from_secs(t),
            reader,
            ProtoMsg::Invoke {
                app: d.app,
                user: UserId(1),
                req: ReqId(0),
                payload: format!("front-page@{t}s").into(),
                signature: None,
            },
        );
    }
    d.run_until(SimTime::from_secs(65));

    let stats = d.user_agent(0).stats();
    let host = d.host(0).stats();
    println!("reader requests:        {}", stats.sent);
    println!("pages served:           {}", stats.allowed);
    println!("denied / unavailable:   {} / {}", stats.denied, stats.unavailable);
    println!("fail-open admissions:   {}", host.fail_open_allows);
    println!("\nEvery request was served, including the {} during the partition", host.fail_open_allows);
    println!("that no manager could vouch for — availability bought with security,");
    println!("acceptable when \"potentially unauthorized access results only in");
    println!("minor revenue loss\" (§2.3).");
    assert_eq!(stats.allowed, stats.sent);
    assert!(host.fail_open_allows > 0);
}
