//! The paper's central tradeoff, live: sweep the check quorum `C` under
//! the §4.1 i.i.d. partition model and compare the *measured* protocol
//! behaviour with the analytic `PA(C)`/`PS(C)` curves.
//!
//! Run with: `cargo run --release --example partition_tradeoff [trials]`

use wanacl::analysis::experiments::{measure_availability, measure_security};
use wanacl::analysis::model::{pa, ps};

fn main() {
    let trials: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(150);
    let m = 10usize;
    let pi = 0.2;
    println!("partition tradeoff: M={m}, Pi={pi}, {trials} protocol trials per point\n");
    println!("  C | PA model  PA measured | PS model  PS measured");
    println!(" ---+------------------------+----------------------");
    for c in 1..=m {
        let pa_model = pa(m as u64, c as u64, pi);
        let ps_model = ps(m as u64, c as u64, pi);
        let pa_meas = measure_availability(m, c, pi, trials, 40 + c as u64);
        let ps_meas = measure_security(m, c, pi, trials, 80 + c as u64);
        println!(
            " {c:2} |  {pa_model:.4}     {:.4}    |  {ps_model:.4}     {:.4}",
            pa_meas.value, ps_meas.value
        );
    }
    println!("\nAvailability falls and security rises with C; both stay near 1 in a");
    println!("band around C = M/2 — the tradeoff an application tunes per §4.");
}
