//! Per-application policies on shared infrastructure: "our algorithm
//! allows each application to set the parameters that determine the
//! level of security and availability" (§5).
//!
//! One host and one manager pair serve two applications with opposite
//! policies — a fail-open newspaper and a fail-closed payroll service —
//! and a partition treats them exactly as differently as configured.
//!
//! Run with: `cargo run --example multi_tenant`

use wanacl::prelude::*;
use wanacl::core::host::{AppHost, HostNode, ManagerDirectory};
use wanacl::core::manager::{ManagerApp, ManagerConfig, ManagerNode};
use wanacl::sim::net::partition::ScheduledPartitions;
use wanacl::sim::net::WanNet;
use wanacl::sim::world::World;

fn main() {
    let newspaper = AppId(1);
    let payroll = AppId(2);

    let newspaper_policy = Policy::builder(1)
        .revocation_bound(SimDuration::from_secs(10))
        .query_timeout(SimDuration::from_millis(200))
        .max_attempts(2)
        .exhaustion(ExhaustionBehavior::FailOpen)
        .build();
    let payroll_policy = Policy::builder(2) // C = M: both managers must vouch
        .revocation_bound(SimDuration::from_secs(10))
        .query_timeout(SimDuration::from_millis(200))
        .max_attempts(2)
        .exhaustion(ExhaustionBehavior::FailClosed)
        .build();

    let mut acl = Acl::new();
    acl.add(UserId(1), Right::Use);

    // Node layout: managers 0,1; host 2. Host cut from managers 20s-60s.
    let cut = ScheduledPartitions::cut_between(
        vec![NodeId::from_index(0), NodeId::from_index(1)],
        vec![NodeId::from_index(2)],
        SimTime::from_secs(20),
        SimTime::from_secs(60),
    );
    let net = WanNet::builder()
        .constant_delay(SimDuration::from_millis(25))
        .partitions(Box::new(cut))
        .build();

    let mut world: World<ProtoMsg> = World::new(11);
    world.set_net(Box::new(net));
    let manager_ids = [NodeId::from_index(0), NodeId::from_index(1)];
    for (i, &id) in manager_ids.iter().enumerate() {
        let peers = manager_ids.iter().copied().filter(|p| *p != id).collect();
        let got = world.add_node(
            format!("manager{i}"),
            Box::new(ManagerNode::new(ManagerConfig {
                peers,
                apps: vec![
                    ManagerApp {
                        app: newspaper,
                        policy: newspaper_policy.clone(),
                        initial_acl: acl.clone(),
                    },
                    ManagerApp {
                        app: payroll,
                        policy: payroll_policy.clone(),
                        initial_acl: acl.clone(),
                    },
                ],
                ..ManagerConfig::default()
            })),
            ClockSpec::Perfect,
        );
        assert_eq!(got, id);
    }
    let host = world.add_node(
        "host",
        Box::new(HostNode::new(
            vec![
                AppHost {
                    app: newspaper,
                    policy: newspaper_policy,
                    directory: ManagerDirectory::Static(manager_ids.to_vec().into()),
                    application: Box::new(CountingApp::new()),
                },
                AppHost {
                    app: payroll,
                    policy: payroll_policy,
                    directory: ManagerDirectory::Static(manager_ids.to_vec().into()),
                    application: Box::new(CountingApp::new()),
                },
            ],
            None,
        )),
        ClockSpec::Perfect,
    );

    // During the partition (t = 35 s, well past every lease), the same
    // user hits both applications.
    let mut req = 0u64;
    for app in [newspaper, payroll] {
        req += 1;
        world.inject(
            SimTime::from_secs(35),
            host,
            ProtoMsg::Invoke {
                app,
                user: UserId(1),
                req: ReqId(req),
                payload: "work".into(),
                signature: None,
            },
        );
    }
    world.run_until(SimTime::from_secs(45));

    let host_node = world.node_as::<HostNode>(host);
    let news: &CountingApp = host_node.application_as(newspaper);
    let pay: &CountingApp = host_node.application_as(payroll);
    println!("one host, two tenants, managers unreachable:");
    println!("  newspaper (fail-open, C=1): served {} request(s)", news.handled());
    println!("  payroll  (fail-closed, C=2): served {} request(s)", pay.handled());
    println!("\nsame partition, opposite outcomes — the per-application tradeoff");
    println!("the paper argues for instead of one system-wide policy.");
    assert_eq!(news.handled(), 1);
    assert_eq!(pay.handled(), 0);
    assert_eq!(host_node.stats().fail_open_allows, 1);
    assert_eq!(host_node.stats().unavailable, 1);
}
