//! The same protocol objects the simulator runs, live on OS threads:
//! three managers, one host, one user, with a partition toggled at
//! runtime. Wall-clock time, real channels, no simulation.
//!
//! Run with: `cargo run --example live_threads`

use std::time::Duration;

use wanacl::prelude::*;
use wanacl::rt::router::PartitionSwitch;
use wanacl::rt::RuntimeBuilder;

fn main() {
    let policy = Policy::builder(2)
        .revocation_bound(SimDuration::from_secs(2))
        .query_timeout(SimDuration::from_millis(150))
        .max_attempts(2)
        .cache_sweep_interval(SimDuration::from_millis(500))
        .build();
    let mut acl = Acl::new();
    acl.add(UserId(1), Right::Use);

    let mut b: RuntimeBuilder<ProtoMsg> = RuntimeBuilder::new(3);
    let manager_ids: Vec<NodeId> = (0..3).map(NodeId::from_index).collect();
    for (i, &id) in manager_ids.iter().enumerate() {
        let peers = manager_ids.iter().copied().filter(|p| *p != id).collect();
        b.add_node(
            format!("manager{i}"),
            Box::new(ManagerNode::new(ManagerConfig {
                peers,
                apps: vec![ManagerApp {
                    app: AppId(0),
                    policy: policy.clone(),
                    initial_acl: acl.clone(),
                }],
                registry: None,
                enforce_manage_right: false,
                retry_interval: SimDuration::from_millis(100),
                retry_cap: SimDuration::from_secs(2),
                retry_jitter: 0.1,
                heartbeat_interval: SimDuration::from_millis(200),
                grant_sweep_interval: SimDuration::from_secs(1),
                snapshot_every: 64,
                ..ManagerConfig::default()
            })),
        );
    }
    let host = b.add_node(
        "host",
        Box::new(HostNode::new(
            vec![AppHost {
                app: AppId(0),
                policy: policy.clone(),
                directory: ManagerDirectory::Static(manager_ids.clone().into()),
                application: Box::new(EchoApp),
            }],
            None,
        )),
    );
    let user = b.add_node(
        "user",
        Box::new(UserAgent::new(UserAgentConfig {
            user: UserId(1),
            app: AppId(0),
            hosts: vec![host].into(),
            workload: None,
            payload: "live request".into(),
            secret: None,
            request_timeout: SimDuration::from_secs(5),
            max_requests: None,
        })),
    );

    let rt = b.start();
    let invoke = |payload: &str| {
        rt.send_from_env(
            user,
            ProtoMsg::Invoke {
                app: AppId(0),
                user: UserId(1),
                req: ReqId(0),
                payload: payload.into(),
                signature: None,
            },
        );
    };

    println!("live deployment on {} threads; C=2 of M=3", manager_ids.len() + 2);
    std::thread::sleep(Duration::from_millis(200));

    invoke("first");
    std::thread::sleep(Duration::from_millis(400));
    println!("request with full connectivity -> expected Allowed");

    // Cut two managers away from the host: C = 2 becomes unreachable.
    let switch = PartitionSwitch::new(vec![manager_ids[1], manager_ids[2]], vec![host]);
    rt.router().set_policy(switch.clone());
    switch.set(true);
    println!("partition engaged: host can reach only manager0");
    std::thread::sleep(Duration::from_secs(3)); // let the cached lease expire (Te = 2 s)

    invoke("during partition");
    std::thread::sleep(Duration::from_millis(800));
    println!("request during partition    -> expected Unavailable (quorum fails)");

    switch.set(false);
    println!("partition healed");
    std::thread::sleep(Duration::from_millis(300));
    invoke("after heal");
    std::thread::sleep(Duration::from_millis(500));

    let (sent, dropped) = rt.router().stats();
    let snapshot = rt.metrics().snapshot();
    let nodes = rt.shutdown_nodes();
    let agent = nodes[user.index()].as_any().downcast_ref::<UserAgent>().expect("user agent");
    let stats = agent.stats();
    println!(
        "\noutcomes: sent={} allowed={} unavailable={} denied={}",
        stats.sent, stats.allowed, stats.unavailable, stats.denied
    );
    println!("router traffic: {sent} messages, {dropped} dropped by the partition");
    assert_eq!(stats.allowed, 2);
    assert_eq!(stats.unavailable, 1);
    // The live runtime collects the same metric registry the simulator
    // does (DESIGN.md §11); export the Prometheus snapshot.
    println!("\nmetrics snapshot (Prometheus text format):");
    print!("{}", wanacl::rt::prometheus_text(&snapshot));
    // Every request here runs a cold check (the Te = 2 s lease expires
    // while the partition holds), so misses — not hits — are expected.
    assert!(snapshot.counter("host.cache_miss") >= 3);
    assert!(snapshot.counter("host.unavailable") >= 1);
    assert!(snapshot.histogram("host.check_latency_s").is_some());
    println!("the same state machines that run under simulation just ran in real time.");
}
